"""Shared benchmark plumbing.

Every benchmark regenerates the rows of one paper table or figure.  Because a
single regeneration involves many simulation runs, benchmarks execute exactly
one round (``benchmark.pedantic(..., rounds=1, iterations=1)``) — the timing
is reported for completeness, but the real output is the reproduced table,
which each benchmark writes to ``benchmarks/results/<experiment>.txt`` so it
can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def save_result():
    """Return a callable persisting an ExperimentResult to benchmarks/results/."""
    from repro.experiments.base import ExperimentResult, format_table

    def _save(result: ExperimentResult, name: str = "") -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        target = RESULTS_DIR / f"{name or result.experiment_id}.txt"
        target.write_text(format_table(result) + "\n")
        return target

    return _save


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
