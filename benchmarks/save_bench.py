"""Perf-regression harness: persist microbenchmark medians to BENCH_micro.json.

Runs the repeated-timing microbenchmarks (``test_bench_microbenchmarks.py``)
under pytest-benchmark and appends one labelled record of median ns-per-op
values to ``benchmarks/BENCH_micro.json``.  The file accumulates a trajectory
across PRs so that future changes can be compared against every previously
recorded state::

    PYTHONPATH=src python benchmarks/save_bench.py --label my-change
    PYTHONPATH=src python benchmarks/save_bench.py --label check --compare seed

Records are keyed by label; re-using a label overwrites the old record (handy
while iterating).  ``--compare A`` prints the speedup of the new record over
record ``A`` per benchmark and exits non-zero if any benchmark regressed by
more than ``--tolerance`` (default 20%).

CI runs this as a regression gate on a reduced budget::

    PYTHONPATH=src python benchmarks/save_bench.py --label ci-check --no-save \
        --select "cache_put_get or simulator_event" \
        --compare pr2-sharding --tolerance 0.25

``--no-save`` leaves ``BENCH_micro.json`` untouched (the committed trajectory
only records per-PR states), ``--select`` is a pytest ``-k`` expression
restricting which microbenchmarks run, and ``--min-rounds`` lowers the
pytest-benchmark round count for cheap smoke timings.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULT_FILE = BENCH_DIR / "BENCH_micro.json"
MICRO_FILE = BENCH_DIR / "test_bench_microbenchmarks.py"


def run_microbenchmarks(select=None, min_rounds=None) -> dict:
    """Run the microbenchmark suite and return ``{test_name: median_ns}``.

    ``select`` restricts the run to benchmarks matching a pytest ``-k``
    expression; ``min_rounds`` overrides pytest-benchmark's round floor.
    """
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env_src = str(REPO_ROOT / "src")
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(MICRO_FILE),
            "-q",
            "--benchmark-only",
            f"--benchmark-json={json_path}",
        ]
        if select:
            command.extend(["-k", select])
        if min_rounds is not None:
            command.append(f"--benchmark-min-rounds={min_rounds}")
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": env_src},
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            sys.stderr.write(completed.stdout)
            sys.stderr.write(completed.stderr)
            raise SystemExit("microbenchmark run failed")
        payload = json.loads(json_path.read_text())
    medians = {}
    for bench in payload["benchmarks"]:
        # pytest-benchmark stats are in seconds; store integer nanoseconds.
        medians[bench["name"]] = int(round(bench["stats"]["median"] * 1e9))
    return medians


def load_records() -> list:
    if RESULT_FILE.exists():
        return json.loads(RESULT_FILE.read_text())["records"]
    return []


def save_records(records: list) -> None:
    RESULT_FILE.write_text(
        json.dumps({"unit": "median ns per op", "records": records}, indent=2) + "\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True, help="name of this record")
    parser.add_argument(
        "--compare",
        default=None,
        help="label of an earlier record to compare against (prints speedups)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown vs the compared record (default 0.2)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="pytest -k expression restricting which microbenchmarks run",
    )
    parser.add_argument(
        "--min-rounds",
        type=int,
        default=None,
        help="override pytest-benchmark's minimum round count (reduced budgets)",
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="do not persist the record to BENCH_micro.json (CI check mode)",
    )
    args = parser.parse_args(argv)
    if args.select and not args.no_save:
        # A partial run must never overwrite a label's full record: the CI
        # gate comparing against that label would then skip the dropped
        # benchmarks as "(new benchmark)".
        parser.error("--select requires --no-save (partial records are not stored)")

    medians = run_microbenchmarks(select=args.select, min_rounds=args.min_rounds)
    if not medians:
        print("no benchmarks matched the selection", file=sys.stderr)
        return 2
    stored = load_records()
    # Resolve the comparison baseline from the *stored* records before the
    # label is overwritten, so ``--label X --compare X`` gauges the new run
    # against the committed X record instead of against itself.
    baseline = next((r for r in stored if r["label"] == args.compare), None)
    records = [r for r in stored if r["label"] != args.label]
    records.append({"label": args.label, "median_ns": medians})
    if not args.no_save:
        save_records(records)
    print(f"recorded {len(medians)} benchmarks under label {args.label!r}:")
    for name, value in sorted(medians.items()):
        print(f"  {name}: {value} ns")

    if args.compare is None:
        return 0
    if baseline is None:
        print(
            f"no record labelled {args.compare!r} to compare against",
            file=sys.stderr,
        )
        return 2
    regressed = False
    print(f"speedup vs {args.compare!r}:")
    for name, value in sorted(medians.items()):
        old = baseline["median_ns"].get(name)
        if old is None:
            print(f"  {name}: (new benchmark)")
            continue
        print(f"  {name}: {old / value:.2f}x")
        if value > old * (1.0 + args.tolerance):
            regressed = True
            print(f"    REGRESSION: {value} ns > {old} ns + {args.tolerance:.0%}")
    return 1 if regressed else 0


if __name__ == "__main__":
    raise SystemExit(main())
