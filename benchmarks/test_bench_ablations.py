"""Benchmark: design-choice ablations (adjustment probabilities, eviction policy)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_adjustment_probabilities(benchmark, save_result):
    rows = run_once(benchmark, ablations.run_probability_ablation)
    from repro.experiments.base import ExperimentResult

    result = ExperimentResult(
        experiment_id="ablation_probabilities",
        title="Probabilistic width adjustment vs always adjusting (rho = 4)",
        columns=("ablation", "variant", "Omega"),
        rows=rows,
    )
    save_result(result)
    costs = {row[1]: row[2] for row in rows}
    paper_variant = next(
        value for key, value in costs.items() if key.startswith("min(")
    )
    ablated = costs["always adjust (ablated)"]
    # The paper's probabilistic rule should not be clearly worse than always
    # adjusting; Section 3 predicts it is the better choice for rho != 1.
    assert paper_variant <= ablated * 1.15


def test_ablation_eviction_policy(benchmark, save_result):
    rows = run_once(benchmark, ablations.run_eviction_ablation)
    from repro.experiments.base import ExperimentResult

    result = ExperimentResult(
        experiment_id="ablation_eviction",
        title="Widest-first eviction vs LRU vs random (space-constrained cache)",
        columns=("ablation", "variant", "Omega"),
        rows=rows,
    )
    save_result(result)
    costs = {row[1]: row[2] for row in rows}
    best = min(costs.values())
    # The paper's widest-first rule should be competitive with the best
    # alternative eviction policy.
    assert costs["widest-first (paper)"] <= best * 1.25
