"""Benchmark: regenerate Figure 2 (analytical cost rate and refresh probabilities)."""

from conftest import run_once

from repro.experiments import figure02_model


def test_figure02_model_curves(benchmark, save_result):
    result = run_once(benchmark, figure02_model.run)
    save_result(result)
    p_vr = result.column("P_vr")
    p_qr = result.column("P_qr")
    omega = result.column("Omega")
    # Shape checks from the paper: P_vr falls, P_qr rises, Omega has an
    # interior minimum at the crossing of the two curves.
    assert p_vr == sorted(p_vr, reverse=True)
    assert p_qr == sorted(p_qr)
    best_index = omega.index(min(omega))
    assert 0 < best_index < len(omega) - 1
