"""Benchmark: regenerate Figure 3 and the Section 4.2 optimality check.

Measured refresh rates for fixed widths on random-walk data, plus an adaptive
run whose cost is compared against the best fixed width (the paper reports
the adaptive algorithm within a few percent of optimal; see EXPERIMENTS.md
for the measured gap in this reproduction).
"""

from conftest import run_once

from repro.experiments import figure03_optimality
from repro.experiments.base import ExperimentResult


def test_figure03_width_sweep_and_adaptive(benchmark, save_result):
    result = run_once(benchmark, figure03_optimality.run)
    save_result(result)
    p_vr = result.column("P_vr (measured)")
    p_qr = result.column("P_qr (measured)")
    omega = result.column("Omega (measured)")
    # Measured shapes: P_vr decreasing in W, P_qr increasing in W, interior minimum.
    assert p_vr[0] > p_vr[-1]
    assert p_qr[0] < p_qr[-1]
    best_index = omega.index(min(omega))
    assert 0 < best_index < len(omega) - 1


def test_figure03_convergence_grid(benchmark, save_result):
    checks = run_once(
        benchmark,
        lambda: figure03_optimality.convergence_report(duration=2000.0),
    )
    rows = [
        (
            check.query_period,
            check.constraint_average,
            check.cost_factor,
            check.best_fixed_width,
            check.best_fixed_cost_rate,
            check.adaptive_cost_rate,
            check.regret,
        )
        for check in checks
    ]
    result = ExperimentResult(
        experiment_id="figure03_convergence",
        title="Adaptive vs best fixed width across the Section 4.2 grid",
        columns=(
            "T_q",
            "delta_avg",
            "rho",
            "best W",
            "best Omega",
            "adaptive Omega",
            "regret",
        ),
        rows=rows,
        notes="Paper: within 5% of optimal across the grid; see EXPERIMENTS.md for measured gaps.",
    )
    save_result(result)
    # The adaptive algorithm must stay in the same cost regime as the optimum
    # in every configuration of the grid.
    assert all(check.regret < 0.6 for check in checks)
