"""Benchmark: regenerate Figures 4 and 5 (value and cached interval over time)."""

import math

from conftest import run_once

from repro.experiments import figure04_05_timeseries


def test_figure04_05_timeseries(benchmark, save_result):
    result = run_once(benchmark, figure04_05_timeseries.run)
    save_result(result)
    figures = set(result.column("figure"))
    assert figures == {"fig4_small", "fig5_large"}
    # Every finite cached interval must contain the exact value it approximates.
    for _, __, value, low, high in result.rows:
        if not math.isnan(low):
            assert low - 1e-6 <= value <= high + 1e-6


def test_figure04_05_width_scales_with_constraint(benchmark):
    def both_runs():
        small = figure04_05_timeseries.run_timeseries(constraint_average=50_000.0)
        large = figure04_05_timeseries.run_timeseries(constraint_average=500_000.0)
        return small, large

    small, large = run_once(benchmark, both_runs)

    def mean_final_width(run):
        widths = [w for w in run.result.final_widths.values() if w < float("inf")]
        return sum(widths) / len(widths)

    # The paper: widths track delta_avg (roughly delta_avg / query fan-out).
    # The busiest host's width is dominated by its own volatility, so the
    # constraint scaling is checked on the population of converged widths.
    assert mean_final_width(large) > 2.0 * mean_final_width(small)
    # The tracked host still gets at least somewhat wider intervals.
    assert large.mean_finite_width() > small.mean_finite_width()
