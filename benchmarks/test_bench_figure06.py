"""Benchmark: regenerate Figure 6 (effect of the adaptivity parameter alpha)."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure06_adaptivity


def test_figure06_adaptivity_sweep(benchmark, save_result):
    result = run_once(benchmark, figure06_adaptivity.run)
    save_result(result)
    # Group rows per configuration and check that alpha = 1 is a reasonable
    # overall setting: for every configuration its cost is within 50% of that
    # configuration's best alpha (the paper concludes alpha = 1 is a good
    # overall choice, not that it is optimal everywhere).
    per_config = defaultdict(dict)
    for cost_factor, query_period, bounds, alpha, omega in result.rows:
        per_config[(cost_factor, query_period, bounds)][alpha] = omega
    assert per_config, "the sweep produced no configurations"
    for costs_by_alpha in per_config.values():
        best = min(costs_by_alpha.values())
        assert costs_by_alpha[1.0] <= best * 1.5
