"""Benchmark: regenerate Figures 7-9 (upper-threshold settings vs delta_avg)."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure07_09_thresholds


def test_figure07_09_threshold_settings(benchmark, save_result):
    result = run_once(benchmark, figure07_09_thresholds.run)
    save_result(result)
    series = defaultdict(dict)
    for query_period, theta_label, delta_avg, omega in result.rows:
        series[(query_period, theta_label)][delta_avg] = omega
    for (query_period, theta_label), costs in series.items():
        deltas = sorted(costs)
        if theta_label == "theta1=theta0":
            # Exact-caching behaviour is insensitive to the precision constraint.
            spread = max(costs.values()) - min(costs.values())
            assert spread <= 0.2 * max(costs.values()) + 1e-9
        if theta_label == "theta1=inf":
            # Loosening constraints must reduce cost substantially.
            assert costs[deltas[-1]] < costs[deltas[0]]
    # theta1=inf should be the best setting once constraints are loose.
    for query_period in {qp for qp, _ in series}:
        loose = max(delta for delta in series[(query_period, "theta1=inf")])
        assert (
            series[(query_period, "theta1=inf")][loose]
            <= series[(query_period, "theta1=theta0")][loose]
        )
