"""Benchmark: regenerate Figures 10-13 (comparison with WJH97 exact caching)."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure10_13_exact


def test_figure10_13_exact_caching_comparison(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: figure10_13_exact.run(query_periods=(1.0, 5.0)),
    )
    save_result(result)
    by_setting = defaultdict(dict)
    for figure, query_period, policy, delta_avg, omega in result.rows:
        by_setting[(figure, query_period)][(policy, delta_avg)] = omega
    busiest_period = min(period for _, period in by_setting)
    wins = 0
    comparisons = 0
    for (figure, query_period), costs in by_setting.items():
        exact = costs[("exact caching (WJH97)", 0.0)]
        subsumption = costs[("adaptive, theta1=theta0", 0.0)]
        loose = costs[("adaptive, theta1=inf", 500.0)]
        # Subsumption claim: the threshold-restricted adaptive algorithm tracks
        # the tuned WJH97 baseline closely.
        assert subsumption < 1.5 * exact
        # Looser constraints never cost more than exact-precision ones.
        assert loose <= costs[("adaptive, theta1=inf", 0.0)] + 1e-9
        # Headline claim: with loose constraints, a busy query stream and a
        # cache big enough to hold every approximation, the adaptive algorithm
        # should beat exact caching.  At long query periods the two converge
        # (queries are too rare for precision to matter), and with a small
        # cache the paper itself notes the benefit largely disappears because
        # wide intervals get evicted — so the strict comparison applies to the
        # full-cache figures at the busiest period only.
        if query_period == busiest_period and figure in ("figure10", "figure11"):
            comparisons += 1
            if loose < exact:
                wins += 1
            assert loose <= 1.15 * exact
        else:
            assert loose <= 1.6 * exact
    assert comparisons > 0
    assert wins >= (comparisons + 1) // 2
