"""Benchmark: regenerate Figures 14-15 (comparison with Divergence Caching)."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure14_15_divergence


def test_figure14_15_divergence_comparison(benchmark, save_result):
    result = run_once(benchmark, figure14_15_divergence.run)
    save_result(result)
    ours_by_period = defaultdict(dict)
    theirs_by_period = defaultdict(dict)
    for figure, query_period, delta_avg, ours, theirs in result.rows:
        ours_by_period[query_period][delta_avg] = ours
        theirs_by_period[query_period][delta_avg] = theirs
    for query_period, ours in ours_by_period.items():
        theirs = theirs_by_period[query_period]
        deltas = sorted(ours)
        # The adaptive algorithm gets cheaper as staleness constraints loosen.
        assert ours[deltas[-1]] <= ours[deltas[0]]
        # The paper reports a modest win for the adaptive algorithm; in this
        # reproduction the idealised HSW94 projection (it observes query
        # constraints directly) is somewhat stronger, so the check is a
        # same-regime bound — see EXPERIMENTS.md for the measured gap and the
        # explanation of the deviation.
        ours_total = sum(ours.values())
        theirs_total = sum(theirs.values())
        assert ours_total <= theirs_total * 2.0
