"""Microbenchmarks of the core primitives (real repeated-timing benchmarks).

Unlike the figure benchmarks (which run one large regeneration per test),
these measure the throughput of the hot paths a deployment would care about:
the width controller, the cache, refresh selection, and the simulator's event
loop.
"""

import random

from repro.caching.cache import ApproximateCache
from repro.caching.policies.adaptive import AdaptivePrecisionPolicy
from repro.core.parameters import PrecisionParameters
from repro.core.policy import AdaptiveWidthController
from repro.data.engine import get_engine
from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import RandomWalkStream
from repro.data.traffic import SyntheticTrafficTraceGenerator
from repro.intervals.interval import Interval
from repro.queries.refresh_selection import select_sum_refreshes
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CacheSimulation

#: Scale of the data-plane generation benchmarks: a 100-host trace (twice the
#: paper's host population, a 900 s window so burst batches amortise numpy
#: call overhead) and 20k-step walk schedules.  The reference and vector rows
#: measure the same work on the two engines, so their ratio is the
#: vector-engine speedup recorded per PR in BENCH_micro.json.
BENCH_TRACE_HOSTS = 100
BENCH_TRACE_DURATION = 900
BENCH_WALK_STEPS = 20_000


def _generate_trace(engine_name):
    return SyntheticTrafficTraceGenerator(
        host_count=BENCH_TRACE_HOSTS,
        duration_seconds=BENCH_TRACE_DURATION,
        seed=7,
        engine=get_engine(engine_name),
    ).generate()


def _generate_walk_schedule(engine_name):
    engine = get_engine(engine_name)
    walk = RandomWalkGenerator(start=100.0, rng=engine.rng(11), engine=engine)
    return RandomWalkStream(walk).schedule(float(BENCH_WALK_STEPS))


def test_controller_adjustment_throughput(benchmark):
    controller = AdaptiveWidthController(
        PrecisionParameters(), initial_width=4.0, rng=random.Random(0)
    )

    def adjust_many():
        for _ in range(500):
            controller.on_value_initiated_refresh()
            controller.on_query_initiated_refresh()
        return controller.width

    width = benchmark(adjust_many)
    assert width > 0


def test_cache_put_get_throughput(benchmark):
    cache = ApproximateCache(capacity=256)
    rng = random.Random(1)

    def churn():
        for index in range(1000):
            key = index % 512
            cache.put(
                key,
                Interval.centered(rng.random(), rng.random()),
                rng.random(),
                float(index),
            )
            cache.get(key, float(index))
        return len(cache)

    size = benchmark(churn)
    assert size <= 256


def test_sum_refresh_selection_throughput(benchmark):
    rng = random.Random(2)
    intervals = {
        index: Interval.centered(rng.uniform(0, 100), rng.uniform(0, 50))
        for index in range(200)
    }

    def select():
        return select_sum_refreshes(intervals, constraint=500.0)

    refreshed = benchmark(select)
    assert isinstance(refreshed, list)


def test_columnar_sum_selection_throughput(benchmark):
    # The columnar twin of test_sum_refresh_selection_throughput: the same
    # 200-interval SUM selection off a width array (the layout the columnar
    # simulator core and the shared-memory exchange hand in directly).
    import numpy as np

    from repro.queries.refresh_selection import select_sum_refreshes_columnar

    rng = random.Random(2)
    intervals = [
        Interval.centered(rng.uniform(0, 100), rng.uniform(0, 50))
        for _ in range(200)
    ]
    keys = list(range(200))
    widths = np.array([interval.width for interval in intervals])

    def select():
        return select_sum_refreshes_columnar(keys, widths, constraint=500.0)

    refreshed = benchmark(select)
    assert isinstance(refreshed, list)


#: Scale of the exchange-transport microbenchmarks: a 100-host population
#: queried at full fan-out, 2 simulated workers, 200 query ticks per round.
EXCHANGE_BENCH_HOSTS = 100
EXCHANGE_BENCH_TICKS = 200


def _exchange_bench_ticks():
    """Pre-draw the query sequence and per-worker owned entries.

    Workload generation and the owned-entry cache lookups are common to both
    transports (``_tick_local`` runs identically either way), so the
    benchmarks hoist them and time only the per-tick exchange: encode, the
    pipe round-trips, the coordinator merge, and each worker's refresh
    screen over the merged state.
    """
    from repro.queries.constraints import PrecisionConstraintGenerator
    from repro.queries.workload import QueryWorkload

    keys = [f"host-{index}" for index in range(EXCHANGE_BENCH_HOSTS)]
    workload = QueryWorkload(
        keys=keys,
        query_size=EXCHANGE_BENCH_HOSTS,
        period=1.0,
        constraint_generator=PrecisionConstraintGenerator(
            average=20.0, variation=1.0, rng=random.Random(5)
        ),
        rng=random.Random(4),
    )
    rng = random.Random(7)
    intervals = {
        key: Interval.centered(rng.uniform(0, 100), rng.uniform(0, 50))
        for key in keys
    }
    values = {key: rng.uniform(0, 100) for key in keys}
    owner = {key: index % 2 for index, key in enumerate(keys)}
    ticks = []
    time = 1.0
    for _ in range(EXCHANGE_BENCH_TICKS):
        query = workload.generate(time)
        time += 1.0
        locals_by_worker = tuple(
            {
                key: (intervals[key], values[key])
                for key in query.keys
                if owner[key] == worker
            }
            for worker in range(2)
        )
        owners = [owner[key] for key in query.keys]
        ticks.append((query, locals_by_worker, owners))
    return ticks


def test_exchange_pipe_tick_throughput(benchmark):
    # The pickled-pair exchange, per tick: each worker sends its owned
    # (interval, exact value) map, the coordinator merges and broadcasts the
    # merged map, and each worker decodes it and runs the SUM refresh
    # screen.  Both sides run in one process (as they time-share the 1-core
    # benchmark box anyway), over real multiprocessing pipes.
    import multiprocessing

    from repro.queries.refresh_selection import select_sum_refreshes

    ticks = _exchange_bench_ticks()

    def run_ticks():
        pipes = [multiprocessing.Pipe() for _ in range(2)]
        try:
            for query, locals_by_worker, owners in ticks:
                for (_, worker_end), local in zip(pipes, locals_by_worker):
                    worker_end.send(("tick", local))
                merged = {}
                for coordinator_end, _ in pipes:
                    _, partial = coordinator_end.recv()
                    merged.update(partial)
                for coordinator_end, _ in pipes:
                    coordinator_end.send(merged)
                for _, worker_end in pipes:
                    reply = worker_end.recv()
                    intervals = {key: reply[key][0] for key in query.keys}
                    select_sum_refreshes(intervals, query.constraint)
        finally:
            for coordinator_end, worker_end in pipes:
                coordinator_end.close()
                worker_end.close()
        return len(ticks)

    count = benchmark(run_ticks)
    assert count == EXCHANGE_BENCH_TICKS


def test_exchange_shm_tick_throughput(benchmark):
    # The shared-memory exchange on the same ticks: workers encode owned
    # rows into their plane, pipes carry only constant-size tokens, the
    # coordinator merges with one fancy-indexed copy, and each worker
    # screens widths straight off the merged plane (no decode).  Compare
    # against test_exchange_pipe_tick_throughput for the transport speedup.
    import multiprocessing

    import numpy as np

    from repro.queries.refresh_selection import select_sum_refreshes_columnar
    from repro.sharding.workers import ExchangeArray, ShmWorkerExchange

    ticks = _exchange_bench_ticks()

    def run_ticks():
        pipes = [multiprocessing.Pipe() for _ in range(2)]
        exchange = ExchangeArray(2, 1, EXCHANGE_BENCH_HOSTS)
        views = [ShmWorkerExchange(exchange, plane) for plane in range(2)]
        planes = exchange.array
        merged_rows = planes[-1, 0]
        positions = np.arange(EXCHANGE_BENCH_HOSTS)
        try:
            for query, locals_by_worker, owners in ticks:
                for (_, worker_end), view, local in zip(
                    pipes, views, locals_by_worker
                ):
                    view.write_tick(0, query, local)
                    worker_end.send(("tick", None))
                for coordinator_end, _ in pipes:
                    coordinator_end.recv()
                merged_rows[:] = planes[owners, 0, positions]
                for coordinator_end, _ in pipes:
                    coordinator_end.send(None)
                for (_, worker_end), view in zip(pipes, views):
                    worker_end.recv()
                    rows = view.merged_rows(0)
                    widths = rows[:, 1] - rows[:, 0]
                    select_sum_refreshes_columnar(
                        query.keys, widths, query.constraint
                    )
        finally:
            for coordinator_end, worker_end in pipes:
                coordinator_end.close()
                worker_end.close()
            exchange.close()
            exchange.unlink()
        return len(ticks)

    count = benchmark(run_ticks)
    assert count == EXCHANGE_BENCH_TICKS


def test_trace_generation_reference_throughput(benchmark):
    trace = benchmark(_generate_trace, "reference")
    assert len(trace.keys) == BENCH_TRACE_HOSTS


def test_trace_generation_vector_throughput(benchmark):
    trace = benchmark(_generate_trace, "vector")
    assert len(trace.keys) == BENCH_TRACE_HOSTS


def test_walk_schedule_reference_throughput(benchmark):
    schedule = benchmark(_generate_walk_schedule, "reference")
    assert len(schedule) == BENCH_WALK_STEPS


def test_walk_schedule_vector_throughput(benchmark):
    schedule = benchmark(_generate_walk_schedule, "vector")
    assert len(schedule) == BENCH_WALK_STEPS


def _run_small_simulation(kernel="batch", shards=1, shard_workers=0):
    streams = {
        f"walk-{index}": RandomWalkStream(
            RandomWalkGenerator(start=100.0, rng=random.Random(index))
        )
        for index in range(5 if shards == 1 else 8)
    }
    config = SimulationConfig(
        duration=200.0,
        warmup=20.0,
        query_period=1.0,
        query_size=3,
        constraint_average=20.0,
        constraint_variation=1.0,
        seed=3,
        kernel=kernel,
        shards=shards,
        shard_workers=shard_workers,
    )
    policy = AdaptivePrecisionPolicy(
        PrecisionParameters(), initial_width=4.0, rng=random.Random(3)
    )
    return CacheSimulation(config, streams, policy).run()


def test_simulator_event_throughput(benchmark):
    # The headline row: the whole-simulation event loop on the default
    # (batch-kernel) execution path.
    result = benchmark(_run_small_simulation)
    assert result.duration > 0


def test_simulator_scheduler_fallback_throughput(benchmark):
    # The same workload through the general EventScheduler fallback; the
    # ratio against test_simulator_event_throughput is the batch kernel's
    # recorded dispatch speedup.
    result = benchmark(_run_small_simulation, kernel="scheduler")
    assert result.duration > 0


def test_shard_worker_concurrent_throughput(benchmark):
    # Shard-worker scaling row: a 4-shard run executed on 2 worker
    # processes.  Wall-clock includes process spawn and per-tick exchange,
    # so this measures the real end-to-end cost of the concurrent topology
    # at small scale (it amortises on paper-scale runs); compare against
    # test_shard_worker_serial_throughput.
    result = benchmark(_run_small_simulation, shards=4, shard_workers=2)
    assert result.duration > 0


def test_shard_worker_serial_throughput(benchmark):
    # The same 4-shard run executed serially through the routing
    # coordinator (the pre-PR4 behaviour of --shards).
    result = benchmark(_run_small_simulation, shards=4)
    assert result.duration > 0


def test_shard_worker_windowed_throughput(benchmark):
    # The windowed exchange (--exchange-window 8): same 4-shard / 2-worker
    # run with the per-query-tick pipe round-trip batched over windows of 8
    # ticks.  Compare against test_shard_worker_concurrent_throughput (the
    # per-tick exchange) for the round-trip amortisation.
    def run_windowed():
        streams = {
            f"walk-{index}": RandomWalkStream(
                RandomWalkGenerator(start=100.0, rng=random.Random(index))
            )
            for index in range(8)
        }
        config = SimulationConfig(
            duration=200.0,
            warmup=20.0,
            query_period=1.0,
            query_size=3,
            constraint_average=20.0,
            constraint_variation=1.0,
            seed=3,
            shards=4,
            shard_workers=2,
            exchange_window=8,
        )
        policy = AdaptivePrecisionPolicy(
            PrecisionParameters(), initial_width=4.0, rng=random.Random(3)
        )
        return CacheSimulation(config, streams, policy).run()

    result = benchmark(run_windowed)
    assert result.duration > 0


def test_serving_loopback_query_throughput(benchmark):
    # The serving layer's hot path: one deterministic trace replay (updates
    # plus queries, every RPC awaited) against the loopback CacheServer.
    # Measures protocol framing, dispatch and async refresh selection.
    import asyncio

    from repro.data.traffic import SyntheticTrafficTraceGenerator
    from repro.experiments.workloads import serving_policy, traffic_config
    from repro.serving.loadgen import replay_trace_deterministic
    from repro.serving.server import CacheServer

    trace = SyntheticTrafficTraceGenerator(
        host_count=10, duration_seconds=120, seed=7
    ).generate()
    config = traffic_config(trace, seed=5).with_changes(warmup=0.0)

    def replay():
        async def drive():
            server = CacheServer(
                serving_policy(cost_factor=1.0, seed=5),
                value_refresh_cost=config.value_refresh_cost,
                query_refresh_cost=config.query_refresh_cost,
            )
            try:
                return await replay_trace_deterministic(server, trace, config)
            finally:
                await server.close()

        return asyncio.run(drive())

    report = benchmark(replay)
    assert report.queries > 0


def test_serving_loopback_metrics_throughput(benchmark):
    # The identical replay with the full metrics registry ENABLED (every
    # stats collector registered, the query-keys histogram observing each
    # query): the delta against test_serving_loopback_query_throughput is
    # the price of observability, which the PR-10 acceptance bounds at 5%.
    import asyncio

    from repro.data.traffic import SyntheticTrafficTraceGenerator
    from repro.experiments.workloads import serving_policy, traffic_config
    from repro.obs.metrics import MetricsRegistry
    from repro.serving.loadgen import replay_trace_deterministic
    from repro.serving.server import CacheServer

    trace = SyntheticTrafficTraceGenerator(
        host_count=10, duration_seconds=120, seed=7
    ).generate()
    config = traffic_config(trace, seed=5).with_changes(warmup=0.0)

    def replay():
        async def drive():
            server = CacheServer(
                serving_policy(cost_factor=1.0, seed=5),
                value_refresh_cost=config.value_refresh_cost,
                query_refresh_cost=config.query_refresh_cost,
                registry=MetricsRegistry(enabled=True),
            )
            try:
                return await replay_trace_deterministic(server, trace, config)
            finally:
                await server.close()

        return asyncio.run(drive())

    report = benchmark(replay)
    assert report.queries > 0
    assert report.hit_rate >= 0


def test_serving_loopback_wal_throughput(benchmark):
    # The identical replay with the write-ahead log on (fresh WAL directory
    # per round, default checkpoint cadence, the crash-safe 'checkpoint'
    # fsync policy): the WAL-on vs WAL-off delta against
    # test_serving_loopback_query_throughput is the price of durability.
    import asyncio
    import shutil
    import tempfile

    from repro.data.traffic import SyntheticTrafficTraceGenerator
    from repro.experiments.workloads import serving_policy, traffic_config
    from repro.serving.durability import PartitionDurability
    from repro.serving.loadgen import replay_trace_deterministic
    from repro.serving.server import CacheServer

    trace = SyntheticTrafficTraceGenerator(
        host_count=10, duration_seconds=120, seed=7
    ).generate()
    config = traffic_config(trace, seed=5).with_changes(warmup=0.0)

    def replay():
        wal_dir = tempfile.mkdtemp(prefix="bench-wal-")

        async def drive():
            server = CacheServer(
                serving_policy(cost_factor=1.0, seed=5),
                value_refresh_cost=config.value_refresh_cost,
                query_refresh_cost=config.query_refresh_cost,
                durability=PartitionDurability(wal_dir),
            )
            try:
                return await replay_trace_deterministic(server, trace, config)
            finally:
                await server.close()

        try:
            return asyncio.run(drive())
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)

    report = benchmark(replay)
    assert report.queries > 0
    assert report.server_stats["wal_records"] > 0


def test_gateway_partitioned_query_throughput(benchmark):
    # The same deterministic replay routed through the partitioned gateway
    # (two in-process partition servers): measures the gateway hop — key
    # routing, partition snapshots, global selection, routed refreshes —
    # relative to test_serving_loopback_query_throughput's direct path.
    import asyncio

    from repro.data.traffic import SyntheticTrafficTraceGenerator
    from repro.experiments.workloads import serving_policy, traffic_config
    from repro.serving.gateway import GatewayServer
    from repro.serving.loadgen import replay_trace_deterministic
    from repro.serving.server import CacheServer

    trace = SyntheticTrafficTraceGenerator(
        host_count=10, duration_seconds=120, seed=7
    ).generate()
    config = traffic_config(trace, seed=5).with_changes(warmup=0.0)

    def replay():
        async def drive():
            partitions = [
                CacheServer(
                    serving_policy(cost_factor=1.0, seed=5),
                    value_refresh_cost=config.value_refresh_cost,
                    query_refresh_cost=config.query_refresh_cost,
                )
                for _ in range(2)
            ]
            gateway = GatewayServer(partitions)
            await gateway.start()
            try:
                return await replay_trace_deterministic(gateway, trace, config)
            finally:
                await gateway.close()
                for partition in partitions:
                    await partition.close()

        return asyncio.run(drive())

    report = benchmark(replay)
    assert report.queries > 0
