"""Benchmark: regenerate the Section 4.4 sensitivity studies."""

from conftest import run_once

from repro.experiments import section44_sensitivity


def test_section44_sensitivity(benchmark, save_result):
    result = run_once(benchmark, section44_sensitivity.run)
    save_result(result)
    theta_rows = [row for row in result.rows if row[0] == "theta0_study"]
    sigma_rows = [row for row in result.rows if row[0] == "sigma_study"]
    assert theta_rows and sigma_rows

    # theta_0 = 1K should cost only a modest amount more than theta_0 = 0 for
    # a moderate-constraint workload (paper: under a few percent).
    costs_by_theta = {row[1]: row[3] for row in theta_rows}
    assert costs_by_theta[1.0] <= costs_by_theta[0.0] * 1.25

    # Widening the constraint spread (sigma 0 -> 1) should only mildly degrade
    # performance for each delta_avg (paper: 1.9% / 5.5% / <1%).
    by_delta = {}
    for _, delta_avg, sigma, omega in sigma_rows:
        by_delta.setdefault(delta_avg, {})[sigma] = omega
    for costs in by_delta.values():
        assert costs[1.0] <= costs[0.0] * 1.35
