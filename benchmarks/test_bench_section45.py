"""Benchmark: regenerate the Section 4.5 "unsuccessful variations" comparison."""

from conftest import run_once

from repro.experiments import section45_variations


def test_section45_uncentered_variation(benchmark, save_result):
    result = run_once(benchmark, section45_variations.run)
    save_result(result)
    costs = {(row[0], row[1]): row[2] for row in result.rows}
    centred_unbiased = costs[("unbiased walk", "centred (paper default)")]
    uncentered_unbiased = costs[("unbiased walk", "uncentered (Section 4.5)")]
    # Paper conclusion: on unbiased data the uncentered variation does not
    # provide a meaningful improvement over the centred default.
    assert uncentered_unbiased >= centred_unbiased * 0.9
    # Both variants must produce sane, positive costs on the biased walk too.
    assert costs[("biased walk", "centred (paper default)")] > 0
    assert costs[("biased walk", "uncentered (Section 4.5)")] > 0
