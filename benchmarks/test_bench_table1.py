"""Benchmark: regenerate Table 1 (symbol glossary)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, save_result):
    result = run_once(benchmark, table1.run)
    save_result(result)
    assert len(result.rows) >= 20
    assert "rho" in result.column("symbol")
