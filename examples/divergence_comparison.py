#!/usr/bin/env python3
"""Stale-value caching: our algorithm vs Divergence Caching (Section 4.7).

Here the cached objects are not numeric measurements but arbitrary values
whose precision is measured by *how many source updates the cached copy may
miss*.  The source value in the simulation is simply the source's update
counter; a cached approximation is a one-sided interval over that counter.

Two policies compete:

* the HSW94 Divergence Caching baseline, which re-projects the optimal
  allowance from moving windows of recent reads and writes, and
* the paper's adaptive algorithm specialised to stale-value approximations
  (one-sided intervals, cost factor rho' = C_vr / C_qr).

Run with:  python examples/divergence_comparison.py
"""

import random

from repro import (
    AdaptivePrecisionPolicy,
    CacheSimulation,
    DivergenceCachingPolicy,
    PrecisionParameters,
)
from repro.data.streams import CounterStream
from repro.intervals.placement import OneSidedPlacement
from repro.simulation.config import SimulationConfig


def build_streams(count: int = 8, seed: int = 3):
    """Objects whose updates arrive as Poisson processes (1 update/s on average)."""
    return {
        f"object-{index}": CounterStream(
            mean_interval=1.0, poisson=True, rng=random.Random(seed * 100 + index)
        )
        for index in range(count)
    }


def build_config(
    staleness_tolerance: float, query_period: float = 1.0
) -> SimulationConfig:
    return SimulationConfig(
        duration=2000.0,
        warmup=400.0,
        query_period=query_period,
        query_size=1,
        constraint_average=staleness_tolerance,
        constraint_variation=1.0,
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        seed=3,
    )


def adaptive_policy() -> AdaptivePrecisionPolicy:
    parameters = PrecisionParameters(
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        adaptivity=1.0,
        lower_threshold=1.0,
        cost_factor_multiplier=1.0,  # rho' = C_vr / C_qr for stale values
    )
    return AdaptivePrecisionPolicy(
        parameters,
        initial_width=1.0,
        placement=OneSidedPlacement(),
        rng=random.Random(3),
    )


def main() -> None:
    print("Stale-value caching: adaptive allowances vs Divergence Caching")
    print("=" * 72)
    print(f"{'max staleness (updates)':>24}  {'ours':>8}  {'divergence caching':>19}")
    for tolerance in (0.0, 2.0, 4.0, 8.0, 14.0):
        ours = CacheSimulation(
            build_config(tolerance), build_streams(), adaptive_policy()
        ).run()
        theirs = CacheSimulation(
            build_config(tolerance),
            build_streams(),
            DivergenceCachingPolicy(window_size=23),
        ).run()
        print(f"{tolerance:24.0f}  {ours.cost_rate:8.3f}  {theirs.cost_rate:19.3f}")
    print()
    print("The adaptive algorithm stays in the same cost regime as Divergence")
    print("Caching without keeping any read/write history: it reacts only to the")
    print("refreshes themselves, and the gap closes as the tolerance loosens.")


if __name__ == "__main__":
    main()
