#!/usr/bin/env python3
"""Exact caching vs adaptive approximate caching (the Section 4.6 comparison).

This example pits three cache-management strategies against each other on the
same network-monitoring workload:

1. the WJH97 adaptive *exact* replication baseline (cache a value exactly or
   not at all, re-deciding from read/write counts),
2. the paper's algorithm restricted to exact caching (upper threshold equal
   to the lower threshold), which should behave like the baseline, and
3. the full adaptive algorithm, which may cache interval approximations.

It prints the cost rate of each strategy for an exact-answer workload and for
a workload that tolerates bounded imprecision.

Run with:  python examples/exact_vs_adaptive.py
"""

import math
import random

from repro import (
    AdaptivePrecisionPolicy,
    CacheSimulation,
    ExactCachingPolicy,
    PrecisionParameters,
)
from repro.data.streams import streams_from_trace
from repro.data.traffic import SyntheticTrafficTraceGenerator
from repro.simulation.config import SimulationConfig

KILO = 1_000.0


def build_trace():
    return SyntheticTrafficTraceGenerator(
        host_count=25, duration_seconds=1500, seed=13
    ).generate()


def build_config(trace, delta_avg: float) -> SimulationConfig:
    return SimulationConfig(
        duration=trace.duration,
        warmup=trace.duration * 0.2,
        query_period=1.0,
        query_size=5,
        constraint_average=delta_avg,
        constraint_variation=1.0,
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        seed=5,
    )


def run_policy(trace, delta_avg: float, policy) -> float:
    config = build_config(trace, delta_avg)
    return CacheSimulation(config, streams_from_trace(trace), policy).run().cost_rate


def best_exact_caching(trace, delta_avg: float) -> float:
    """Tune the WJH97 window x over a small grid and keep the best run."""
    costs = []
    for window in (5, 10, 20, 40):
        policy = ExactCachingPolicy(
            value_refresh_cost=1.0, query_refresh_cost=2.0, reevaluation_window=window
        )
        costs.append(run_policy(trace, delta_avg, policy))
    return min(costs)


def adaptive(trace, delta_avg: float, exact_only: bool) -> float:
    upper = 1.0 * KILO if exact_only else math.inf
    policy = AdaptivePrecisionPolicy(
        PrecisionParameters(
            adaptivity=1.0, lower_threshold=1.0 * KILO, upper_threshold=upper
        ),
        initial_width=1.0 * KILO,
        rng=random.Random(5),
    )
    return run_policy(trace, delta_avg, policy)


def main() -> None:
    trace = build_trace()
    print("Exact caching vs adaptive approximate caching")
    print("=" * 72)
    for delta_avg, label in (
        (0.0, "exact answers required"),
        (200.0 * KILO, "200K error tolerated"),
    ):
        print(f"\nworkload: {label}")
        wjh97 = best_exact_caching(trace, delta_avg)
        ours_exact = adaptive(trace, delta_avg, exact_only=True)
        ours_full = adaptive(trace, delta_avg, exact_only=False)
        print(f"  WJH97 exact caching (tuned x)          : Omega = {wjh97:7.2f}")
        print(f"  adaptive, theta_1 = theta_0 (exact only): Omega = {ours_exact:7.2f}")
        print(f"  adaptive, theta_1 = inf (intervals)     : Omega = {ours_full:7.2f}")
    print()
    print("With exact answers the three strategies cost roughly the same; once")
    print("imprecision is allowed, interval caching wins because most refreshes")
    print("simply stop being necessary.")


if __name__ == "__main__":
    main()
