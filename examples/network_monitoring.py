#!/usr/bin/env python3
"""Network-monitoring scenario: the paper's motivating application.

Fifty hosts report their traffic level (a one-minute moving average sampled
every second); a monitoring dashboard asks for the SUM of the traffic over
random groups of ten hosts every second, tolerating a bounded error.  The
cache keeps interval approximations of each host's traffic and the adaptive
algorithm sets each interval's width.

The example prints how the cost rate falls as the dashboard's error tolerance
grows, and shows the cached interval chosen for the busiest host.

Run with:  python examples/network_monitoring.py
"""

import random

from repro import AdaptivePrecisionPolicy, CacheSimulation, PrecisionParameters
from repro.data.streams import streams_from_trace
from repro.data.traffic import SyntheticTrafficTraceGenerator
from repro.queries.aggregates import AggregateKind
from repro.simulation.config import SimulationConfig

KILO = 1_000.0


def build_trace():
    """A synthetic stand-in for the PF95 wide-area traffic trace (see DESIGN.md)."""
    return SyntheticTrafficTraceGenerator(
        host_count=30, duration_seconds=1800, seed=42
    ).generate()


def run_with_tolerance(trace, delta_avg: float):
    """Run the monitoring workload with the given average precision constraint."""
    busiest = trace.top_keys_by_total(1)[0]
    config = SimulationConfig(
        duration=trace.duration,
        warmup=trace.duration * 0.2,
        query_period=1.0,
        query_size=6,
        aggregates=(AggregateKind.SUM,),
        constraint_average=delta_avg,
        constraint_variation=1.0,
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        seed=7,
        track_keys=(busiest,),
    )
    policy = AdaptivePrecisionPolicy(
        PrecisionParameters(adaptivity=1.0, lower_threshold=1.0 * KILO),
        initial_width=1.0 * KILO,
        rng=random.Random(7),
    )
    simulation = CacheSimulation(config, streams_from_trace(trace), policy)
    result = simulation.run()
    return result, busiest, simulation


def main() -> None:
    trace = build_trace()
    print("Network monitoring with approximate caching")
    print("=" * 72)
    print(f"hosts: {len(trace.keys)}, trace duration: {trace.duration:.0f} s")
    print()
    print(f"{'error tolerance':>18}  {'cost rate':>10}  {'value refr/s':>13}  {'query refr/s':>13}")
    for delta_avg in (0.0, 10.0 * KILO, 50.0 * KILO, 200.0 * KILO, 500.0 * KILO):
        result, busiest, _ = run_with_tolerance(trace, delta_avg)
        label = "exact answers" if delta_avg == 0 else f"{delta_avg / KILO:.0f}K bytes/s"
        print(
            f"{label:>18}  {result.cost_rate:10.2f}  "
            f"{result.value_refresh_rate:13.3f}  {result.query_refresh_rate:13.3f}"
        )
    print()
    result, busiest, simulation = run_with_tolerance(trace, 200.0 * KILO)
    samples = [
        sample
        for sample in result.interval_samples[busiest]
        if sample.interval is not None and not sample.interval.is_unbounded
    ]
    if samples:
        mean_width = sum(sample.interval.width for sample in samples) / len(samples)
        print(f"busiest host: {busiest}")
        print(
            f"  mean cached interval width at 200K tolerance: {mean_width / KILO:.1f}K"
        )
        last = samples[-1]
        print(
            f"  final sample: value {last.value / KILO:.1f}K inside "
            f"[{last.interval.low / KILO:.1f}K, {last.interval.high / KILO:.1f}K]"
        )
    # Post-run inspection of the live cache: record_stats=False keeps this
    # bookkeeping read out of the workload hit rate reported above.
    final = simulation.cache.approximation(busiest, record_stats=False)
    print(f"  workload cache hit rate: {result.cache_hit_rate:.3f}")
    if not final.is_unbounded:
        print(
            f"  interval still cached at shutdown: "
            f"[{final.low / KILO:.1f}K, {final.high / KILO:.1f}K]"
        )
    print()
    print("Looser dashboards are dramatically cheaper to keep fresh — the cache")
    print("widens exactly the intervals whose sources fluctuate the most.")


if __name__ == "__main__":
    main()
