#!/usr/bin/env python3
"""Quickstart: adaptive precision setting on a single volatile value.

This example builds the smallest possible deployment of the paper's system:
one data source whose value performs a random walk, one cache, and a query
stream with a bounded-imprecision requirement.  It runs the same workload
three times — with an interval that is clearly too narrow, one that is
clearly too wide, and with the adaptive algorithm — and prints the resulting
cost rates, illustrating the core point of the paper: the adaptive controller
finds a good width without being told anything about the data or workload.

Run with:  python examples/quickstart.py
"""

import random

from repro import (
    AdaptivePrecisionPolicy,
    CacheSimulation,
    PrecisionParameters,
    SimulationConfig,
    StaticWidthPolicy,
)
from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import RandomWalkStream


def build_config(seed: int = 0) -> SimulationConfig:
    """One random-walk source, a query every 2 s, constraints averaging 20."""
    return SimulationConfig(
        duration=4000.0,
        warmup=400.0,
        query_period=2.0,
        query_size=1,
        constraint_average=20.0,
        constraint_variation=1.0,
        value_refresh_cost=1.0,   # C_vr: loose-consistency push
        query_refresh_cost=2.0,   # C_qr: request + response
        seed=seed,
    )


def build_streams(seed: int = 0):
    """A single random-walk value, one step of magnitude U[0.5, 1.5] per second."""
    walk = RandomWalkGenerator(start=100.0, rng=random.Random(seed))
    return {"sensor": RandomWalkStream(walk)}


def run_fixed(width: float) -> float:
    """Cost rate with a fixed interval width (the non-adaptive strawman)."""
    simulation = CacheSimulation(
        build_config(), build_streams(), StaticWidthPolicy(width)
    )
    return simulation.run().cost_rate


def run_adaptive() -> tuple:
    """Cost rate with the paper's adaptive width controller."""
    policy = AdaptivePrecisionPolicy(
        PrecisionParameters(adaptivity=1.0),  # alpha = 1: double / halve
        initial_width=1.0,
        rng=random.Random(0),
    )
    simulation = CacheSimulation(build_config(), build_streams(), policy)
    result = simulation.run()
    return result.cost_rate, policy.current_width("sensor")


def main() -> None:
    print("Adaptive precision setting for cached approximate values — quickstart")
    print("=" * 72)
    narrow = run_fixed(1.0)
    wide = run_fixed(50.0)
    adaptive_cost, converged_width = run_adaptive()
    print(f"fixed width W = 1   (too precise) : cost rate Omega = {narrow:7.3f}")
    print(f"fixed width W = 50  (too sloppy)  : cost rate Omega = {wide:7.3f}")
    print(f"adaptive widths (alpha = 1)       : cost rate Omega = {adaptive_cost:7.3f}")
    print(f"adaptive controller converged near W = {converged_width:.2f}")
    print()
    print("The adaptive controller needs no knowledge of the data volatility or")
    print("of the query precision constraints: it reacts only to which kind of")
    print("refresh (value- or query-initiated) actually occurs.")


if __name__ == "__main__":
    main()
