#!/usr/bin/env python3
"""Sharded network monitoring: one dashboard, four cache shards.

The paper's cache is a single bounded store; at production scale the key
space is hash-partitioned over several ``ApproximateCache`` shards behind a
:class:`~repro.sharding.coordinator.ShardedCacheCoordinator`.  This example
runs the network-monitoring workload behind four shards with a total cache
capacity below the host count, so each shard exercises its own widest-first
eviction budget, and then answers a cross-shard bounded SUM by merging the
per-shard partial bounds.

It prints:

* the cost rate and global hit rate of the sharded run, next to the same
  run on a single cache (with an unbounded cache the two would be
  bit-identical; with per-shard eviction budgets they may differ slightly),
* the per-shard hit rates and their skew (the load-balance signal of the
  CRC-32 partitioning), and
* a cross-shard bounded SUM over every host, refreshed until it meets a
  precision constraint, with refreshes routed to the owning shards.

Run with:  python examples/sharded_monitoring.py
"""

import random

from repro import AdaptivePrecisionPolicy, CacheSimulation, PrecisionParameters
from repro.data.streams import streams_from_trace
from repro.data.traffic import SyntheticTrafficTraceGenerator
from repro.queries.aggregates import AggregateKind
from repro.sharding import execute_sharded_query
from repro.simulation.config import SimulationConfig

KILO = 1_000.0
SHARDS = 4


def build_trace():
    """A synthetic stand-in for the PF95 wide-area traffic trace."""
    return SyntheticTrafficTraceGenerator(
        host_count=40, duration_seconds=900, seed=42
    ).generate()


def run_monitoring(trace, shards: int):
    """Run the monitoring workload behind the given number of cache shards."""
    config = SimulationConfig(
        duration=trace.duration,
        warmup=trace.duration * 0.2,
        query_period=1.0,
        query_size=8,
        aggregates=(AggregateKind.SUM,),
        constraint_average=100.0 * KILO,
        constraint_variation=1.0,
        cache_capacity=24,
        shards=shards,
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        seed=7,
    )
    policy = AdaptivePrecisionPolicy(
        PrecisionParameters(adaptivity=1.0, lower_threshold=1.0 * KILO),
        initial_width=1.0 * KILO,
        rng=random.Random(7),
    )
    simulation = CacheSimulation(config, streams_from_trace(trace), policy)
    return simulation.run(), simulation


def main() -> None:
    trace = build_trace()
    print("Sharded network monitoring")
    print("=" * 72)
    print(
        f"hosts: {len(trace.keys)}, cache capacity: 24 "
        f"(split over {SHARDS} shards), trace duration: {trace.duration:.0f} s"
    )
    print()

    single_result, _ = run_monitoring(trace, shards=1)
    sharded_result, simulation = run_monitoring(trace, shards=SHARDS)
    print(f"{'topology':>16}  {'cost rate':>10}  {'hit rate':>9}")
    print(
        f"{'single cache':>16}  {single_result.cost_rate:10.2f}  "
        f"{single_result.cache_hit_rate:9.3f}"
    )
    sharded_label = f"{SHARDS} shards"
    print(
        f"{sharded_label:>16}  {sharded_result.cost_rate:10.2f}  "
        f"{sharded_result.cache_hit_rate:9.3f}"
    )
    print()

    coordinator = simulation.cache
    print("per-shard rollups (workload lookups only):")
    for index, stats in enumerate(coordinator.shard_statistics):
        budget = coordinator.shards[index].capacity
        print(
            f"  shard {index}: budget {budget:2d}, hit rate {stats.hit_rate:.3f}, "
            f"evictions {stats.evictions}"
        )
    print(f"  hit-rate skew (max - min): {sharded_result.hit_rate_skew:.3f}")
    print()

    # A cross-shard bounded SUM over every host: each shard bounds its own
    # contribution, the partials are merged, and refreshes — chosen by the
    # same machinery a single cache uses — go to the owning shard.  The
    # fetch callback reads the live simulated sources.
    sources = simulation.sources
    constraint = 50.0 * KILO
    execution = execute_sharded_query(
        coordinator,
        AggregateKind.SUM,
        list(trace.keys),
        constraint,
        lambda key: sources[key].value,
        time=trace.duration,
    )
    bound = execution.result_bound
    print(f"cross-shard SUM over all {len(trace.keys)} hosts:")
    print(f"  bound: [{bound.low / KILO:.1f}K, {bound.high / KILO:.1f}K]")
    print(
        f"  width {bound.width / KILO:.1f}K <= constraint {constraint / KILO:.0f}K "
        f"after {execution.refresh_count} routed refreshes"
    )
    print()
    print("Sharding keeps every per-key operation on one small shard while")
    print("decomposable aggregates need only one tiny merge across shards.")


if __name__ == "__main__":
    main()
