"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs work in offline environments whose setuptools/pip lack the
``wheel`` package required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
