"""repro — Adaptive Precision Setting for Cached Approximate Values.

A from-scratch reproduction of Olston, Loo and Widom's SIGMOD 2001 paper.
The package provides:

* the adaptive width-setting algorithm (:mod:`repro.core`),
* interval approximations and placements (:mod:`repro.intervals`),
* the caching substrate — sources, cache, eviction, refresh accounting and
  pluggable precision policies including the WJH97 exact-caching and HSW94
  Divergence Caching baselines (:mod:`repro.caching`),
* bounded-aggregate queries with precision constraints (:mod:`repro.queries`),
* a discrete-event simulator of the whole environment (:mod:`repro.simulation`),
* a sharded multi-cache topology with cross-shard bounded aggregates
  (:mod:`repro.sharding`),
* synthetic data generators standing in for the paper's workloads
  (:mod:`repro.data`),
* the Appendix A analysis (:mod:`repro.analysis`), and
* one experiment module per paper table/figure (:mod:`repro.experiments`).
"""

from repro.caching.cache import ApproximateCache
from repro.caching.policies.adaptive import AdaptivePrecisionPolicy
from repro.caching.policies.divergence import DivergenceCachingPolicy
from repro.caching.policies.exact_caching import ExactCachingPolicy
from repro.caching.policies.static import StaticWidthPolicy
from repro.core.cost_model import CostModel
from repro.core.parameters import PrecisionParameters
from repro.core.policy import AdaptiveWidthController, WidthAdjustment
from repro.intervals.interval import UNBOUNDED, Interval
from repro.sharding.coordinator import ShardedCacheCoordinator
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CacheSimulation, run_simulation

__version__ = "1.1.0"

__all__ = [
    "Interval",
    "UNBOUNDED",
    "PrecisionParameters",
    "AdaptiveWidthController",
    "WidthAdjustment",
    "CostModel",
    "AdaptivePrecisionPolicy",
    "ExactCachingPolicy",
    "DivergenceCachingPolicy",
    "StaticWidthPolicy",
    "ApproximateCache",
    "ShardedCacheCoordinator",
    "SimulationConfig",
    "SimulationResult",
    "CacheSimulation",
    "run_simulation",
    "__version__",
]
