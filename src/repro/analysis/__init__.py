"""Analytical tools: Appendix A math, optimal-width sweeps, convergence checks."""

from repro.analysis.convergence import convergence_report, relative_regret
from repro.analysis.optimal_width import WidthSweepResult, sweep_widths
from repro.analysis.refresh_probability import (
    chebyshev_escape_probability,
    query_refresh_probability,
    random_walk_variance,
    value_refresh_probability,
)

__all__ = [
    "random_walk_variance",
    "chebyshev_escape_probability",
    "value_refresh_probability",
    "query_refresh_probability",
    "WidthSweepResult",
    "sweep_widths",
    "relative_regret",
    "convergence_report",
]
