"""Convergence diagnostics for the adaptive controller.

Section 4.2 reports that the adaptive algorithm converges to a width whose
performance is within 1% of the best fixed width on the base configuration
and within 5% across a small parameter grid.  These helpers quantify that:
:func:`relative_regret` compares an adaptive run's cost rate against the best
fixed-width cost rate, and :func:`convergence_report` summarises the final
widths of an adaptive run against a reference width.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Hashable, Mapping


def relative_regret(adaptive_cost_rate: float, optimal_cost_rate: float) -> float:
    """Fractional excess cost of the adaptive run over the optimum.

    ``0.01`` means the adaptive algorithm is within 1% of the best fixed
    width; small negative values can occur when the adaptive run happens to
    beat the best width in the sweep grid (e.g. because the true optimum lies
    between grid points).
    """
    if optimal_cost_rate <= 0:
        raise ValueError("optimal_cost_rate must be positive")
    return (adaptive_cost_rate - optimal_cost_rate) / optimal_cost_rate


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of how close adapted widths ended up to a reference width."""

    reference_width: float
    mean_final_width: float
    median_final_width: float
    mean_relative_error: float

    @property
    def converged_within(self) -> float:
        """Alias for :attr:`mean_relative_error` (fractional distance)."""
        return self.mean_relative_error


def convergence_report(
    final_widths: Mapping[Hashable, float], reference_width: float
) -> ConvergenceReport:
    """Summarise the final adapted widths against ``reference_width``."""
    if reference_width <= 0:
        raise ValueError("reference_width must be positive")
    finite = [width for width in final_widths.values() if math.isfinite(width)]
    if not finite:
        raise ValueError("no finite final widths to report on")
    mean_width = statistics.fmean(finite)
    median_width = statistics.median(finite)
    mean_error = statistics.fmean(
        abs(width - reference_width) / reference_width for width in finite
    )
    return ConvergenceReport(
        reference_width=reference_width,
        mean_final_width=mean_width,
        median_final_width=median_width,
        mean_relative_error=mean_error,
    )
