"""Empirical optimal-width sweeps (the Figure 3 methodology).

The paper validates the cost model by fixing the interval width per run,
sweeping the width across runs, measuring the refresh rates and cost rate of
each run, and checking that the minimum cost occurs where the weighted
refresh probabilities cross.  :func:`sweep_widths` automates that procedure
for any simulation factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.simulation.metrics import SimulationResult


@dataclass(frozen=True)
class WidthSweepPoint:
    """Measurements of one fixed-width run."""

    width: float
    cost_rate: float
    value_refresh_rate: float
    query_refresh_rate: float


@dataclass(frozen=True)
class WidthSweepResult:
    """All points of a width sweep plus the empirically best width."""

    points: List[WidthSweepPoint]

    @property
    def best_point(self) -> WidthSweepPoint:
        """The sweep point with the lowest measured cost rate."""
        if not self.points:
            raise ValueError("the sweep produced no points")
        return min(self.points, key=lambda point: point.cost_rate)

    @property
    def best_width(self) -> float:
        """The width of :attr:`best_point`."""
        return self.best_point.width

    @property
    def best_cost_rate(self) -> float:
        """The cost rate of :attr:`best_point`."""
        return self.best_point.cost_rate

    def crossing_width(self, cost_factor: float = 1.0) -> float:
        """Width where ``cost_factor * P_vr`` and ``P_qr`` are closest.

        The paper's key observation is that this crossing coincides with the
        cost-rate minimum; returning it lets experiments verify that claim on
        measured data.
        """
        if not self.points:
            raise ValueError("the sweep produced no points")
        return min(
            self.points,
            key=lambda point: abs(
                cost_factor * point.value_refresh_rate - point.query_refresh_rate
            ),
        ).width


SimulationRunner = Callable[[float], SimulationResult]


def sweep_widths(
    run_with_width: SimulationRunner, widths: Sequence[float]
) -> WidthSweepResult:
    """Run ``run_with_width`` once per width and collect the sweep points.

    Parameters
    ----------
    run_with_width:
        Callable executing one fixed-width simulation and returning its
        :class:`~repro.simulation.metrics.SimulationResult`.
    widths:
        The widths to evaluate, in any order; results preserve the order.
    """
    if not widths:
        raise ValueError("at least one width is required")
    points = []
    for width in widths:
        result = run_with_width(width)
        points.append(
            WidthSweepPoint(
                width=width,
                cost_rate=result.cost_rate,
                value_refresh_rate=result.value_refresh_rate,
                query_refresh_rate=result.query_refresh_rate,
            )
        )
    return WidthSweepResult(points=points)
