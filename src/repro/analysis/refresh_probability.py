"""Appendix A: estimating the refresh probabilities.

The paper models the data as a one-dimensional random walk with step size
``s`` and derives, per time step,

* the query-initiated refresh probability
  ``P_qr = W / (T_q * delta_max)`` — the probability ``1/T_q`` that a query
  arrives, times the probability ``W / delta_max`` that a uniformly drawn
  constraint in ``[0, delta_max]`` is smaller than the cached width, and
* the value-initiated refresh probability, bounded through Chebyshev's
  inequality on the binomially distributed displacement after ``t`` steps
  (variance ``s**2 * t``): ``P_vr <= t * (2 s / W)**2``, i.e. proportional to
  ``1 / W**2``.

These functions reproduce those formulas so the Figure 2 / Figure 3 analysis
can be checked against measurements.
"""

from __future__ import annotations

import math


def random_walk_variance(step_size: float, steps: float) -> float:
    """Variance of a random walk's displacement after ``steps`` steps.

    Each step moves the value up or down by ``step_size``; the displacement is
    binomially distributed with variance ``step_size**2 * steps``.
    """
    if step_size < 0:
        raise ValueError("step_size must be non-negative")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    return step_size**2 * steps


def chebyshev_escape_probability(
    step_size: float, steps: float, distance: float
) -> float:
    """Chebyshev bound on the walk having moved further than ``distance``.

    ``P[|X_t| >= k] <= Var(X_t) / k**2 = steps * (step_size / distance)**2``,
    capped at 1.
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    variance = random_walk_variance(step_size, steps)
    return min(variance / distance**2, 1.0)


def value_refresh_probability(step_size: float, steps: float, width: float) -> float:
    """Appendix A estimate of ``P_vr``: escape of a centred interval of ``width``.

    With a centred interval the walk must cover ``width / 2`` to escape, so
    ``P_vr ≈ steps * (2 * step_size / width)**2`` (capped at 1).
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        return 1.0
    if math.isinf(width):
        return 0.0
    return chebyshev_escape_probability(step_size, steps, width / 2.0)


def query_refresh_probability(
    width: float, query_period: float, max_constraint: float
) -> float:
    """Appendix A estimate of ``P_qr = W / (T_q * delta_max)`` (capped at 1).

    ``max_constraint`` is the upper end of the uniform constraint distribution
    (``delta_max``); a zero ``delta_max`` means every query demands exactness,
    so any non-zero width triggers a refresh whenever a query arrives.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if query_period <= 0:
        raise ValueError("query_period must be positive")
    if max_constraint < 0:
        raise ValueError("max_constraint must be non-negative")
    query_probability = min(1.0 / query_period, 1.0)
    if max_constraint == 0:
        too_wide_probability = 0.0 if width == 0 else 1.0
    elif math.isinf(width):
        too_wide_probability = 1.0
    else:
        too_wide_probability = min(width / max_constraint, 1.0)
    return query_probability * too_wide_probability


def model_constants(
    step_size: float, query_period: float, max_constraint: float
) -> tuple:
    """Return the Appendix A model constants ``(K1, K2)``.

    ``K1`` is defined through ``P_vr = K1 / W**2`` evaluated one step after a
    refresh (``t = 1``), i.e. ``K1 = 4 * s**2``; ``K2`` through
    ``P_qr = K2 * W``, i.e. ``K2 = 1 / (T_q * delta_max)``.
    """
    if max_constraint <= 0:
        raise ValueError("max_constraint must be positive to define K2")
    if query_period <= 0:
        raise ValueError("query_period must be positive")
    if step_size <= 0:
        raise ValueError("step_size must be positive")
    k1 = 4.0 * step_size**2
    k2 = 1.0 / (query_period * max_constraint)
    return k1, k2
