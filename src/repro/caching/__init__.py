"""Caching substrate: sources, the approximate cache, refreshes, eviction.

This subpackage models the distributed environment of Section 1.1: data
sources each hosting exact numeric values, a cache holding interval
approximations of those values, and the two refresh flows (value-initiated
and query-initiated) whose costs the adaptive algorithm balances.
"""

from repro.caching.cache import ApproximateCache, CacheEntry
from repro.caching.eviction import (
    EvictionPolicy,
    LeastRecentlyUsedEviction,
    RandomEviction,
    WidestFirstEviction,
)
from repro.caching.refresh import CostAccountant, RefreshEvent, RefreshKind
from repro.caching.source import DataSource

__all__ = [
    "ApproximateCache",
    "CacheEntry",
    "DataSource",
    "RefreshKind",
    "RefreshEvent",
    "CostAccountant",
    "EvictionPolicy",
    "WidestFirstEviction",
    "LeastRecentlyUsedEviction",
    "RandomEviction",
]
