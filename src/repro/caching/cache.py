"""The approximate cache.

The cache holds up to ``capacity`` interval approximations of source values.
When it is full and a new approximation arrives, an eviction policy chooses a
victim (the paper evicts the widest original width).  The cache does not have
to notify sources of evictions (Section 2): whether the source learns about
an eviction is a property of the precision policy, handled by the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional

from repro.caching.eviction import EvictionPolicy, WidestFirstEviction
from repro.intervals.interval import UNBOUNDED, Interval


@dataclass
class CacheEntry:
    """One cached approximation plus its bookkeeping metadata.

    ``original_width`` is the policy's unclamped width, used for eviction
    decisions exactly as the paper prescribes ("this decision also is based on
    original widths, not on 0 or infinite widths due to thresholds").
    """

    key: Hashable
    interval: Interval
    original_width: float
    installed_at: float
    last_access_time: float

    def touch(self, time: float) -> None:
        """Record an access at ``time`` (used by LRU-style eviction)."""
        if time < self.last_access_time:
            raise ValueError("access times must be non-decreasing")
        self.last_access_time = time


@dataclass
class CacheStatistics:
    """Running counters describing cache behaviour."""

    insertions: int = 0
    evictions: int = 0
    hits: int = 0
    misses: int = 0
    rejected_insertions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class ApproximateCache:
    """A bounded store of interval approximations keyed by source value id.

    Parameters
    ----------
    capacity:
        Maximum number of approximations held (the paper's ``kappa``).
        ``None`` means unbounded.
    eviction_policy:
        Strategy choosing the victim when over capacity; defaults to the
        paper's widest-first rule.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 (or None for unbounded)")
        self._capacity = capacity
        self._eviction_policy = eviction_policy or WidestFirstEviction()
        self._entries: Dict[Hashable, CacheEntry] = {}
        self.statistics = CacheStatistics()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> Optional[int]:
        """The maximum number of entries (``None`` = unbounded)."""
        return self._capacity

    def keys(self) -> List[Hashable]:
        """Return the keys currently cached."""
        return list(self._entries.keys())

    def entries(self) -> List[CacheEntry]:
        """Return the cached entries (in insertion order)."""
        return list(self._entries.values())

    def get(self, key: Hashable, time: Optional[float] = None) -> Optional[CacheEntry]:
        """Return the entry for ``key`` or ``None``; updates hit/miss counters."""
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        if time is not None:
            entry.touch(time)
        return entry

    def approximation(self, key: Hashable, time: Optional[float] = None) -> Interval:
        """Return the cached interval for ``key``, or ``UNBOUNDED`` if absent.

        A missing approximation carries no information, which is exactly what
        the unbounded interval represents; queries treat the two identically.
        """
        entry = self.get(key, time)
        if entry is None:
            return UNBOUNDED
        return entry.interval

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(
        self,
        key: Hashable,
        interval: Interval,
        original_width: float,
        time: float,
    ) -> List[Hashable]:
        """Install an approximation, evicting if needed.

        Returns the list of evicted keys (possibly containing ``key`` itself
        when the incoming approximation is immediately chosen as the victim,
        which the paper explicitly allows).
        """
        if original_width < 0:
            raise ValueError("original_width must be non-negative")
        entry = CacheEntry(
            key=key,
            interval=interval,
            original_width=original_width,
            installed_at=time,
            last_access_time=time,
        )
        existing = self._entries.pop(key, None)
        self._entries[key] = entry
        if existing is None:
            self.statistics.insertions += 1
        evicted: List[Hashable] = []
        while self._capacity is not None and len(self._entries) > self._capacity:
            victim_key = self._eviction_policy.select_victim(list(self._entries.values()))
            del self._entries[victim_key]
            evicted.append(victim_key)
            if victim_key == key:
                self.statistics.rejected_insertions += 1
            else:
                self.statistics.evictions += 1
        return evicted

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from the cache; returns True if it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Remove every entry (statistics are preserved)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def total_width(self) -> float:
        """Sum of cached interval widths (``inf`` if any entry is unbounded)."""
        total = 0.0
        for entry in self._entries.values():
            if entry.interval.is_unbounded:
                return math.inf
            total += entry.interval.width
        return total

    def widths(self) -> Dict[Hashable, float]:
        """Mapping of key to cached interval width."""
        return {key: entry.interval.width for key, entry in self._entries.items()}
