"""The approximate cache.

The cache holds up to ``capacity`` interval approximations of source values.
When it is full and a new approximation arrives, an eviction policy chooses a
victim (the paper evicts the widest original width).  The cache does not have
to notify sources of evictions (Section 2): whether the source learns about
an eviction is a property of the precision policy, handled by the simulator.

Victim selection is O(log n): for eviction policies that expose an
:meth:`~repro.caching.eviction.EvictionPolicy.index_priority` (widest-first
and LRU), the cache maintains a lazy-invalidation heap over
``(priority, insertion sequence, key)`` tuples.  Entries are never removed
from the heap eagerly — overwrites, touches, invalidations and clears simply
leave stale tuples behind, which are recognised (by a per-entry sequence
number and priority mismatch) and discarded when popped.  Policies without an
index priority (random, externally scored) keep the exhaustive scan.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.caching.eviction import EvictionPolicy, WidestFirstEviction
from repro.intervals.interval import UNBOUNDED, Interval

#: The lazy heap is compacted (rebuilt from live entries) when it holds more
#: than ``_HEAP_COMPACT_FACTOR`` stale-or-live tuples per live entry, keeping
#: memory and pop costs bounded under touch-heavy workloads.
_HEAP_COMPACT_FACTOR = 4
_HEAP_COMPACT_MIN = 64


@dataclass(slots=True)
class CacheEntry:
    """One cached approximation plus its bookkeeping metadata.

    ``original_width`` is the policy's unclamped width, used for eviction
    decisions exactly as the paper prescribes ("this decision also is based on
    original widths, not on 0 or infinite widths due to thresholds").
    ``seq`` is the cache-assigned insertion sequence number; entries stored in
    the cache hold strictly increasing sequences in dict order, which the
    eviction heap uses to reproduce the scan's first-wins tie-breaking.
    """

    key: Hashable
    interval: Interval
    original_width: float
    installed_at: float
    last_access_time: float
    seq: int = 0

    def touch(self, time: float) -> None:
        """Record an access at ``time`` (used by LRU-style eviction)."""
        if time < self.last_access_time:
            raise ValueError("access times must be non-decreasing")
        self.last_access_time = time


@dataclass
class CacheStatistics:
    """Running counters describing cache behaviour."""

    insertions: int = 0
    evictions: int = 0
    hits: int = 0
    misses: int = 0
    rejected_insertions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class ApproximateCache:
    """A bounded store of interval approximations keyed by source value id.

    Parameters
    ----------
    capacity:
        Maximum number of approximations held (the paper's ``kappa``).
        ``None`` means unbounded.
    eviction_policy:
        Strategy choosing the victim when over capacity; defaults to the
        paper's widest-first rule.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 (or None for unbounded)")
        self._capacity = capacity
        self._eviction_policy = eviction_policy or WidestFirstEviction()
        self._entries: Dict[Hashable, CacheEntry] = {}
        self.statistics = CacheStatistics()
        self._seq = itertools.count()
        # The heap index only pays off (and only stays bounded) when evictions
        # can happen, so it is maintained solely for capacity-limited caches
        # whose policy exposes an index priority.  Whether the policy does is
        # decided from its ``index_priority`` of the first real entry (None
        # until then), so policies deriving priorities from entry contents
        # are never probed with fake data.
        self._indexed: Optional[bool] = False if capacity is None else None
        self._heap: List[Tuple] = []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> Optional[int]:
        """The maximum number of entries (``None`` = unbounded)."""
        return self._capacity

    def keys(self) -> List[Hashable]:
        """Return the keys currently cached."""
        return list(self._entries.keys())

    def entries(self) -> List[CacheEntry]:
        """Return the cached entries (in insertion order)."""
        return list(self._entries.values())

    def get(
        self,
        key: Hashable,
        time: Optional[float] = None,
        record_stats: bool = True,
    ) -> Optional[CacheEntry]:
        """Return the entry for ``key`` or ``None``.

        Lookups update the hit/miss counters unless ``record_stats`` is
        ``False``, which internal bookkeeping paths use so that
        :attr:`CacheStatistics.hit_rate` reflects only real workload lookups.
        """
        entry = self._entries.get(key)
        if entry is None:
            if record_stats:
                self.statistics.misses += 1
            return None
        if record_stats:
            self.statistics.hits += 1
        if time is not None and time != entry.last_access_time:
            # Inlined CacheEntry.touch (this runs once per workload lookup).
            if time < entry.last_access_time:
                raise ValueError("access times must be non-decreasing")
            entry.last_access_time = time
            if self._indexed:
                self._heap_push(entry)
        return entry

    def approximation(
        self,
        key: Hashable,
        time: Optional[float] = None,
        record_stats: bool = True,
    ) -> Interval:
        """Return the cached interval for ``key``, or ``UNBOUNDED`` if absent.

        A missing approximation carries no information, which is exactly what
        the unbounded interval represents; queries treat the two identically.
        """
        entry = self.get(key, time, record_stats=record_stats)
        if entry is None:
            return UNBOUNDED
        return entry.interval

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(
        self,
        key: Hashable,
        interval: Interval,
        original_width: float,
        time: float,
    ) -> List[Hashable]:
        """Install an approximation, evicting if needed.

        Returns the list of evicted keys (possibly containing ``key`` itself
        when the incoming approximation is immediately chosen as the victim,
        which the paper explicitly allows).
        """
        if original_width < 0:
            raise ValueError("original_width must be non-negative")
        entry = CacheEntry(
            key=key,
            interval=interval,
            original_width=original_width,
            installed_at=time,
            last_access_time=time,
            seq=next(self._seq),
        )
        existing = self._entries.pop(key, None)
        self._entries[key] = entry
        if existing is None:
            self.statistics.insertions += 1
        if self._indexed is None:
            self._indexed = self._eviction_policy.index_priority(entry) is not None
        evicted: List[Hashable] = []
        if self._indexed:
            self._heap_push(entry)
            while self._capacity is not None and len(self._entries) > self._capacity:
                victim_key = self._pop_victim()
                del self._entries[victim_key]
                evicted.append(victim_key)
                self._record_eviction(victim_key, key)
        else:
            while self._capacity is not None and len(self._entries) > self._capacity:
                victim_key = self._eviction_policy.select_victim(
                    list(self._entries.values())
                )
                del self._entries[victim_key]
                evicted.append(victim_key)
                self._record_eviction(victim_key, key)
        return evicted

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from the cache; returns True if it was present."""
        # Heap tuples for the dropped entry become stale and are discarded
        # lazily when popped.
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Remove every entry (statistics are preserved)."""
        self._entries.clear()
        self._heap.clear()

    def shard_hit_rates(self) -> Tuple[float, ...]:
        """Per-shard hit rates — empty for the single, unsharded cache.

        Both cache surfaces expose this accessor so callers (the simulator's
        result assembly) never need to type-check the topology; see
        :meth:`repro.sharding.coordinator.ShardedCacheCoordinator.shard_hit_rates`.
        """
        return ()

    def _record_eviction(self, victim_key: Hashable, incoming_key: Hashable) -> None:
        if victim_key == incoming_key:
            self.statistics.rejected_insertions += 1
        else:
            self.statistics.evictions += 1

    # ------------------------------------------------------------------
    # Eviction heap maintenance
    # ------------------------------------------------------------------
    def _heap_push(self, entry: CacheEntry) -> None:
        priority = self._eviction_policy.index_priority(entry)
        heapq.heappush(self._heap, (priority, entry.seq, entry.key))
        if len(self._heap) > max(
            _HEAP_COMPACT_MIN, _HEAP_COMPACT_FACTOR * len(self._entries)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        priority = self._eviction_policy.index_priority
        self._heap = [
            (priority(entry), entry.seq, key)
            for key, entry in self._entries.items()
        ]
        heapq.heapify(self._heap)

    def _pop_victim(self) -> Hashable:
        """Pop heap tuples until one matches a live entry's current state."""
        entries = self._entries
        heap = self._heap
        priority = self._eviction_policy.index_priority
        while heap:
            candidate_priority, seq, key = heapq.heappop(heap)
            entry = entries.get(key)
            if (
                entry is not None
                and entry.seq == seq
                and priority(entry) == candidate_priority
            ):
                return key
        # Every tuple was stale (cannot happen while entries exist and pushes
        # accompany every mutation, but rebuild defensively rather than fail).
        self._compact_heap()
        if not self._heap:
            raise ValueError("cannot select an eviction victim from an empty cache")
        return self._pop_victim()

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def total_width(self) -> float:
        """Sum of cached interval widths (``inf`` if any entry is unbounded)."""
        total = 0.0
        for entry in self._entries.values():
            if entry.interval.is_unbounded:
                return math.inf
            total += entry.interval.width
        return total

    def widths(self) -> Dict[Hashable, float]:
        """Mapping of key to cached interval width."""
        return {key: entry.interval.width for key, entry in self._entries.items()}
