"""Struct-of-arrays mirror of the hot cache/source state (the columnar core).

The paper-exact simulation walks one Python object per source per event:
``DataSource`` for the exact value and publication, ``CacheEntry``/``Interval``
for the cached approximation.  That layout is authoritative and stays the
compat mode, but it makes the two hottest per-tick jobs — "did any update
escape its published bound?" and "which intervals must a SUM query refresh?" —
O(n) attribute-chasing loops.  :class:`ColumnarState` mirrors exactly the
fields those jobs read into parallel numpy arrays keyed by a fixed source
order, so the batch kernel screens a whole update column with a handful of
vector ops and refresh selection sorts one float array.

The mirror is *derived* state with a strict ownership split while a columnar
run is active:

* ``values`` / ``update_count`` / ``last_update_time`` are authoritative in
  the arrays (bulk-applied per kernel position) and written back to the
  ``DataSource`` objects lazily — :meth:`sync_source` immediately before any
  scalar refresh path reads ``source.value``, :meth:`sync_all` at the end of
  the run.
* ``low`` / ``high`` / ``width`` / ``original_width`` / ``last_refresh_time``
  / ``published`` mirror the source's publication
  (``DataSource.published_interval`` and friends), which the object world
  still owns: every ``publish``/``forget_publication`` on the scalar install
  path is echoed here via :meth:`publish` / :meth:`clear_publication`.

All floats cross between worlds unmodified (float64 round-trips are exact),
so the mirrored run is bit-identical to the object run; the equality and
round-trip property tests in ``tests/test_columnar_core.py`` pin that.
:func:`cache_to_columns` / :func:`columns_to_cache` round-trip a whole
``ApproximateCache`` through the columnar layout the same way (bounds,
original widths and access times — hence eviction priorities — preserved).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.caching.cache import ApproximateCache
from repro.caching.eviction import EvictionPolicy
from repro.caching.source import DataSource
from repro.intervals.interval import UNBOUNDED, Interval

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _reconstruct_interval(low: float, high: float) -> Interval:
    """Rebuild an interval from endpoint floats (canonical ``UNBOUNDED``)."""
    if low == _NEG_INF and high == _POS_INF:
        return UNBOUNDED
    return Interval(low, high)


class ColumnarState:
    """Parallel arrays over a fixed key order mirroring the per-source state.

    Parameters
    ----------
    keys:
        The source population in mirror order (the merged timeline's key
        order, so kernel columns align with the arrays positionally).
    sources:
        The live ``DataSource`` objects to mirror; every key must be present.
    """

    __slots__ = (
        "keys",
        "index_of",
        "values",
        "update_count",
        "last_update_time",
        "low",
        "high",
        "width",
        "original_width",
        "last_refresh_time",
        "published",
    )

    def __init__(
        self, keys: Sequence[Hashable], sources: Mapping[Hashable, DataSource]
    ) -> None:
        self.keys: Tuple[Hashable, ...] = tuple(keys)
        self.index_of: Dict[Hashable, int] = {
            key: index for index, key in enumerate(self.keys)
        }
        count = len(self.keys)
        self.values = np.empty(count, dtype=np.float64)
        self.update_count = np.zeros(count, dtype=np.int64)
        self.last_update_time = np.zeros(count, dtype=np.float64)
        self.low = np.full(count, _NEG_INF, dtype=np.float64)
        self.high = np.full(count, _POS_INF, dtype=np.float64)
        self.width = np.full(count, _POS_INF, dtype=np.float64)
        self.original_width = np.zeros(count, dtype=np.float64)
        self.last_refresh_time = np.zeros(count, dtype=np.float64)
        self.published = np.zeros(count, dtype=bool)
        for index, key in enumerate(self.keys):
            source = sources[key]
            self.values[index] = source.value
            self.update_count[index] = source.update_count
            self.last_update_time[index] = source.last_update_time
            self.original_width[index] = source.published_width
            self.last_refresh_time[index] = source.last_refresh_time
            interval = source.published_interval
            if interval is not None:
                self.publish(
                    index, interval, source.published_width, source.last_refresh_time
                )

    # ------------------------------------------------------------------
    # Publication mirroring (driven by the scalar install path)
    # ------------------------------------------------------------------
    def publish(
        self, index: int, interval: Interval, original_width: float, time: float
    ) -> None:
        """Mirror ``source.publish(interval, original_width, time)``."""
        self.low[index] = interval.low
        self.high[index] = interval.high
        self.width[index] = interval.width
        self.original_width[index] = original_width
        self.last_refresh_time[index] = time
        self.published[index] = True

    def clear_publication(self, index: int) -> None:
        """Mirror ``source.forget_publication()`` at ``index``."""
        self.published[index] = False

    def interval_at(self, index: int) -> Interval:
        """The published interval at ``index`` (``UNBOUNDED`` when none)."""
        if not self.published[index]:
            return UNBOUNDED
        return _reconstruct_interval(float(self.low[index]), float(self.high[index]))

    # ------------------------------------------------------------------
    # Write-back to the object world
    # ------------------------------------------------------------------
    def sync_source(self, source: DataSource, index: int) -> None:
        """Write the array-owned update fields back to one ``DataSource``.

        Called immediately before a scalar refresh path reads
        ``source.value`` so the object observes exactly the state the arrays
        accumulated.  Publication fields are object-owned and not touched.
        """
        source.value = float(self.values[index])
        source.update_count = int(self.update_count[index])
        source.last_update_time = float(self.last_update_time[index])

    def sync_all(self, sources: Mapping[Hashable, DataSource]) -> None:
        """Write every array-owned field back (end-of-run reconciliation)."""
        for index, key in enumerate(self.keys):
            self.sync_source(sources[key], index)

    # ------------------------------------------------------------------
    # Round-trip construction (property tests, diagnostics)
    # ------------------------------------------------------------------
    def to_sources(self) -> Dict[Hashable, DataSource]:
        """Materialise equivalent ``DataSource`` objects from the arrays."""
        sources: Dict[Hashable, DataSource] = {}
        for index, key in enumerate(self.keys):
            source = DataSource(key=key, value=float(self.values[index]))
            source.update_count = int(self.update_count[index])
            source.last_update_time = float(self.last_update_time[index])
            source.published_width = float(self.original_width[index])
            source.last_refresh_time = float(self.last_refresh_time[index])
            if self.published[index]:
                source.published_interval = self.interval_at(index)
            sources[key] = source
        return sources

    def equals_sources(self, sources: Mapping[Hashable, DataSource]) -> bool:
        """Field-for-field equality against live ``DataSource`` objects."""
        for index, key in enumerate(self.keys):
            source = sources[key]
            if (
                float(self.values[index]) != source.value
                or int(self.update_count[index]) != source.update_count
                or float(self.last_update_time[index]) != source.last_update_time
            ):
                return False
            interval = source.published_interval
            if bool(self.published[index]) != (interval is not None):
                return False
            if interval is not None:
                if (
                    float(self.low[index]) != interval.low
                    or float(self.high[index]) != interval.high
                    or not _float_equal(float(self.width[index]), interval.width)
                    or float(self.original_width[index]) != source.published_width
                    or float(self.last_refresh_time[index]) != source.last_refresh_time
                ):
                    return False
        return True


def _float_equal(left: float, right: float) -> bool:
    return left == right or (math.isnan(left) and math.isnan(right))


# ----------------------------------------------------------------------
# Whole-cache round-trips through the columnar layout
# ----------------------------------------------------------------------
def cache_to_columns(cache: ApproximateCache) -> Dict[str, object]:
    """Decompose a cache's live entries into parallel columnar arrays.

    Entries are emitted in insertion (dict) order, so rebuilding with
    :func:`columns_to_cache` reproduces the relative sequence numbers the
    eviction heap tie-breaks on.
    """
    entries = cache.entries()
    count = len(entries)
    keys: List[Hashable] = [entry.key for entry in entries]
    low = np.empty(count, dtype=np.float64)
    high = np.empty(count, dtype=np.float64)
    width = np.empty(count, dtype=np.float64)
    original_width = np.empty(count, dtype=np.float64)
    installed_at = np.empty(count, dtype=np.float64)
    last_access_time = np.empty(count, dtype=np.float64)
    for index, entry in enumerate(entries):
        low[index] = entry.interval.low
        high[index] = entry.interval.high
        width[index] = entry.interval.width
        original_width[index] = entry.original_width
        installed_at[index] = entry.installed_at
        last_access_time[index] = entry.last_access_time
    return {
        "keys": keys,
        "low": low,
        "high": high,
        "width": width,
        "original_width": original_width,
        "installed_at": installed_at,
        "last_access_time": last_access_time,
    }


def columns_to_cache(
    columns: Mapping[str, object],
    capacity: Optional[int] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
) -> ApproximateCache:
    """Rebuild an :class:`ApproximateCache` from :func:`cache_to_columns` output.

    Puts are replayed in column order (restoring relative entry sequence) and
    post-install accesses re-applied, so bounds, original widths, access
    times — and therefore every eviction priority — match the source cache
    field for field.  The rebuilt statistics count only the replay itself.
    """
    cache = ApproximateCache(capacity=capacity, eviction_policy=eviction_policy)
    keys = columns["keys"]
    low = columns["low"]
    high = columns["high"]
    original_width = columns["original_width"]
    installed_at = columns["installed_at"]
    last_access_time = columns["last_access_time"]
    for index, key in enumerate(keys):
        interval = _reconstruct_interval(float(low[index]), float(high[index]))
        time = float(installed_at[index])
        cache.put(key, interval, float(original_width[index]), time)
        accessed = float(last_access_time[index])
        if accessed != time:
            cache.get(key, accessed, record_stats=False)
    return cache
