"""Cache eviction policies.

The paper's cache evicts the *widest* intervals when space runs out, "since
they are the least precise approximations and thus contribute least to
overall cache precision" (Section 2), and the decision is based on original
(unclamped) widths.  LRU and random eviction are provided as ablation
baselines.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.caching.cache import CacheEntry


class EvictionPolicy(ABC):
    """Chooses which cache entry to evict when the cache is over capacity."""

    @abstractmethod
    def select_victim(self, entries: Sequence["CacheEntry"]) -> Hashable:
        """Return the key of the entry to evict from ``entries`` (non-empty)."""

    def index_priority(self, entry: "CacheEntry") -> Optional[Tuple]:
        """Return a sortable eviction priority for ``entry``, or ``None``.

        Policies whose victim is always the entry minimising a pure function
        of the entry's own fields (ties broken by insertion order) return that
        tuple here, enabling the cache to maintain a heap index and find
        victims in O(log n) instead of scanning every entry.  The tuple must
        order victims exactly as :meth:`select_victim` would: the entry with
        the smallest priority (then the smallest insertion sequence) is the
        victim.  Policies with external or random state return ``None`` (the
        default) and keep the exhaustive scan.
        """
        return None

    def describe(self) -> str:
        """Short human-readable name, used in ablation reports."""
        return type(self).__name__

    @staticmethod
    def _require_entries(entries: Sequence["CacheEntry"]) -> None:
        if not entries:
            raise ValueError("cannot select an eviction victim from an empty cache")


class WidestFirstEviction(EvictionPolicy):
    """The paper's policy: evict the entry with the largest original width.

    Ties are broken by least-recent access so behaviour is deterministic.
    """

    def select_victim(self, entries: Sequence["CacheEntry"]) -> Hashable:
        self._require_entries(entries)
        victim = max(entries, key=lambda e: (e.original_width, -e.last_access_time))
        return victim.key

    def index_priority(self, entry: "CacheEntry") -> Tuple[float, float]:
        return (-entry.original_width, entry.last_access_time)


class LeastRecentlyUsedEviction(EvictionPolicy):
    """Classic LRU eviction, as an ablation baseline."""

    def select_victim(self, entries: Sequence["CacheEntry"]) -> Hashable:
        self._require_entries(entries)
        victim = min(entries, key=lambda e: e.last_access_time)
        return victim.key

    def index_priority(self, entry: "CacheEntry") -> Tuple[float]:
        return (entry.last_access_time,)


class RandomEviction(EvictionPolicy):
    """Uniformly random eviction, as an ablation baseline."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random()

    def select_victim(self, entries: Sequence["CacheEntry"]) -> Hashable:
        self._require_entries(entries)
        return self._rng.choice(list(entries)).key


class LowestValueEviction(EvictionPolicy):
    """Evict the entry with the smallest externally supplied benefit score.

    Used by the WJH97 exact-caching baseline, which evicts the value with the
    lowest projected cost difference ``C_nc - C_c``.  The score is looked up
    through a callable so the policy owning the statistics stays in charge.
    """

    def __init__(self, score) -> None:
        if not callable(score):
            raise TypeError("score must be a callable mapping key -> float")
        self._score = score

    def select_victim(self, entries: Sequence["CacheEntry"]) -> Hashable:
        self._require_entries(entries)
        victim = min(entries, key=lambda e: (self._score(e.key), e.last_access_time))
        return victim.key
