"""Precision policies: pluggable strategies that set refreshed interval widths.

All policies share the :class:`~repro.caching.policies.base.PrecisionPolicy`
interface used by the simulator.  The paper's contribution is
:class:`~repro.caching.policies.adaptive.AdaptivePrecisionPolicy`; the
baselines it is compared against are
:class:`~repro.caching.policies.exact_caching.ExactCachingPolicy` (WJH97
adaptive replication, Section 4.6) and
:class:`~repro.caching.policies.divergence.DivergenceCachingPolicy`
(HSW94, Section 4.7).  :class:`~repro.caching.policies.static.StaticWidthPolicy`
fixes the width, which is how the Figure 3 optimality sweep is produced.
"""

from repro.caching.policies.adaptive import (
    AdaptivePrecisionPolicy,
    UncenteredAdaptivePolicy,
)
from repro.caching.policies.base import PrecisionDecision, PrecisionPolicy
from repro.caching.policies.divergence import DivergenceCachingPolicy
from repro.caching.policies.exact_caching import ExactCachingPolicy
from repro.caching.policies.static import StaticWidthPolicy

__all__ = [
    "PrecisionPolicy",
    "PrecisionDecision",
    "AdaptivePrecisionPolicy",
    "UncenteredAdaptivePolicy",
    "ExactCachingPolicy",
    "DivergenceCachingPolicy",
    "StaticWidthPolicy",
]
