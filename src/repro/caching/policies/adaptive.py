"""The paper's adaptive precision policy, and its uncentered variation.

:class:`AdaptivePrecisionPolicy` manages one
:class:`~repro.core.policy.AdaptiveWidthController` per cached value and turns
its published widths into concrete intervals using a placement strategy
(centred by default).  :class:`UncenteredAdaptivePolicy` is the Section 4.5
variation with independently adapted upper/lower widths.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional

from repro.caching.policies.base import PrecisionDecision, PrecisionPolicy
from repro.core.parameters import PrecisionParameters
from repro.core.policy import AdaptiveWidthController
from repro.core.variations import UncenteredWidthController
from repro.intervals.interval import Interval
from repro.intervals.placement import CenteredPlacement, IntervalPlacement


class AdaptivePrecisionPolicy(PrecisionPolicy):
    """Adaptive width setting (Section 2) for every value independently.

    Parameters
    ----------
    parameters:
        Algorithm parameters (costs, adaptivity ``alpha``, thresholds
        ``theta_0`` / ``theta_1``).
    initial_width:
        Width used the first time a value is refreshed.  The algorithm
        converges from any positive starting point; pick something within an
        order of magnitude of typical precision constraints to shorten warm-up.
    placement:
        How refreshed intervals are positioned around the exact value
        (centred by default, per the paper).
    rng:
        Randomness source shared by all per-value controllers (pass a seeded
        instance for reproducibility).
    """

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        placement: Optional[IntervalPlacement] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial_width <= 0:
            raise ValueError("initial_width must be positive")
        self._parameters = parameters
        self._initial_width = initial_width
        self._placement = placement or CenteredPlacement()
        self._rng = rng if rng is not None else random.Random()
        self._controllers: Dict[Hashable, AdaptiveWidthController] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> PrecisionParameters:
        """The configured algorithm parameters."""
        return self._parameters

    def controller(self, key: Hashable) -> AdaptiveWidthController:
        """Return (creating on first use) the width controller for ``key``."""
        controller = self._controllers.get(key)
        if controller is None:
            controller = AdaptiveWidthController(
                self._parameters, initial_width=self._initial_width, rng=self._rng
            )
            self._controllers[key] = controller
        return controller

    def tracked_keys(self) -> list:
        """Keys for which a controller has been instantiated."""
        return list(self._controllers.keys())

    def current_width(self, key: Hashable) -> float:
        """The unclamped width currently held for ``key``."""
        return self.controller(key).width

    # ------------------------------------------------------------------
    # PrecisionPolicy interface
    # ------------------------------------------------------------------
    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        controller = self.controller(key)
        controller.on_value_initiated_refresh()
        return self._decision(controller, exact_value)

    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        controller = self.controller(key)
        controller.on_query_initiated_refresh()
        return self._decision(controller, exact_value)

    def _decision(
        self, controller: AdaptiveWidthController, exact_value: float
    ) -> PrecisionDecision:
        published = controller.published_width()
        interval = self._placement.place(exact_value, published)
        return PrecisionDecision(interval=interval, original_width=controller.width)

    def describe(self) -> str:
        return (
            f"AdaptivePrecisionPolicy(rho={self._parameters.cost_factor:g}, "
            f"alpha={self._parameters.adaptivity:g}, "
            f"theta0={self._parameters.lower_threshold:g}, "
            f"theta1={self._parameters.upper_threshold:g})"
        )


class UncenteredAdaptivePolicy(PrecisionPolicy):
    """Section 4.5 variation: independently adapted upper and lower widths.

    The policy needs to know *which side* the value escaped from, so it keeps
    the last published interval per key and compares the new exact value
    against it when a value-initiated refresh arrives.
    """

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial_width <= 0:
            raise ValueError("initial_width must be positive")
        self._parameters = parameters
        self._initial_width = initial_width
        self._rng = rng if rng is not None else random.Random()
        self._controllers: Dict[Hashable, UncenteredWidthController] = {}
        self._last_interval: Dict[Hashable, Interval] = {}

    def _controller(self, key: Hashable) -> UncenteredWidthController:
        controller = self._controllers.get(key)
        if controller is None:
            controller = UncenteredWidthController(
                self._parameters, initial_width=self._initial_width, rng=self._rng
            )
            self._controllers[key] = controller
        return controller

    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        controller = self._controller(key)
        previous = self._last_interval.get(key)
        if previous is not None and exact_value > previous.high:
            controller.on_upper_escape()
        elif previous is not None and exact_value < previous.low:
            controller.on_lower_escape()
        else:
            # No record of the previous interval (first refresh): treat as an
            # upper escape, the common case for traffic-like data.
            controller.on_upper_escape()
        return self._decision(key, controller, exact_value)

    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        controller = self._controller(key)
        controller.on_query_initiated_refresh()
        return self._decision(key, controller, exact_value)

    def _decision(
        self, key: Hashable, controller: UncenteredWidthController, exact_value: float
    ) -> PrecisionDecision:
        lower, upper = controller.published_widths()
        interval = Interval(exact_value - lower, exact_value + upper)
        self._last_interval[key] = interval
        return PrecisionDecision(interval=interval, original_width=controller.width)

    def describe(self) -> str:
        return (
            f"UncenteredAdaptivePolicy(rho={self._parameters.cost_factor:g}, "
            f"alpha={self._parameters.adaptivity:g})"
        )
