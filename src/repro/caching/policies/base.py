"""Interface shared by all precision policies.

A precision policy answers one question for the simulator: *when a refresh of
value ``key`` happens at time ``t`` with exact value ``v``, what approximation
should the source send to the cache?*  The answer is a
:class:`PrecisionDecision`, containing both the interval to install and the
original (unclamped) width the cache should use for eviction decisions.

Policies additionally observe reads and writes so that history-based baselines
(WJH97 exact caching, HSW94 divergence caching) can maintain their statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

from repro.intervals.interval import Interval


class PrecisionDecision:
    """The approximation a policy chooses to publish on a refresh.

    A ``__slots__`` value object (policies build one per refresh).

    Parameters
    ----------
    interval:
        The approximation sent to the cache (already threshold-clamped and
        placed around the exact value).
    original_width:
        The policy's internal width before clamping; the cache evicts based on
        this value, per Section 2.
    """

    __slots__ = ("interval", "original_width")

    def __init__(self, interval: Interval, original_width: float) -> None:
        if original_width < 0:
            raise ValueError("original_width must be non-negative")
        self.interval = interval
        self.original_width = original_width

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrecisionDecision(interval={self.interval!r}, "
            f"original_width={self.original_width!r})"
        )


class PrecisionPolicy(ABC):
    """Strategy deciding the precision of every refreshed approximation."""

    # ------------------------------------------------------------------
    # Refresh decisions
    # ------------------------------------------------------------------
    @abstractmethod
    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        """Approximation to push after the value escaped its interval."""

    @abstractmethod
    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        """Approximation to return alongside an exact value fetched by a query."""

    # ------------------------------------------------------------------
    # Workload observations (optional hooks)
    # ------------------------------------------------------------------
    def record_write(self, key: Hashable, time: float) -> None:
        """Observe an update to the source value (default: ignore)."""

    def record_read(self, key: Hashable, time: float, served_from_cache: bool) -> None:
        """Observe a query access to the value (default: ignore)."""

    def record_constraint(self, key: Hashable, constraint: float, time: float) -> None:
        """Observe the precision constraint of a query touching ``key``.

        Most policies ignore query constraints (the paper's algorithm learns
        purely from refreshes); the Divergence Caching baseline uses them to
        project the cost of candidate divergence allowances.
        """

    # ------------------------------------------------------------------
    # Protocol properties
    # ------------------------------------------------------------------
    def notifies_source_on_eviction(self) -> bool:
        """Whether cache evictions are reported back to the source.

        The paper's algorithm does not require eviction notifications; the
        WJH97 exact caching baseline does (evicted values stop being
        replicated, so writes to them stop incurring cost).
        """
        return False

    def describe(self) -> str:
        """Short human-readable policy name for reports."""
        return type(self).__name__
