"""The HSW94 Divergence Caching baseline (Section 4.7).

Divergence Caching approximates a value by a *stale copy* whose precision is
the number of source updates it is allowed to miss (its divergence
allowance).  Unlike the paper's incremental adaptation, the HSW94 algorithm
"continually resets the precision from scratch using detailed projections for
data access and update patterns", based on moving windows of the ``k`` most
recent reads (kept at the cache) and the ``k`` most recent writes (kept at the
source); the paper uses ``k = 23``.

The projection implemented here follows that description: estimate the read
and write rates from the windows, estimate the distribution of query
staleness constraints from recently observed constraints, and pick the
allowance ``d`` minimising the projected cost rate::

    cost(d) = C_vr * write_rate / (d + 1)          # invalidation pushes
            + C_qr * read_rate * P[constraint < d] # reads that must go remote

evaluated over the candidate allowances ``{0} ∪ {observed constraints} ∪
{infinity}`` (the projected cost is piecewise between observed constraints, so
the optimum always sits at one of these candidates).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List

from repro.caching.policies.base import PrecisionDecision, PrecisionPolicy
from repro.intervals.interval import Interval


@dataclass
class _AccessWindows:
    """Moving windows of recent reads, writes, and observed constraints."""

    read_times: Deque[float]
    write_times: Deque[float]
    constraints: Deque[float]

    @classmethod
    def with_size(cls, window_size: int) -> "_AccessWindows":
        return cls(
            read_times=deque(maxlen=window_size),
            write_times=deque(maxlen=window_size),
            constraints=deque(maxlen=window_size),
        )


def _rate(times: Deque[float], now: float) -> float:
    """Events per time unit implied by a window of event timestamps."""
    if len(times) < 2:
        return 0.0
    span = now - times[0]
    if span <= 0:
        return 0.0
    return len(times) / span


class DivergenceCachingPolicy(PrecisionPolicy):
    """Projection-based divergence (staleness allowance) setting per HSW94.

    Parameters
    ----------
    value_refresh_cost / query_refresh_cost:
        ``C_vr`` and ``C_qr``; the paper's comparison uses 1 and 2.
    window_size:
        The moving-window size ``k`` (23 in the paper).
    initial_allowance:
        Allowance used before enough statistics have accumulated.
    """

    def __init__(
        self,
        value_refresh_cost: float = 1.0,
        query_refresh_cost: float = 2.0,
        window_size: int = 23,
        initial_allowance: float = 1.0,
    ) -> None:
        if value_refresh_cost <= 0 or query_refresh_cost <= 0:
            raise ValueError("refresh costs must be positive")
        if window_size < 1:
            raise ValueError("window_size (k) must be at least 1")
        if initial_allowance < 0:
            raise ValueError("initial_allowance must be non-negative")
        self._c_vr = value_refresh_cost
        self._c_qr = query_refresh_cost
        self._window_size = window_size
        self._initial_allowance = initial_allowance
        self._windows: Dict[Hashable, _AccessWindows] = {}

    # ------------------------------------------------------------------
    # Window bookkeeping
    # ------------------------------------------------------------------
    def _window(self, key: Hashable) -> _AccessWindows:
        window = self._windows.get(key)
        if window is None:
            window = _AccessWindows.with_size(self._window_size)
            self._windows[key] = window
        return window

    def record_write(self, key: Hashable, time: float) -> None:
        self._window(key).write_times.append(time)

    def record_read(self, key: Hashable, time: float, served_from_cache: bool) -> None:
        self._window(key).read_times.append(time)

    def record_constraint(self, key: Hashable, constraint: float, time: float) -> None:
        if constraint < 0:
            raise ValueError("constraint must be non-negative")
        self._window(key).constraints.append(constraint)

    # ------------------------------------------------------------------
    # Allowance projection
    # ------------------------------------------------------------------
    def projected_cost(self, key: Hashable, allowance: float, now: float) -> float:
        """Projected cost rate of using ``allowance`` for ``key`` at ``now``."""
        if allowance < 0:
            raise ValueError("allowance must be non-negative")
        window = self._window(key)
        write_rate = _rate(window.write_times, now)
        read_rate = _rate(window.read_times, now)
        invalidation_rate = write_rate / (allowance + 1.0)
        remote_read_rate = read_rate * self._fraction_below(window, allowance)
        return self._c_vr * invalidation_rate + self._c_qr * remote_read_rate

    @staticmethod
    def _fraction_below(window: _AccessWindows, allowance: float) -> float:
        """Estimated probability that a query's constraint is below ``allowance``."""
        if not window.constraints:
            return 0.0
        below = sum(1 for constraint in window.constraints if constraint < allowance)
        return below / len(window.constraints)

    def choose_allowance(self, key: Hashable, now: float) -> float:
        """Return the allowance minimising the projected cost rate."""
        window = self._window(key)
        if not window.write_times and not window.read_times:
            return self._initial_allowance
        candidates: List[float] = [0.0, math.inf]
        candidates.extend(sorted(set(window.constraints)))
        best_allowance = candidates[0]
        best_cost = math.inf
        for candidate in candidates:
            cost = self.projected_cost(key, candidate, now)
            improves = cost < best_cost - 1e-12
            ties_with_smaller = (
                abs(cost - best_cost) <= 1e-12 and candidate < best_allowance
            )
            if improves or ties_with_smaller:
                best_cost = cost
                best_allowance = candidate
        return best_allowance

    # ------------------------------------------------------------------
    # Refresh decisions
    # ------------------------------------------------------------------
    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(key, exact_value, time)

    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(key, exact_value, time)

    def _decision(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        allowance = self.choose_allowance(key, time)
        interval = Interval.above(exact_value, allowance)
        return PrecisionDecision(interval=interval, original_width=allowance)

    def describe(self) -> str:
        return (
            f"DivergenceCachingPolicy(k={self._window_size}, C_vr={self._c_vr:g}, "
            f"C_qr={self._c_qr:g})"
        )
