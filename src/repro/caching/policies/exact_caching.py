"""The WJH97 adaptive exact-caching baseline (Section 4.6).

Wolfson, Jajodia and Huang's adaptive data replication algorithm decides, per
value, whether to keep an exact replica at the cache.  As summarised in the
paper: the number of reads ``r`` and writes ``w`` of each value are counted,
and whenever ``r + w >= x`` the caching decision is re-evaluated by comparing
the projected cost of *not* caching (``C_nc = r * C_qr``, every read goes
remote) against the projected cost of caching (``C_c = w * C_vr``, every write
must be propagated).  The value is cached iff ``C_c < C_nc``.  When the cache
is space-constrained, the values with the lowest benefit ``C_nc - C_c`` are
evicted and the source is notified.

In interval terms the decision is binary: width 0 (exact replica) or width
infinity (not cached), which is exactly how the paper frames its subsumption
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.caching.policies.base import PrecisionDecision, PrecisionPolicy
from repro.intervals.interval import UNBOUNDED, Interval


@dataclass
class _ValueStatistics:
    """Per-value read/write counters between re-evaluations."""

    reads: int = 0
    writes: int = 0
    cached: bool = True

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class ExactCachingPolicy(PrecisionPolicy):
    """WJH97-style adaptive replication expressed as a precision policy.

    Parameters
    ----------
    value_refresh_cost:
        ``C_vr`` — cost of propagating a write to the cached replica.
    query_refresh_cost:
        ``C_qr`` — cost of a remote read when the value is not cached.
    reevaluation_window:
        The parameter ``x``: the caching decision for a value is revisited
        every time its combined read+write count since the last decision
        reaches this window.  The paper tunes ``x`` between 3 and 45 per run
        and reports the best; the experiments in this reproduction do the
        same sweep.
    cache_initially:
        Whether values start out replicated before any statistics exist.
    """

    def __init__(
        self,
        value_refresh_cost: float = 1.0,
        query_refresh_cost: float = 2.0,
        reevaluation_window: int = 20,
        cache_initially: bool = True,
    ) -> None:
        if value_refresh_cost <= 0 or query_refresh_cost <= 0:
            raise ValueError("refresh costs must be positive")
        if reevaluation_window < 1:
            raise ValueError("reevaluation_window (x) must be at least 1")
        self._c_vr = value_refresh_cost
        self._c_qr = query_refresh_cost
        self._window = reevaluation_window
        self._cache_initially = cache_initially
        self._stats: Dict[Hashable, _ValueStatistics] = {}

    # ------------------------------------------------------------------
    # Statistics and decision logic
    # ------------------------------------------------------------------
    def _statistics(self, key: Hashable) -> _ValueStatistics:
        stats = self._stats.get(key)
        if stats is None:
            stats = _ValueStatistics(cached=self._cache_initially)
            self._stats[key] = stats
        return stats

    def is_cached(self, key: Hashable) -> bool:
        """Current replication decision for ``key``."""
        return self._statistics(key).cached

    def benefit(self, key: Hashable) -> float:
        """Projected benefit of caching ``key``: ``C_nc - C_c`` so far.

        Used as the eviction score when the cache is space-constrained — the
        lowest-benefit values are evicted first.
        """
        stats = self._statistics(key)
        return stats.reads * self._c_qr - stats.writes * self._c_vr

    def _maybe_reevaluate(self, key: Hashable) -> None:
        stats = self._statistics(key)
        if stats.accesses < self._window:
            return
        cost_not_caching = stats.reads * self._c_qr
        cost_caching = stats.writes * self._c_vr
        stats.cached = cost_caching < cost_not_caching
        stats.reads = 0
        stats.writes = 0

    # ------------------------------------------------------------------
    # Workload observations
    # ------------------------------------------------------------------
    def record_write(self, key: Hashable, time: float) -> None:
        stats = self._statistics(key)
        stats.writes += 1
        self._maybe_reevaluate(key)

    def record_read(self, key: Hashable, time: float, served_from_cache: bool) -> None:
        stats = self._statistics(key)
        stats.reads += 1
        self._maybe_reevaluate(key)

    # ------------------------------------------------------------------
    # Refresh decisions
    # ------------------------------------------------------------------
    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(key, exact_value)

    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(key, exact_value)

    def _decision(self, key: Hashable, exact_value: float) -> PrecisionDecision:
        if self._statistics(key).cached:
            return PrecisionDecision(
                interval=Interval.exact(exact_value), original_width=0.0
            )
        return PrecisionDecision(interval=UNBOUNDED, original_width=float("inf"))

    # ------------------------------------------------------------------
    # Protocol properties
    # ------------------------------------------------------------------
    def notifies_source_on_eviction(self) -> bool:
        return True

    def describe(self) -> str:
        return (
            f"ExactCachingPolicy(x={self._window}, C_vr={self._c_vr:g}, "
            f"C_qr={self._c_qr:g})"
        )
