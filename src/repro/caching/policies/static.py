"""Fixed-width precision policy.

Used for the Figure 3 optimality study, where the adaptive part of the
algorithm is switched off and the interval width is held constant across a
run while being varied across runs to trace out the measured
``P_vr`` / ``P_qr`` / ``Omega`` curves.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.caching.policies.base import PrecisionDecision, PrecisionPolicy
from repro.intervals.placement import CenteredPlacement, IntervalPlacement


class StaticWidthPolicy(PrecisionPolicy):
    """Always publish the same interval width, never adapting."""

    def __init__(
        self,
        width: float,
        placement: Optional[IntervalPlacement] = None,
    ) -> None:
        if width < 0:
            raise ValueError("width must be non-negative")
        self._width = float(width)
        self._placement = placement or CenteredPlacement()

    @property
    def width(self) -> float:
        """The fixed width published on every refresh."""
        return self._width

    def on_value_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(exact_value)

    def on_query_initiated_refresh(
        self, key: Hashable, exact_value: float, time: float
    ) -> PrecisionDecision:
        return self._decision(exact_value)

    def _decision(self, exact_value: float) -> PrecisionDecision:
        interval = self._placement.place(exact_value, self._width)
        return PrecisionDecision(interval=interval, original_width=self._width)

    def describe(self) -> str:
        return f"StaticWidthPolicy(width={self._width:g})"
