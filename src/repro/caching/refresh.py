"""Refresh events and cost accounting.

A *refresh* is any transmission of a fresh approximation from a source to the
cache.  The paper distinguishes two kinds:

* **value-initiated** — pushed by the source because the exact value escaped
  the cached interval (cost ``C_vr``), and
* **query-initiated** — pulled by the cache because a query needed the exact
  value (cost ``C_qr``).

:class:`CostAccountant` accumulates the cost and count of each kind, giving
the cost-rate metric ``Omega`` that every experiment in the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, List


class RefreshKind(Enum):
    """The two refresh flows of the approximate caching protocol."""

    VALUE_INITIATED = "value_initiated"
    QUERY_INITIATED = "query_initiated"


@dataclass(frozen=True)
class RefreshEvent:
    """A single refresh: what was refreshed, when, why, and at what cost."""

    kind: RefreshKind
    key: Hashable
    time: float
    cost: float
    published_width: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("refresh cost must be non-negative")
        if self.time < 0:
            raise ValueError("refresh time must be non-negative")


@dataclass
class CostAccountant:
    """Accumulates refresh costs and counts, optionally keeping the event log.

    Parameters
    ----------
    keep_events:
        When True every :class:`RefreshEvent` is retained (useful for the
        time-series figures); otherwise only aggregate counters are kept.
    """

    keep_events: bool = False
    total_cost: float = 0.0
    value_refresh_count: int = 0
    query_refresh_count: int = 0
    value_refresh_cost: float = 0.0
    query_refresh_cost: float = 0.0
    per_key_counts: Dict[Hashable, int] = field(default_factory=dict)
    events: List[RefreshEvent] = field(default_factory=list)

    def record(self, event: RefreshEvent) -> None:
        """Add one refresh to the running totals."""
        self.total_cost += event.cost
        self.per_key_counts[event.key] = self.per_key_counts.get(event.key, 0) + 1
        if event.kind is RefreshKind.VALUE_INITIATED:
            self.value_refresh_count += 1
            self.value_refresh_cost += event.cost
        else:
            self.query_refresh_count += 1
            self.query_refresh_cost += event.cost
        if self.keep_events:
            self.events.append(event)

    def record_refresh(
        self,
        kind: RefreshKind,
        key: Hashable,
        time: float,
        cost: float,
        published_width: float,
    ) -> None:
        """Record a refresh from its components.

        Equivalent to :meth:`record` with a fresh :class:`RefreshEvent`, but
        only materialises the event object when the log is kept — the
        simulator records every refresh through here, and aggregate-only
        accounting (the default) then never constructs per-refresh objects.
        """
        self.total_cost += cost
        self.per_key_counts[key] = self.per_key_counts.get(key, 0) + 1
        if kind is RefreshKind.VALUE_INITIATED:
            self.value_refresh_count += 1
            self.value_refresh_cost += cost
        else:
            self.query_refresh_count += 1
            self.query_refresh_cost += cost
        if self.keep_events:
            self.events.append(
                RefreshEvent(
                    kind=kind, key=key, time=time, cost=cost,
                    published_width=published_width,
                )
            )

    @property
    def refresh_count(self) -> int:
        """Total number of refreshes of both kinds."""
        return self.value_refresh_count + self.query_refresh_count

    def cost_rate(self, duration: float) -> float:
        """Average cost per time unit over ``duration`` (the paper's ``Omega``)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_cost / duration

    def refresh_rate(self, kind: RefreshKind, duration: float) -> float:
        """Refreshes of one kind per time unit over ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        count = (
            self.value_refresh_count
            if kind is RefreshKind.VALUE_INITIATED
            else self.query_refresh_count
        )
        return count / duration

    def merge(self, other: "CostAccountant") -> None:
        """Fold another accountant's totals into this one."""
        self.total_cost += other.total_cost
        self.value_refresh_count += other.value_refresh_count
        self.query_refresh_count += other.query_refresh_count
        self.value_refresh_cost += other.value_refresh_cost
        self.query_refresh_cost += other.query_refresh_cost
        for key, count in other.per_key_counts.items():
            self.per_key_counts[key] = self.per_key_counts.get(key, 0) + count
        if self.keep_events:
            self.events.extend(other.events)

    def snapshot(self) -> Dict[str, float]:
        """Return the aggregate counters as a plain dictionary."""
        return {
            "total_cost": self.total_cost,
            "value_refresh_count": float(self.value_refresh_count),
            "query_refresh_count": float(self.query_refresh_count),
            "value_refresh_cost": self.value_refresh_cost,
            "query_refresh_cost": self.query_refresh_cost,
        }
