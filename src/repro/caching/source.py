"""Data sources.

Each :class:`DataSource` hosts one exact numeric value (the paper's setting in
Section 4.1 — one value per source) and remembers the interval approximation
it last sent to the cache.  On every update the source applies the validity
test ``Valid([L, H], V)``; when it fails, a value-initiated refresh is due.
The source also tracks the *original* (unclamped) width used by its precision
policy so that the next width can be derived from it, and a cumulative update
counter used by the stale-value (Divergence Caching) experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.intervals.interval import Interval


@dataclass(slots=True)
class DataSource:
    """One exact value plus the approximation the cache is believed to hold.

    Parameters
    ----------
    key:
        Identifier of the hosted value.
    value:
        Current exact value.
    """

    key: Hashable
    value: float
    update_count: int = 0
    published_interval: Optional[Interval] = None
    published_width: float = 0.0
    last_refresh_time: float = 0.0
    last_update_time: float = 0.0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply_update(self, new_value: float, time: float) -> bool:
        """Install a new exact value and report whether a refresh is needed.

        Returns ``True`` when the cache currently holds an approximation (as
        far as the source knows) and the new value falls outside it, i.e. a
        value-initiated refresh must be sent.
        """
        if time < self.last_update_time:
            raise ValueError("updates must arrive in non-decreasing time order")
        self.value = float(new_value)
        self.update_count += 1
        self.last_update_time = time
        if self.published_interval is None:
            return False
        return not self.published_interval.contains(self.value)

    # ------------------------------------------------------------------
    # Refresh bookkeeping
    # ------------------------------------------------------------------
    def publish(self, interval: Interval, original_width: float, time: float) -> None:
        """Record the approximation just sent to the cache."""
        if original_width < 0:
            raise ValueError("original_width must be non-negative")
        self.published_interval = interval
        self.published_width = original_width
        self.last_refresh_time = time

    def forget_publication(self) -> None:
        """Stop tracking the cached approximation (eviction notification).

        Only policies that notify sources of evictions (the WJH97 exact
        caching baseline) call this; the paper's algorithm does not require
        eviction notifications, so the source keeps refreshing evicted
        approximations at its own expense.
        """
        self.published_interval = None

    @property
    def is_tracked(self) -> bool:
        """True while the source believes the cache holds an approximation."""
        return self.published_interval is not None
