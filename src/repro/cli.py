"""Command-line interface: run any reproduced experiment and print its table.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure03
    python -m repro.cli run figure07_09 --workers 4
    python -m repro.cli run figure07_09 --workers 4 --chunk-size 3
    python -m repro.cli run section45 --shards 4
    python -m repro.cli run section45 --shards 4 --shard-workers 2
    python -m repro.cli run section45 --engine vector
    python -m repro.cli run section45 --kernel scheduler
    python -m repro.cli run-all --workers 4

``--workers N`` fans the multi-configuration experiments out over N worker
processes through :mod:`repro.experiments.runner`; the printed tables are
identical to sequential runs (every sub-run is deterministically seeded).
Experiments without a parallel plan simply run sequentially.  ``--chunk-size
K`` groups sub-runs into deterministic batches of K per pool task, amortising
submission overhead on large sweeps without changing a row.

``--shards N`` runs an experiment's simulations behind the hash-partitioned
multi-cache coordinator (:mod:`repro.sharding`); ``--shard-workers W`` (with
``--shards N``, W <= N) additionally executes each simulation's shards
concurrently in W worker processes (:mod:`repro.sharding.workers`).

``--engine {reference,vector}`` selects the stream-generation engine of the
data plane (:mod:`repro.data.engine`): ``reference`` (the default) keeps the
``random.Random`` sequences behind the committed figure tables, ``vector``
switches to numpy batch synthesis for paper-scale sweeps.

``--kernel {batch,scheduler}`` selects the event-execution strategy
(:mod:`repro.simulation.kernel`): the merged-timeline batch kernel (default,
bit-identical and faster) or the general heap scheduler fallback.

Experiments whose plans do not take a shard count, worker count, engine or
kernel note on stderr that the flag was ignored.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Any, Dict, List, Optional

from repro.data.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.experiments.base import ExperimentResult, format_table, registry
from repro.experiments.runner import plan_registry, run_plan
from repro.simulation.kernel import DEFAULT_KERNEL, KERNEL_NAMES


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptive Precision Setting for Cached Approximate "
            "Values' (Olston, Loo, Widom, SIGMOD 2001)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_all_parser = subparsers.add_parser(
        "run-all", help="run every experiment (may take a while)"
    )
    for subparser in (run_parser, run_all_parser):
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="fan independent sub-runs out over this many processes",
        )
        subparser.add_argument(
            "--shards",
            type=int,
            default=None,
            help="run simulations behind this many hash-partitioned cache shards",
        )
        subparser.add_argument(
            "--shard-workers",
            type=int,
            default=None,
            dest="shard_workers",
            help=(
                "run each sharded simulation's shards concurrently in this "
                "many worker processes (requires --shards N with N >= the "
                "worker count)"
            ),
        )
        subparser.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            dest="chunk_size",
            help=(
                "submit sub-runs to the --workers pool in deterministic "
                "batches of this size (amortises submission overhead on "
                "large sweeps; rows are identical for any chunk size)"
            ),
        )
        subparser.add_argument(
            "--engine",
            choices=ENGINE_NAMES,
            default=None,
            help=(
                "stream-generation engine for the data plane "
                f"(default: {DEFAULT_ENGINE}; 'reference' reproduces the "
                "committed tables byte-for-byte, 'vector' uses numpy batches)"
            ),
        )
        subparser.add_argument(
            "--kernel",
            choices=KERNEL_NAMES,
            default=None,
            help=(
                "event-execution strategy "
                f"(default: {DEFAULT_KERNEL}; 'batch' replays the merged "
                "timelines bit-identically and faster, 'scheduler' keeps "
                "the general event-scheduler loop)"
            ),
        )
    return parser


def _accepts_keyword(func, name: str) -> bool:
    """True when ``func`` takes an explicit keyword named ``name``."""
    try:
        return name in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


def _run_experiment(
    experiment_id: str,
    workers: Optional[int],
    shards: Optional[int] = None,
    engine: Optional[str] = None,
    shard_workers: Optional[int] = None,
    kernel: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment, through its parallel plan when it declares one.

    ``shards``, ``shard_workers``, ``engine`` and ``kernel`` are forwarded
    to experiments whose plan factory (or runner) accepts the keyword; for
    the rest the flag is reported as ignored so a sharded, concurrent or
    vector-engine sweep never silently reproduces the default tables.
    ``chunk_size`` shapes pool submission only (see :func:`run_plan`).
    """
    plan_factory = plan_registry().get(experiment_id)
    runner = registry()[experiment_id]
    target = plan_factory if plan_factory is not None else runner
    forwarded: Dict[str, Any] = {}
    for name, flag, value in (
        ("shards", "shards", shards),
        ("shard_workers", "shard-workers", shard_workers),
        ("engine", "engine", engine),
        ("kernel", "kernel", kernel),
    ):
        if value is None:
            continue
        if _accepts_keyword(target, name):
            forwarded[name] = value
        else:
            print(
                f"note: {experiment_id} does not take {name!r}; "
                f"--{flag} ignored",
                file=sys.stderr,
            )
    if workers is not None and workers > 1 and plan_factory is not None:
        return run_plan(
            plan_factory(**forwarded), workers=workers, chunk_size=chunk_size
        )
    if chunk_size is not None:
        # Chunking only shapes pool submission; without a parallel plan run
        # there is no pool, so say so instead of silently absorbing the flag.
        print(
            f"note: {experiment_id} runs without a worker pool here "
            "(--chunk-size needs --workers > 1 and a parallel plan); "
            "--chunk-size ignored",
            file=sys.stderr,
        )
    runner_accepts_all = all(_accepts_keyword(runner, name) for name in forwarded)
    if forwarded and plan_factory is not None and not runner_accepts_all:
        return run_plan(plan_factory(**forwarded))
    return runner(**forwarded)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None and args.workers < 0:
        parser.error(f"--workers must be non-negative, got {args.workers}")
    if getattr(args, "shards", None) is not None and args.shards < 1:
        parser.error(f"--shards must be at least 1, got {args.shards}")
    shard_workers = getattr(args, "shard_workers", None)
    if shard_workers is not None:
        if shard_workers < 0:
            parser.error(f"--shard-workers must be non-negative, got {shard_workers}")
        shards = getattr(args, "shards", None)
        if shard_workers > 1 and (shards is None or shards < shard_workers):
            parser.error(
                "--shard-workers requires --shards N with N >= the worker "
                f"count, got --shard-workers {shard_workers} with "
                f"--shards {shards}"
            )
    if getattr(args, "chunk_size", None) is not None and args.chunk_size < 1:
        parser.error(f"--chunk-size must be at least 1, got {args.chunk_size}")
    experiments = registry()
    if args.command == "list":
        for experiment_id in sorted(experiments):
            print(experiment_id)
        return 0
    if args.command == "run":
        if args.experiment not in experiments:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"available: {', '.join(sorted(experiments))}",
                file=sys.stderr,
            )
            return 2
        print(
            format_table(
                _run_experiment(
                    args.experiment,
                    args.workers,
                    args.shards,
                    args.engine,
                    shard_workers=args.shard_workers,
                    kernel=args.kernel,
                    chunk_size=args.chunk_size,
                )
            )
        )
        return 0
    if args.command == "run-all":
        for experiment_id in sorted(experiments):
            print(
                format_table(
                    _run_experiment(
                        experiment_id,
                        args.workers,
                        args.shards,
                        args.engine,
                        shard_workers=args.shard_workers,
                        kernel=args.kernel,
                        chunk_size=args.chunk_size,
                    )
                )
            )
            print()
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
