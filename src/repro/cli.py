"""Command-line interface: run any reproduced experiment and print its table.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure03
    python -m repro.cli run figure07_09 --workers 4
    python -m repro.cli run figure07_09 --workers 4 --chunk-size 3
    python -m repro.cli run section45 --shards 4
    python -m repro.cli run section45 --shards 4 --shard-workers 2
    python -m repro.cli run section45 --engine vector
    python -m repro.cli run section45 --kernel scheduler
    python -m repro.cli run section45 --core object
    python -m repro.cli run section45 --shards 4 --shard-workers 2 --exchange-transport pipe
    python -m repro.cli run figure03 --profile figure03.prof
    python -m repro.cli run-all --workers 4

``--workers N`` fans the multi-configuration experiments out over N worker
processes through :mod:`repro.experiments.runner`; the printed tables are
identical to sequential runs (every sub-run is deterministically seeded).
Experiments without a parallel plan simply run sequentially.  ``--chunk-size
K`` groups sub-runs into deterministic batches of K per pool task, amortising
submission overhead on large sweeps without changing a row.

``--shards N`` runs an experiment's simulations behind the hash-partitioned
multi-cache coordinator (:mod:`repro.sharding`); ``--shard-workers W`` (with
``--shards N``, W <= N) additionally executes each simulation's shards
concurrently in W worker processes (:mod:`repro.sharding.workers`).

``--engine {reference,vector}`` selects the stream-generation engine of the
data plane (:mod:`repro.data.engine`): ``reference`` (the default) keeps the
``random.Random`` sequences behind the committed figure tables, ``vector``
switches to numpy batch synthesis for paper-scale sweeps.

``--kernel {batch,scheduler}`` selects the event-execution strategy
(:mod:`repro.simulation.kernel`): the merged-timeline batch kernel (default,
bit-identical and faster) or the general heap scheduler fallback.

``--exchange-window W`` batches the shard workers' per-query-tick exchange
over windows of W ticks (:mod:`repro.sharding.workers`), cutting pipe
round-trips; results are identical for every window size.

``--core {columnar,object}`` selects the cache-state representation
(:mod:`repro.simulation.config`): the numpy struct-of-arrays columnar hot
path (default) or the paper-exact per-object compat mode — bit-identical
results either way.  ``--exchange-transport {shm,pipe}`` selects how
concurrent shard workers exchange per-tick rows: one shared-memory array
swap (default) or the pickled-pipe compat protocol.  Both set the
process-wide config defaults, so they apply to every sub-run.

``--profile FILE`` dumps a :mod:`cProfile` of the run to ``FILE``
(``run-all`` derives one file per experiment from it; with ``--workers``
pools only the parent process is profiled).

Experiments whose plans do not take a shard count, worker count, engine,
kernel or exchange window note on stderr that the flag was ignored.

The serving layer (:mod:`repro.serving`) adds two more commands::

    python -m repro.cli serve --port 7411 --shards 4
    python -m repro.cli serve --role gateway --partitions 4 --http-port 7412
    python -m repro.cli loadgen --mode deterministic --compare-offline
    python -m repro.cli loadgen --mode concurrent --clients 8
    python -m repro.cli loadgen --mode open-loop --shape flash --peak-rate 800
    python -m repro.cli loadgen --target ws://127.0.0.1:7412/ws

``serve`` hosts an approximate cache behind the length-prefixed JSON
protocol on TCP.  ``--role single`` (default) is one
:class:`~repro.serving.server.CacheServer`; ``--role gateway`` spawns
``--partitions N`` CacheServer worker processes and fronts them with the
routing :class:`~repro.serving.gateway.GatewayServer` (same wire surface,
supervised restarts); ``--role partition`` is a single cache intended to
sit behind a gateway.  ``--http-port P`` additionally serves the
HTTP/WebSocket edge (:mod:`repro.serving.http`) on the same backend.

``loadgen`` replays the synthetic monitoring trace against an in-process
server (the default; ``--partitions N`` fronts it with an in-process
gateway) or a remote target: ``--target tcp://host:port`` or
``--target ws://host:port/ws`` (``--connect host:port`` remains as the
older spelling of the TCP form).  It prints hit rate, refresh counts,
latency percentiles and throughput.  ``--compare-offline`` additionally
runs the equivalent offline simulation and fails unless the refresh counts
and hit rate match exactly (deterministic mode only).  ``--mode open-loop``
fires a seeded Poisson arrival schedule (``--shape steady|ramp|flash``,
Zipf key popularity) that never waits for answers — the honest overload
model, where rejections and deadline misses are counted instead of
throttling the offered rate.

``--fault-plan`` turns either loadgen mode into a chaos run: transports
drop, truncate, delay and reorder frames on a seeded, replayable schedule
(:mod:`repro.serving.faults`), feeders are killed and reconnect-and-resync,
clients retry with backoff.  ``--check-invariant`` (deterministic mode)
audits every answer against the ground-truth aggregate and exits non-zero
if any returned interval excludes it — the paper's containment guarantee,
verified under fire.

``serve --wal-dir DIR`` makes partition state durable: every mutating op
is appended to a per-partition write-ahead log and periodically folded
into a snapshot checkpoint (``--checkpoint-every``, ``--wal-fsync``); a
SIGKILLed partition replays snapshot+WAL on restart and recovers its
exact state (:mod:`repro.serving.durability`).  ``loadgen
--partition-procs N`` drives that path end to end: a supervised gateway
over N durable partition *processes*, which a fault plan with
``part_kill_every`` SIGKILLs mid-run — the replayed report must stay
byte-identical to an uninterrupted one.

Observability (:mod:`repro.obs`) is off by default and shared by ``serve``
and ``loadgen``: ``--metrics`` enables the process metrics registry
(scrapeable as Prometheus text via ``GET /metrics`` on the HTTP edge and
the ``metrics`` protocol op, merged across partitions at the gateway),
``--trace`` the deterministic span tracer, ``--flightrec-dir DIR`` crash
flight-recorder dumps (``*.flightrec.json``), and ``--log-level`` /
``--log-file`` JSON-lines logging stamped with seed, role and partition.
All five reach spawned partition processes.  ``repro obs SOURCE``
pretty-prints a metrics exposition — from a scrape URL
(``http://host:port/metrics``), a ``host:port`` shorthand, or a saved
text file — optionally summing away label dimensions (``--aggregate``)::

    python -m repro.cli serve --role gateway --partitions 4 \
        --http-port 7412 --metrics
    python -m repro.cli obs http://127.0.0.1:7412/metrics
    python -m repro.cli obs 127.0.0.1:7412 --aggregate partition
"""

from __future__ import annotations

import argparse
import asyncio
import importlib.metadata
import inspect
import os
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.data.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.experiments.base import ExperimentResult, format_table, registry
from repro.serving.durability import DEFAULT_CHECKPOINT_EVERY, FSYNC_POLICIES
from repro.experiments.runner import plan_registry, run_plan
from repro.simulation.config import (
    CORE_NAMES,
    DEFAULT_CORE,
    DEFAULT_EXCHANGE_TRANSPORT,
    EXCHANGE_TRANSPORT_NAMES,
    set_default_core,
    set_default_exchange_transport,
)
from repro.simulation.kernel import DEFAULT_KERNEL, KERNEL_NAMES


def _package_version() -> str:
    """The installed package version, falling back to the module constant."""
    try:
        return importlib.metadata.version("repro-adaptive-precision")
    except importlib.metadata.PackageNotFoundError:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptive Precision Setting for Cached Approximate "
            "Values' (Olston, Loo, Widom, SIGMOD 2001)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_all_parser = subparsers.add_parser(
        "run-all", help="run every experiment (may take a while)"
    )
    for subparser in (run_parser, run_all_parser):
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="fan independent sub-runs out over this many processes",
        )
        subparser.add_argument(
            "--shards",
            type=int,
            default=None,
            help="run simulations behind this many hash-partitioned cache shards",
        )
        subparser.add_argument(
            "--shard-workers",
            type=int,
            default=None,
            dest="shard_workers",
            help=(
                "run each sharded simulation's shards concurrently in this "
                "many worker processes (requires --shards N with N >= the "
                "worker count)"
            ),
        )
        subparser.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            dest="chunk_size",
            help=(
                "submit sub-runs to the --workers pool in deterministic "
                "batches of this size (amortises submission overhead on "
                "large sweeps; rows are identical for any chunk size)"
            ),
        )
        subparser.add_argument(
            "--engine",
            choices=ENGINE_NAMES,
            default=None,
            help=(
                "stream-generation engine for the data plane "
                f"(default: {DEFAULT_ENGINE}; 'reference' reproduces the "
                "committed tables byte-for-byte, 'vector' uses numpy batches)"
            ),
        )
        subparser.add_argument(
            "--kernel",
            choices=KERNEL_NAMES,
            default=None,
            help=(
                "event-execution strategy "
                f"(default: {DEFAULT_KERNEL}; 'batch' replays the merged "
                "timelines bit-identically and faster, 'scheduler' keeps "
                "the general event-scheduler loop)"
            ),
        )
        subparser.add_argument(
            "--exchange-window",
            type=int,
            default=None,
            dest="exchange_window",
            help=(
                "batch the shard workers' per-query-tick exchange over "
                "windows of this many ticks (default 1 = synchronise every "
                "tick; results are identical for every window size)"
            ),
        )
        subparser.add_argument(
            "--core",
            choices=CORE_NAMES,
            default=None,
            help=(
                "cache-state representation "
                f"(default: {DEFAULT_CORE}; 'columnar' is the numpy "
                "struct-of-arrays hot path, 'object' the paper-exact "
                "per-object compat mode; results are bit-identical)"
            ),
        )
        subparser.add_argument(
            "--exchange-transport",
            choices=EXCHANGE_TRANSPORT_NAMES,
            default=None,
            dest="exchange_transport",
            help=(
                "shard-worker exchange transport "
                f"(default: {DEFAULT_EXCHANGE_TRANSPORT}; 'shm' swaps rows "
                "through one shared-memory array, 'pipe' pickles the full "
                "payload over the worker pipes; results are identical)"
            ),
        )
        subparser.add_argument(
            "--profile",
            default=None,
            metavar="FILE",
            help=(
                "dump a cProfile of the run to FILE (run-all derives one "
                "file per experiment; --workers pools profile the parent "
                "process only)"
            ),
        )
    def _add_obs_arguments(subparser: argparse.ArgumentParser) -> None:
        """The shared observability flags (``serve`` and ``loadgen``)."""
        subparser.add_argument(
            "--metrics",
            action="store_true",
            help=(
                "enable the process metrics registry (scrape via GET "
                "/metrics on the HTTP edge or the 'metrics' protocol op; "
                "spawned partitions inherit it)"
            ),
        )
        subparser.add_argument(
            "--trace",
            action="store_true",
            help=(
                "record deterministic trace spans (span ids derive from "
                "connection/frame ordinals, never the clock)"
            ),
        )
        subparser.add_argument(
            "--flightrec-dir",
            default=None,
            dest="flightrec_dir",
            metavar="DIR",
            help=(
                "dump the span ring as DIR/<role>-<detail>.flightrec.json "
                "on crashes and partition outages (implies --trace)"
            ),
        )
        subparser.add_argument(
            "--log-level",
            choices=("critical", "error", "warning", "info", "debug"),
            default=None,
            dest="log_level",
            help="emit JSON-lines logs at this level (default: logging off)",
        )
        subparser.add_argument(
            "--log-file",
            default=None,
            dest="log_file",
            metavar="FILE",
            help=(
                "write JSON-lines logs to FILE instead of stderr "
                "(partitions write FILE with a .partitionN suffix)"
            ),
        )

    serve_parser = subparsers.add_parser(
        "serve", help="host an approximate-cache server over TCP"
    )
    _add_obs_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7411)
    serve_parser.add_argument(
        "--role",
        choices=("single", "gateway", "partition"),
        default="single",
        help=(
            "deployment role: 'single' is one cache server (default), "
            "'gateway' fronts --partitions supervised CacheServer "
            "processes, 'partition' is a cache meant to sit behind a "
            "gateway"
        ),
    )
    serve_parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="partition processes behind the gateway (gateway role only)",
    )
    serve_parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        dest="http_port",
        help="also serve the HTTP/WebSocket edge on this port",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1, help="cache shards behind the server"
    )
    serve_parser.add_argument(
        "--capacity", type=int, default=None, help="cache capacity kappa"
    )
    serve_parser.add_argument(
        "--cost-factor", type=float, default=1.0, dest="cost_factor"
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        dest="max_inflight",
        help="admission control: maximum concurrently executing queries",
    )
    serve_parser.add_argument(
        "--wal-dir",
        default=None,
        dest="wal_dir",
        metavar="DIR",
        help=(
            "make partition state durable: write-ahead log + snapshot "
            "checkpoints under DIR, replayed on restart (default: no WAL)"
        ),
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        dest="checkpoint_every",
        metavar="N",
        help="fold the WAL into a snapshot every N records (with --wal-dir)",
    )
    serve_parser.add_argument(
        "--wal-fsync",
        choices=FSYNC_POLICIES,
        default="checkpoint",
        dest="wal_fsync",
        help=(
            "WAL fsync policy: 'always' fsyncs every record (power-loss "
            "safe), 'checkpoint' flushes per record and fsyncs at "
            "checkpoints (crash-safe, the default), 'never' leaves "
            "flushing to the OS"
        ),
    )
    loadgen_parser = subparsers.add_parser(
        "loadgen", help="replay the monitoring trace against a serving stack"
    )
    _add_obs_arguments(loadgen_parser)
    loadgen_parser.add_argument(
        "--mode",
        choices=("deterministic", "concurrent", "open-loop"),
        default="concurrent",
    )
    loadgen_parser.add_argument("--hosts", type=int, default=25)
    loadgen_parser.add_argument("--duration", type=int, default=300)
    loadgen_parser.add_argument("--clients", type=int, default=4)
    loadgen_parser.add_argument(
        "--queries", type=int, default=100, help="queries per client (concurrent)"
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=0.0, help="queries/s per client (0 = unpaced)"
    )
    loadgen_parser.add_argument("--feeders", type=int, default=1)
    loadgen_parser.add_argument("--shards", type=int, default=1)
    loadgen_parser.add_argument("--seed", type=int, default=5)
    loadgen_parser.add_argument("--engine", choices=ENGINE_NAMES, default=None)
    loadgen_parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive a remote 'repro serve' instead of an in-process server",
    )
    loadgen_parser.add_argument(
        "--target",
        default=None,
        metavar="URL",
        help=(
            "drive a remote serving target by URL: tcp://host:port or "
            "ws://host:port/ws (the HTTP edge); supersedes --connect"
        ),
    )
    loadgen_parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help=(
            "front the in-process server with a gateway over this many "
            "in-process partitions (no --target/--connect)"
        ),
    )
    loadgen_parser.add_argument(
        "--partition-procs",
        type=int,
        default=0,
        dest="partition_procs",
        help=(
            "front the replay with a supervised gateway over this many "
            "partition *processes* (deterministic mode; required for "
            "fault-plan partition kills; no --target/--connect)"
        ),
    )
    loadgen_parser.add_argument(
        "--wal-dir",
        default=None,
        dest="wal_dir",
        metavar="DIR",
        help=(
            "WAL + checkpoint directory for --partition-procs (default: "
            "a fresh temporary directory)"
        ),
    )
    loadgen_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        dest="checkpoint_every",
        metavar="N",
        help="checkpoint cadence for --partition-procs WALs",
    )
    loadgen_parser.add_argument(
        "--wal-fsync",
        choices=FSYNC_POLICIES,
        default="checkpoint",
        dest="wal_fsync",
        help="WAL fsync policy for --partition-procs (see 'serve')",
    )
    loadgen_parser.add_argument(
        "--shape",
        choices=("steady", "ramp", "flash"),
        default="steady",
        help="open-loop arrival shape (open-loop mode)",
    )
    loadgen_parser.add_argument(
        "--peak-rate",
        type=float,
        default=0.0,
        dest="peak_rate",
        help="peak queries/s for ramp and flash shapes (open-loop mode)",
    )
    loadgen_parser.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        dest="zipf_s",
        help="Zipf skew of key popularity (open-loop mode)",
    )
    loadgen_parser.add_argument(
        "--open-duration",
        type=float,
        default=2.0,
        dest="open_duration",
        help="open-loop run length in wall seconds (open-loop mode)",
    )
    loadgen_parser.add_argument(
        "--constraint",
        type=float,
        default=float("inf"),
        help=(
            "precision constraint per open-loop query (interval width "
            "bound; inf = any precision, i.e. never refresh)"
        ),
    )
    loadgen_parser.add_argument(
        "--compare-offline",
        action="store_true",
        dest="compare_offline",
        help=(
            "also run the equivalent offline simulation and fail unless "
            "refresh counts and hit rate match (deterministic mode, "
            "in-process server only)"
        ),
    )
    loadgen_parser.add_argument(
        "--fault-plan",
        default=None,
        dest="fault_plan",
        metavar="SPEC",
        help=(
            "inject deterministic faults: 'key=value,...' with keys seed, "
            "drop, truncate, delay, delay_ms, reorder, kill_every, outage, "
            "part_kill_every, part_kills "
            "(e.g. 'seed=7,drop=0.05,kill_every=40,outage=3'; "
            "'part_kill_every=10,part_kills=2' SIGKILLs pool partitions — "
            "needs --partition-procs); 'none' disables injection"
        ),
    )
    loadgen_parser.add_argument(
        "--check-invariant",
        action="store_true",
        dest="check_invariant",
        help=(
            "audit every deterministic-mode answer against the ground-truth "
            "aggregate and exit 1 on any interval that excludes it"
        ),
    )
    loadgen_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-operation client deadline in seconds (default: none)",
    )
    obs_parser = subparsers.add_parser(
        "obs", help="pretty-print a /metrics exposition (URL or file)"
    )
    obs_parser.add_argument(
        "source",
        help=(
            "where to read the exposition: an http(s) URL, a host:port "
            "(fetches http://host:port/metrics), or a text file path"
        ),
    )
    obs_parser.add_argument(
        "--aggregate",
        action="append",
        default=None,
        metavar="LABEL",
        help=(
            "sum the samples across this label dimension (repeatable), "
            "e.g. --aggregate partition collapses per-partition series"
        ),
    )
    obs_parser.add_argument(
        "--filter",
        default=None,
        dest="name_filter",
        metavar="SUBSTRING",
        help="only show metrics whose name contains SUBSTRING",
    )
    return parser


def _accepts_keyword(func, name: str) -> bool:
    """True when ``func`` takes an explicit keyword named ``name``."""
    try:
        return name in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


def _run_experiment(
    experiment_id: str,
    workers: Optional[int],
    shards: Optional[int] = None,
    engine: Optional[str] = None,
    shard_workers: Optional[int] = None,
    kernel: Optional[str] = None,
    chunk_size: Optional[int] = None,
    exchange_window: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment, through its parallel plan when it declares one.

    ``shards``, ``shard_workers``, ``exchange_window``, ``engine`` and
    ``kernel`` are forwarded to experiments whose plan factory (or runner)
    accepts the keyword; for the rest the flag is reported as ignored so a
    sharded, concurrent or vector-engine sweep never silently reproduces the
    default tables.  ``chunk_size`` shapes pool submission only (see
    :func:`run_plan`).
    """
    plan_factory = plan_registry().get(experiment_id)
    runner = registry()[experiment_id]
    target = plan_factory if plan_factory is not None else runner
    forwarded: Dict[str, Any] = {}
    for name, flag, value in (
        ("shards", "shards", shards),
        ("shard_workers", "shard-workers", shard_workers),
        ("exchange_window", "exchange-window", exchange_window),
        ("engine", "engine", engine),
        ("kernel", "kernel", kernel),
    ):
        if value is None:
            continue
        if _accepts_keyword(target, name):
            forwarded[name] = value
        else:
            print(
                f"note: {experiment_id} does not take {name!r}; "
                f"--{flag} ignored",
                file=sys.stderr,
            )
    if workers is not None and workers > 1 and plan_factory is not None:
        return run_plan(
            plan_factory(**forwarded), workers=workers, chunk_size=chunk_size
        )
    if chunk_size is not None:
        # Chunking only shapes pool submission; without a parallel plan run
        # there is no pool, so say so instead of silently absorbing the flag.
        print(
            f"note: {experiment_id} runs without a worker pool here "
            "(--chunk-size needs --workers > 1 and a parallel plan); "
            "--chunk-size ignored",
            file=sys.stderr,
        )
    runner_accepts_all = all(_accepts_keyword(runner, name) for name in forwarded)
    if forwarded and plan_factory is not None and not runner_accepts_all:
        return run_plan(plan_factory(**forwarded))
    return runner(**forwarded)


def _profile_destination(base: str, experiment_id: Optional[str]) -> str:
    """The dump path for one run: ``run`` uses ``base`` verbatim, ``run-all``
    derives ``<stem>-<experiment_id><ext>`` so every experiment keeps its own
    profile."""
    if experiment_id is None:
        return base
    stem, extension = os.path.splitext(base)
    return f"{stem}-{experiment_id}{extension or '.prof'}"


def _run_profiled(
    profile: Optional[str],
    experiment_id: Optional[str],
    run: Callable[[], ExperimentResult],
) -> ExperimentResult:
    """Run one experiment, dumping a :mod:`cProfile` when ``--profile`` asks.

    The stats file is written even when the run raises, so a profile of the
    work done up to a failure survives it.
    """
    if profile is None:
        return run()
    import cProfile

    destination = _profile_destination(profile, experiment_id)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return run()
    finally:
        profiler.disable()
        profiler.dump_stats(destination)
        print(f"profile written to {destination}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None and args.workers < 0:
        parser.error(f"--workers must be non-negative, got {args.workers}")
    if getattr(args, "shards", None) is not None and args.shards < 1:
        parser.error(f"--shards must be at least 1, got {args.shards}")
    shard_workers = getattr(args, "shard_workers", None)
    if shard_workers is not None:
        if shard_workers < 0:
            parser.error(f"--shard-workers must be non-negative, got {shard_workers}")
        shards = getattr(args, "shards", None)
        if shard_workers > 1 and (shards is None or shards < shard_workers):
            parser.error(
                "--shard-workers requires --shards N with N >= the worker "
                f"count, got --shard-workers {shard_workers} with "
                f"--shards {shards}"
            )
    if getattr(args, "chunk_size", None) is not None and args.chunk_size < 1:
        parser.error(f"--chunk-size must be at least 1, got {args.chunk_size}")
    exchange_window = getattr(args, "exchange_window", None)
    if exchange_window is not None and exchange_window < 1:
        parser.error(f"--exchange-window must be at least 1, got {exchange_window}")
    if getattr(args, "core", None) is not None:
        set_default_core(args.core)
    if getattr(args, "exchange_transport", None) is not None:
        set_default_exchange_transport(args.exchange_transport)
    if args.command == "serve":
        return _run_serve(args, parser)
    if args.command == "loadgen":
        return _run_loadgen(args, parser)
    if args.command == "obs":
        return _run_obs(args, parser)
    experiments = registry()
    if args.command == "list":
        for experiment_id in sorted(experiments):
            print(experiment_id)
        return 0
    if args.command == "run":
        if args.experiment not in experiments:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"available: {', '.join(sorted(experiments))}",
                file=sys.stderr,
            )
            return 2
        result = _run_profiled(
            args.profile,
            None,
            lambda: _run_experiment(
                args.experiment,
                args.workers,
                args.shards,
                args.engine,
                shard_workers=args.shard_workers,
                kernel=args.kernel,
                chunk_size=args.chunk_size,
                exchange_window=args.exchange_window,
            ),
        )
        print(format_table(result))
        return 0
    if args.command == "run-all":
        for experiment_id in sorted(experiments):
            result = _run_profiled(
                args.profile,
                experiment_id,
                lambda experiment_id=experiment_id: _run_experiment(
                    experiment_id,
                    args.workers,
                    args.shards,
                    args.engine,
                    shard_workers=args.shard_workers,
                    kernel=args.kernel,
                    chunk_size=args.chunk_size,
                    exchange_window=args.exchange_window,
                ),
            )
            print(format_table(result))
            print()
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _serving_policy(cost_factor: float, seed: int):
    """The serving stack's default policy (the monitoring workload's)."""
    from repro.experiments.workloads import serving_policy

    return serving_policy(cost_factor=cost_factor, seed=seed)


def _run_serve(args, parser: argparse.ArgumentParser) -> int:
    """Handler for ``repro serve``: host a serving deployment over TCP."""
    from repro.serving.api import ServeConfig

    try:
        config = ServeConfig(
            role=args.role,
            host=args.host,
            port=args.port,
            http_port=args.http_port,
            partitions=args.partitions,
            shards=args.shards,
            capacity=args.capacity,
            cost_factor=args.cost_factor,
            seed=args.seed,
            max_inflight=args.max_inflight,
            wal_dir=args.wal_dir,
            checkpoint_every=args.checkpoint_every,
            wal_fsync=args.wal_fsync,
            metrics=args.metrics,
            trace=args.trace,
            flightrec_dir=args.flightrec_dir,
            log_level=args.log_level,
            log_file=args.log_file,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down")
    return 0


def _obs_spec(source: Any) -> Dict[str, Any]:
    """The picklable observability spec keys from a config/args object."""
    spec: Dict[str, Any] = {}
    for name in ("metrics", "trace", "flightrec_dir", "log_level", "log_file"):
        value = getattr(source, name, None)
        if value:
            spec[name] = value
    return spec


async def _serve(config) -> None:
    """Host the deployment one :class:`ServeConfig` describes, until killed."""
    from repro.serving.procs import _configure_observability

    # The foreground process configures its own observability exactly like
    # a spawned worker would; partition processes get the same spec keys.
    _configure_observability(
        {**_obs_spec(config), "seed": config.seed}, config.role
    )
    pool = None
    if config.role == "gateway":
        from repro.serving.gateway import GatewayServer
        from repro.serving.procs import ProcessPartitionPool

        spec = {
            "host": config.host,
            "shards": config.shards,
            "capacity": config.capacity,
            "cost_factor": config.cost_factor,
            "seed": config.seed,
            "max_inflight": config.max_inflight,
            **_obs_spec(config),
        }
        if config.wal_dir:
            spec["wal_dir"] = config.wal_dir
            spec["checkpoint_every"] = config.checkpoint_every
            spec["wal_fsync"] = config.wal_fsync
        pool = ProcessPartitionPool(config.partitions, spec)
        loop = asyncio.get_running_loop()
        targets = await loop.run_in_executor(None, pool.start)
        backend = GatewayServer(
            targets, pool=pool, max_inflight_queries=config.max_inflight
        )
        await backend.start()
        backend.start_supervisor()
        banner = (
            f"gateway on {config.host}:{config.port} "
            f"({config.partitions} partitions: {', '.join(targets)})"
        )
    else:
        from repro.serving.server import CacheServer

        durability = None
        if config.wal_dir:
            from repro.serving.durability import PartitionDurability

            durability = PartitionDurability(
                config.wal_dir,
                0,
                checkpoint_every=config.checkpoint_every,
                fsync=config.wal_fsync,
            )
        backend = CacheServer(
            _serving_policy(config.cost_factor, config.seed),
            shards=config.shards,
            capacity=config.capacity,
            value_refresh_cost=config.cost_factor,
            query_refresh_cost=2.0,
            max_inflight_queries=config.max_inflight,
            durability=durability,
        )
        banner = (
            f"{config.role} cache on {config.host}:{config.port} "
            f"(shards={config.shards})"
        )
    if config.wal_dir:
        banner += f", wal in {config.wal_dir}"
    edge = None
    tcp = await backend.start_tcp(config.host, config.port)
    try:
        if config.http_port:
            from repro.serving.http import HttpEdge

            edge = HttpEdge(backend)
            await edge.start(config.host, config.http_port)
            banner += f", http/ws on {config.host}:{config.http_port}"
        from repro.obs.logging import get_logger

        get_logger("cli").info(
            "serving",
            extra={
                "fields": {
                    "deployment": config.role,
                    "host": config.host,
                    "port": config.port,
                    "http_port": config.http_port,
                    "partitions": config.partitions
                    if config.role == "gateway"
                    else None,
                    "metrics": config.metrics,
                }
            },
        )
        print(banner)
        async with tcp:
            await tcp.serve_forever()
    finally:
        if edge is not None:
            await edge.close()
        await backend.close()
        if pool is not None:
            await asyncio.get_running_loop().run_in_executor(None, pool.stop)


def _run_loadgen(args, parser: argparse.ArgumentParser) -> int:
    """Handler for ``repro loadgen``: replay the trace against a server."""
    from repro.experiments.workloads import (
        serving_config,
        traffic_trace,
        traffic_streams,
    )
    from repro.serving.faults import FaultPlan
    from repro.serving.loadgen import (
        OpenLoopProfile,
        dialer_for_target,
        replay_trace_concurrent,
        replay_trace_deterministic,
        run_open_loop,
    )
    from repro.serving.server import CacheServer

    if args.partitions < 1:
        parser.error(f"--partitions must be at least 1, got {args.partitions}")
    remote = args.target is not None or args.connect is not None
    if args.compare_offline and (args.mode != "deterministic" or remote):
        parser.error(
            "--compare-offline needs --mode deterministic and an "
            "in-process server (no --target/--connect)"
        )
    if args.check_invariant and args.mode != "deterministic":
        parser.error(
            "--check-invariant needs --mode deterministic (concurrent "
            "interleaving has no single ground-truth instant per query)"
        )
    if args.partitions > 1 and remote:
        parser.error(
            "--partitions builds an in-process gateway; it cannot be "
            "combined with --target/--connect"
        )
    if args.partition_procs < 0:
        parser.error("--partition-procs must be non-negative")
    if args.partition_procs:
        if remote:
            parser.error(
                "--partition-procs spawns its own partition pool; it cannot "
                "be combined with --target/--connect"
            )
        if args.partitions > 1:
            parser.error("--partition-procs and --partitions are exclusive")
        if args.mode != "deterministic":
            parser.error("--partition-procs needs --mode deterministic")
    try:
        fault_plan = (
            FaultPlan.parse(args.fault_plan) if args.fault_plan is not None else None
        )
    except ValueError as error:
        parser.error(f"--fault-plan: {error}")
    if (
        fault_plan is not None
        and fault_plan.partition_kill_every > 0
        and not args.partition_procs
    ):
        parser.error(
            "fault-plan partition kills (part_kill_every) need "
            "--partition-procs N: only pool partitions can be SIGKILLed"
        )
    if args.mode == "deterministic":
        # The deterministic replay is one serialized feeder + querier; say
        # so instead of silently absorbing concurrency flags (mirrors how
        # run/run-all report ignored flags).
        defaults = build_parser().parse_args(["loadgen"])
        for flag, name in (
            ("--clients", "clients"),
            ("--queries", "queries"),
            ("--rate", "rate"),
            ("--feeders", "feeders"),
        ):
            if getattr(args, name) != getattr(defaults, name):
                print(
                    f"note: --mode deterministic replays one serialized "
                    f"feeder/querier pair; {flag} ignored",
                    file=sys.stderr,
                )
    from repro.serving.procs import _configure_observability

    _configure_observability({**_obs_spec(args), "seed": args.seed}, "loadgen")
    engine = args.engine if args.engine is not None else DEFAULT_ENGINE
    trace = traffic_trace(host_count=args.hosts, duration=args.duration, engine=engine)
    config = serving_config(trace, seed=args.seed, shards=args.shards, engine=engine)

    dialer = None
    if args.target is not None:
        try:
            dialer = dialer_for_target(args.target)
        except ValueError as error:
            parser.error(f"--target: {error}")
    elif args.connect is not None:
        host, separator, port_text = args.connect.rpartition(":")
        if not separator or not host or not port_text.isdigit():
            parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
        dialer = dialer_for_target(args.connect)

    profile = None
    if args.mode == "open-loop":
        try:
            profile = OpenLoopProfile(
                duration_s=args.open_duration,
                base_rate=args.rate if args.rate > 0 else 200.0,
                peak_rate=args.peak_rate,
                shape=args.shape,
                zipf_s=args.zipf_s,
                constraint=args.constraint,
                seed=args.seed,
            )
        except ValueError as error:
            parser.error(str(error))

    def _partition_server():
        return CacheServer(
            _serving_policy(1.0, args.seed),
            shards=args.shards,
            value_refresh_cost=config.value_refresh_cost,
            query_refresh_cost=config.query_refresh_cost,
        )

    async def drive():
        gateway = None
        partitions = []
        server = None
        pool = None
        if dialer is not None:
            target = dialer
        elif args.partition_procs:
            import tempfile

            from repro.serving.gateway import GatewayServer
            from repro.serving.procs import ProcessPartitionPool

            # Durability is always on for the process pool: it is what makes
            # a SIGKILLed partition recover the exact state a kill-free run
            # would hold, so chaos replays stay byte-identical.
            wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="repro-wal-")
            pool = ProcessPartitionPool(
                args.partition_procs,
                {
                    "seed": args.seed,
                    "shards": args.shards,
                    "wal_dir": wal_dir,
                    "checkpoint_every": args.checkpoint_every,
                    "wal_fsync": args.wal_fsync,
                    **_obs_spec(args),
                },
            )
            loop = asyncio.get_running_loop()
            targets = await loop.run_in_executor(None, pool.start)
            gateway = GatewayServer(targets, pool=pool)
            await gateway.start()
            gateway.start_supervisor()
            target = gateway
        elif args.partitions > 1:
            from repro.serving.gateway import GatewayServer

            partitions = [_partition_server() for _ in range(args.partitions)]
            gateway = GatewayServer(partitions)
            await gateway.start()
            target = gateway
        else:
            server = _partition_server()
            target = server
        try:
            if args.mode == "deterministic":
                return await replay_trace_deterministic(
                    target,
                    trace,
                    config,
                    fault_plan=fault_plan,
                    check_invariant=args.check_invariant,
                    deadline=args.deadline,
                    partition_pool=pool,
                )
            if args.mode == "open-loop":
                return await run_open_loop(
                    target,
                    trace,
                    config,
                    profile=profile,
                    connections=args.clients,
                    deadline=args.deadline if args.deadline is not None else 2.0,
                    fault_plan=fault_plan,
                )
            return await replay_trace_concurrent(
                target,
                trace,
                config,
                clients=args.clients,
                queries_per_client=args.queries,
                rate=args.rate,
                feeders=args.feeders,
                fault_plan=fault_plan,
                deadline=args.deadline,
            )
        finally:
            if gateway is not None:
                await gateway.close()
            for partition in partitions:
                await partition.close()
            if server is not None:
                await server.close()
            if pool is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, pool.stop
                )

    report = asyncio.run(drive())
    if args.metrics:
        # Publishing is write-only and happens after the replay finished,
        # so the printed report is byte-identical with metrics on or off.
        report.publish()
    from repro.obs.logging import get_logger

    get_logger("cli").info(
        "loadgen complete",
        extra={
            "fields": {
                "mode": args.mode,
                "queries": report.queries,
                "updates_sent": report.updates_sent,
                "invariant_violations": report.invariant_violations,
            }
        },
    )
    print(report.describe())
    if args.check_invariant and report.invariant_violations:
        print(
            f"invariant check FAILED: {report.invariant_violations} of "
            f"{report.invariant_checks} answers excluded the true aggregate",
            file=sys.stderr,
        )
        return 1
    if args.compare_offline:
        from repro.simulation.simulator import CacheSimulation

        offline = CacheSimulation(
            config, traffic_streams(trace), _serving_policy(1.0, args.seed)
        ).run()
        matches = (
            report.value_refreshes == offline.value_refresh_count
            and report.query_refreshes == offline.query_refresh_count
            and report.hit_rate == offline.cache_hit_rate
        )
        print(
            "offline comparison: "
            f"value_refreshes {offline.value_refresh_count} "
            f"query_refreshes {offline.query_refresh_count} "
            f"hit_rate {offline.cache_hit_rate:.6f} -> "
            + ("MATCH" if matches else "MISMATCH")
        )
        if not matches:
            return 1
    return 0


def _fetch_exposition(source: str) -> str:
    """Read Prometheus text from a URL, ``host:port``, or a file path."""
    if not (source.startswith("http://") or source.startswith("https://")):
        if os.path.exists(source):
            with open(source, "r", encoding="utf-8") as handle:
                return handle.read()
        # A bare host:port means "scrape its HTTP edge".
        source = f"http://{source}/metrics"
    import urllib.request

    with urllib.request.urlopen(source, timeout=10) as response:
        return response.read().decode("utf-8")


def _format_metric_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def _run_obs(args, parser: argparse.ArgumentParser) -> int:
    """Handler for ``repro obs``: pretty-print a metrics exposition."""
    from repro.obs.prom import parse_text

    try:
        text = _fetch_exposition(args.source)
    except OSError as error:
        print(f"cannot read {args.source!r}: {error}", file=sys.stderr)
        return 1
    try:
        types_by_name, samples = parse_text(text)
    except ValueError as error:
        print(f"cannot parse exposition: {error}", file=sys.stderr)
        return 1
    dropped = set(args.aggregate or ())
    if "le" in dropped:
        parser.error("--aggregate le would corrupt histogram buckets")
    # Sum across the dropped label dimensions (cumulative bucket counts and
    # counters sum exactly; summed gauges are a deliberate roll-up).
    totals: Dict[Any, float] = {}
    for name, labels, value in samples:
        if args.name_filter and args.name_filter not in name:
            continue
        kept = tuple(
            sorted(item for item in labels.items() if item[0] not in dropped)
        )
        totals[(name, kept)] = totals.get((name, kept), 0.0) + value
    if not totals:
        print("no samples" + (f" matching {args.name_filter!r}" if args.name_filter else ""))
        return 0
    def kind_of(name: str) -> str:
        # Histogram samples scrape as <name>_bucket/_sum/_count; the TYPE
        # header names the base metric.
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and base in types_by_name:
                return types_by_name[base]
        return types_by_name.get(name, "untyped")

    last_name = None
    for (name, kept), value in sorted(totals.items()):
        if name != last_name:
            print(f"{name} ({kind_of(name)})")
            last_name = name
        rendered = ", ".join(f'{key}="{val}"' for key, val in kept)
        label_text = f"{{{rendered}}} " if rendered else ""
        print(f"  {label_text}{_format_metric_value(value)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
