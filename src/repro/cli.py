"""Command-line interface: run any reproduced experiment and print its table.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure03
    python -m repro.cli run figure07_09 --workers 4
    python -m repro.cli run section45 --shards 4
    python -m repro.cli run-all --workers 4

``--workers N`` fans the multi-configuration experiments out over N worker
processes through :mod:`repro.experiments.runner`; the printed tables are
identical to sequential runs (every sub-run is deterministically seeded).
Experiments without a parallel plan simply run sequentially.

``--shards N`` runs an experiment's simulations behind the hash-partitioned
multi-cache coordinator (:mod:`repro.sharding`).  Experiments whose plans do
not take a shard count note on stderr that the flag was ignored.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from repro.experiments.base import ExperimentResult, format_table, registry
from repro.experiments.runner import plan_registry, run_plan


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptive Precision Setting for Cached Approximate "
            "Values' (Olston, Loo, Widom, SIGMOD 2001)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sub-runs out over this many processes",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run simulations behind this many hash-partitioned cache shards",
    )
    run_all_parser = subparsers.add_parser(
        "run-all", help="run every experiment (may take a while)"
    )
    run_all_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sub-runs out over this many processes",
    )
    run_all_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run simulations behind this many hash-partitioned cache shards",
    )
    return parser


def _accepts_shards(func) -> bool:
    """True when ``func`` takes an explicit ``shards`` keyword."""
    try:
        return "shards" in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return False


def _run_experiment(
    experiment_id: str,
    workers: Optional[int],
    shards: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment, through its parallel plan when it declares one.

    ``shards`` is forwarded to experiments whose plan factory (or runner)
    accepts a shard count; for the rest the flag is reported as ignored so
    a sharded sweep never silently reproduces unsharded tables.
    """
    plan_factory = plan_registry().get(experiment_id)
    runner = registry()[experiment_id]
    shard_kwargs = {}
    if shards is not None:
        target = plan_factory if plan_factory is not None else runner
        if _accepts_shards(target):
            shard_kwargs = {"shards": shards}
        else:
            print(
                f"note: {experiment_id} does not take a shard count; "
                "--shards ignored",
                file=sys.stderr,
            )
    if workers is not None and workers > 1 and plan_factory is not None:
        return run_plan(plan_factory(**shard_kwargs), workers=workers)
    if shard_kwargs and plan_factory is not None and not _accepts_shards(runner):
        return run_plan(plan_factory(**shard_kwargs))
    return runner(**shard_kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None and args.workers < 0:
        parser.error(f"--workers must be non-negative, got {args.workers}")
    if getattr(args, "shards", None) is not None and args.shards < 1:
        parser.error(f"--shards must be at least 1, got {args.shards}")
    experiments = registry()
    if args.command == "list":
        for experiment_id in sorted(experiments):
            print(experiment_id)
        return 0
    if args.command == "run":
        if args.experiment not in experiments:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"available: {', '.join(sorted(experiments))}",
                file=sys.stderr,
            )
            return 2
        print(format_table(_run_experiment(args.experiment, args.workers, args.shards)))
        return 0
    if args.command == "run-all":
        for experiment_id in sorted(experiments):
            print(
                format_table(_run_experiment(experiment_id, args.workers, args.shards))
            )
            print()
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
