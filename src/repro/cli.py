"""Command-line interface: run any reproduced experiment and print its table.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure03
    python -m repro.cli run-all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import format_table, registry


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptive Precision Setting for Cached Approximate "
            "Values' (Olston, Loo, Widom, SIGMOD 2001)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    subparsers.add_parser("run-all", help="run every experiment (may take a while)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    experiments = registry()
    if args.command == "list":
        for experiment_id in sorted(experiments):
            print(experiment_id)
        return 0
    if args.command == "run":
        runner = experiments.get(args.experiment)
        if runner is None:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"available: {', '.join(sorted(experiments))}",
                file=sys.stderr,
            )
            return 2
        print(format_table(runner()))
        return 0
    if args.command == "run-all":
        for experiment_id in sorted(experiments):
            print(format_table(experiments[experiment_id]()))
            print()
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
