"""The paper's primary contribution: adaptive precision (width) setting.

The central class is :class:`~repro.core.policy.AdaptiveWidthController`,
which implements the Section 2 algorithm: grow the interval width on
value-initiated refreshes and shrink it on query-initiated refreshes, with
adjustment probabilities derived from the cost factor
``rho = 2 * C_vr / C_qr``, and clamp the width using the lower/upper
thresholds ``theta_0`` / ``theta_1``.

The analytical model of Section 3 / Appendix A lives in
:class:`~repro.core.cost_model.CostModel`, and the "unsuccessful variations"
of Section 4.5 in :mod:`repro.core.variations`.
"""

from repro.core.cost_model import CostModel
from repro.core.parameters import PrecisionParameters
from repro.core.policy import AdaptiveWidthController, WidthAdjustment
from repro.core.thresholds import apply_thresholds
from repro.core.variations import (
    HistoryWindowController,
    TimeVaryingWidthController,
    UncenteredWidthController,
)

__all__ = [
    "PrecisionParameters",
    "AdaptiveWidthController",
    "WidthAdjustment",
    "CostModel",
    "apply_thresholds",
    "UncenteredWidthController",
    "TimeVaryingWidthController",
    "HistoryWindowController",
]
