"""Analytical cost model of Section 3 and Appendix A.

For a cached approximation of width ``W`` the per-time-step refresh
probabilities are modelled as::

    P_vr = K1 / W**2        (value-initiated; Chebyshev bound on a random walk)
    P_qr = K2 * W           (query-initiated; uniform precision constraints)

so the expected cost rate is::

    Omega(W) = C_vr * K1 / W**2 + C_qr * K2 * W

which is minimised at ``W* = (rho * K1 / K2) ** (1/3)`` with
``rho = 2 * C_vr / C_qr``.  At ``W*`` the weighted probabilities balance:
``rho * P_vr(W*) = P_qr(W*)`` — the property the adaptive controller exploits
to find ``W*`` without estimating ``K1`` or ``K2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.parameters import PrecisionParameters


@dataclass(frozen=True)
class CostModel:
    """Closed-form refresh-probability and cost-rate model.

    Parameters
    ----------
    parameters:
        Cost parameters (only ``C_vr``, ``C_qr`` and the derived ``rho`` are
        used; thresholds and adaptivity are irrelevant to the static model).
    k1:
        Model constant of the value-initiated refresh probability
        (``P_vr = k1 / W**2``).  Depends on the volatility of the data.
    k2:
        Model constant of the query-initiated refresh probability
        (``P_qr = k2 * W``).  Depends on the query rate and the distribution
        of precision constraints.
    """

    parameters: PrecisionParameters
    k1: float = 1.0
    k2: float = 1.0 / 200.0

    def __post_init__(self) -> None:
        if self.k1 <= 0:
            raise ValueError("k1 must be positive")
        if self.k2 <= 0:
            raise ValueError("k2 must be positive")

    # ------------------------------------------------------------------
    # Model functions
    # ------------------------------------------------------------------
    def value_refresh_probability(self, width: float) -> float:
        """``P_vr(W) = k1 / W**2`` (capped at 1), infinite-width gives 0."""
        self._check_width(width)
        if math.isinf(width):
            return 0.0
        if width == 0:
            return 1.0
        return min(self.k1 / width**2, 1.0)

    def query_refresh_probability(self, width: float) -> float:
        """``P_qr(W) = k2 * W`` (capped at 1), zero-width gives 0."""
        self._check_width(width)
        if math.isinf(width):
            return 1.0
        return min(self.k2 * width, 1.0)

    def cost_rate(self, width: float) -> float:
        """Expected cost per time step ``Omega(W)``."""
        p_vr = self.value_refresh_probability(width)
        p_qr = self.query_refresh_probability(width)
        return (
            self.parameters.value_refresh_cost * p_vr
            + self.parameters.query_refresh_cost * p_qr
        )

    def optimal_width(self) -> float:
        """The closed-form minimiser ``W* = (rho * k1 / k2) ** (1/3)``."""
        return (self.parameters.cost_factor * self.k1 / self.k2) ** (1.0 / 3.0)

    def optimal_cost_rate(self) -> float:
        """``Omega(W*)``."""
        return self.cost_rate(self.optimal_width())

    def balance_residual(self, width: float) -> float:
        """``rho * P_vr(W) - P_qr(W)`` — zero exactly at the optimum."""
        return (
            self.parameters.cost_factor * self.value_refresh_probability(width)
            - self.query_refresh_probability(width)
        )

    # ------------------------------------------------------------------
    # Curve sampling (used by the Figure 2 experiment)
    # ------------------------------------------------------------------
    def sample_curves(
        self, widths: Sequence[float]
    ) -> List[Tuple[float, float, float, float]]:
        """Return ``(W, P_vr, P_qr, Omega)`` rows for each width in ``widths``."""
        rows = []
        for width in widths:
            rows.append(
                (
                    width,
                    self.value_refresh_probability(width),
                    self.query_refresh_probability(width),
                    self.cost_rate(width),
                )
            )
        return rows

    @staticmethod
    def _check_width(width: float) -> None:
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")

    # ------------------------------------------------------------------
    # Fitting helpers (used to validate the model against measurements)
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        parameters: PrecisionParameters,
        widths: Sequence[float],
        measured_p_vr: Sequence[float],
        measured_p_qr: Sequence[float],
    ) -> "CostModel":
        """Fit ``k1`` and ``k2`` to measured refresh probabilities.

        Uses simple least-squares in the transformed spaces
        ``P_vr * W**2 ~ k1`` and ``P_qr / W ~ k2`` (the model is linear in the
        constants once the width dependence is divided out), which is robust
        enough for validating the measured Figure 3 curves against the model.
        """
        if not (len(widths) == len(measured_p_vr) == len(measured_p_qr)):
            raise ValueError("widths and measurements must have equal length")
        if not widths:
            raise ValueError("at least one measurement is required")
        k1_samples = [p * w**2 for w, p in zip(widths, measured_p_vr) if w > 0]
        k2_samples = [p / w for w, p in zip(widths, measured_p_qr) if w > 0]
        if not k1_samples or not k2_samples:
            raise ValueError("measurements must include at least one positive width")
        k1 = sum(k1_samples) / len(k1_samples)
        k2 = sum(k2_samples) / len(k2_samples)
        return cls(parameters=parameters, k1=k1, k2=k2)
