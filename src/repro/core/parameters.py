"""Parameters of the adaptive precision-setting algorithm (Table 1).

The algorithm is controlled by five parameters (Section 2):

1. ``value_refresh_cost``  (``C_vr``) — cost of a value-initiated refresh.
2. ``query_refresh_cost``  (``C_qr``) — cost of a query-initiated refresh.
3. ``adaptivity``          (``alpha``) — how aggressively the width is adjusted.
4. ``lower_threshold``     (``theta_0``) — widths below it are treated as 0.
5. ``upper_threshold``     (``theta_1``) — widths at or above it are treated as
   infinity.

The first two are properties of the caching environment; the remaining three
tune the algorithm.  The derived *cost factor* ``rho = 2 * C_vr / C_qr``
determines how often the width is grown or shrunk; the factor of two comes
from the Appendix A analysis of interval approximations.  For stale-value
approximations (Divergence Caching emulation, Section 4.7) the appropriate
factor is ``rho' = C_vr / C_qr``, selected via ``cost_factor_multiplier``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class PrecisionParameters:
    """Immutable bundle of the algorithm's five parameters.

    Parameters
    ----------
    value_refresh_cost:
        ``C_vr`` — cost charged whenever the source value escapes the cached
        interval and the source pushes a fresh one.
    query_refresh_cost:
        ``C_qr`` — cost charged whenever a query must fetch the exact value.
    adaptivity:
        ``alpha >= 0`` — the multiplicative adjustment factor: widths grow to
        ``W * (1 + alpha)`` and shrink to ``W / (1 + alpha)``.
    lower_threshold:
        ``theta_0 >= 0`` — computed widths strictly below it are published as
        exactly ``0`` (exact caching).
    upper_threshold:
        ``theta_1 >= 0`` — computed widths at or above it are published as
        ``inf`` (effectively uncached).
    cost_factor_multiplier:
        Multiplier applied to ``C_vr / C_qr`` when forming the cost factor.
        ``2.0`` for interval approximations (the paper's ``rho``), ``1.0`` for
        stale-value approximations (the paper's ``rho'`` in Section 4.7).
    """

    value_refresh_cost: float = 1.0
    query_refresh_cost: float = 2.0
    adaptivity: float = 1.0
    lower_threshold: float = 0.0
    upper_threshold: float = math.inf
    cost_factor_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.value_refresh_cost <= 0:
            raise ValueError("value_refresh_cost (C_vr) must be positive")
        if self.query_refresh_cost <= 0:
            raise ValueError("query_refresh_cost (C_qr) must be positive")
        if self.adaptivity < 0:
            raise ValueError("adaptivity (alpha) must be non-negative")
        if self.lower_threshold < 0:
            raise ValueError("lower_threshold (theta_0) must be non-negative")
        if self.upper_threshold < 0:
            raise ValueError("upper_threshold (theta_1) must be non-negative")
        if self.upper_threshold < self.lower_threshold:
            raise ValueError(
                "upper_threshold (theta_1) must be >= lower_threshold (theta_0)"
            )
        if self.cost_factor_multiplier <= 0:
            raise ValueError("cost_factor_multiplier must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def cost_factor(self) -> float:
        """The cost factor ``rho = multiplier * C_vr / C_qr``."""
        return (
            self.cost_factor_multiplier
            * self.value_refresh_cost
            / self.query_refresh_cost
        )

    @property
    def growth_probability(self) -> float:
        """Probability of growing the width on a value-initiated refresh.

        ``min(rho, 1)``: when a query refresh is comparatively expensive
        (``rho > 1``) the width is grown on every value refresh; otherwise it
        is grown only a fraction ``rho`` of the time.
        """
        return min(self.cost_factor, 1.0)

    @property
    def shrink_probability(self) -> float:
        """Probability of shrinking the width on a query-initiated refresh.

        ``min(1 / rho, 1)``: when a value refresh is comparatively expensive
        (``rho > 1``) the width is shrunk only a fraction ``1 / rho`` of the
        time; otherwise on every query refresh.
        """
        return min(1.0 / self.cost_factor, 1.0)

    @property
    def growth_factor(self) -> float:
        """Multiplicative factor ``1 + alpha`` applied when growing."""
        return 1.0 + self.adaptivity

    @property
    def forces_exact_caching(self) -> bool:
        """True when ``theta_1 == theta_0`` so every width becomes 0 or inf.

        In this mode the algorithm degenerates to an adaptive *exact* caching
        scheme: each value is either cached exactly or effectively not cached
        (Section 4.6).
        """
        return self.upper_threshold == self.lower_threshold

    # ------------------------------------------------------------------
    # Convenience constructors / transforms
    # ------------------------------------------------------------------
    @classmethod
    def for_cost_factor(
        cls,
        cost_factor: float,
        *,
        query_refresh_cost: float = 2.0,
        adaptivity: float = 1.0,
        lower_threshold: float = 0.0,
        upper_threshold: float = math.inf,
    ) -> "PrecisionParameters":
        """Build parameters whose ``rho`` equals ``cost_factor``.

        The paper's experiments are organised around ``rho in {1, 4}`` with
        ``C_qr = 2``; this constructor inverts ``rho = 2 * C_vr / C_qr`` to
        recover the implied ``C_vr``.
        """
        if cost_factor <= 0:
            raise ValueError("cost_factor must be positive")
        value_refresh_cost = cost_factor * query_refresh_cost / 2.0
        return cls(
            value_refresh_cost=value_refresh_cost,
            query_refresh_cost=query_refresh_cost,
            adaptivity=adaptivity,
            lower_threshold=lower_threshold,
            upper_threshold=upper_threshold,
        )

    def with_thresholds(
        self, lower_threshold: float, upper_threshold: float
    ) -> "PrecisionParameters":
        """Return a copy with replaced thresholds."""
        return replace(
            self,
            lower_threshold=lower_threshold,
            upper_threshold=upper_threshold,
        )

    def with_adaptivity(self, adaptivity: float) -> "PrecisionParameters":
        """Return a copy with a replaced adaptivity parameter ``alpha``."""
        return replace(self, adaptivity=adaptivity)

    def for_stale_values(self) -> "PrecisionParameters":
        """Return a copy using the stale-value cost factor ``rho' = C_vr/C_qr``."""
        return replace(self, cost_factor_multiplier=1.0)

    def as_dict(self) -> Dict[str, float]:
        """Return a flat dictionary of the parameters, useful for reporting."""
        return {
            "C_vr": self.value_refresh_cost,
            "C_qr": self.query_refresh_cost,
            "rho": self.cost_factor,
            "alpha": self.adaptivity,
            "theta_0": self.lower_threshold,
            "theta_1": self.upper_threshold,
        }


#: Parameter presets matching the paper's two cost configurations: loosely
#: consistent updates (``C_vr = 1`` so ``rho = 1``) and two-phase locking
#: (``C_vr = 4`` so ``rho = 4``), both with ``C_qr = 2`` (Section 4.3).
PAPER_COST_CONFIGURATIONS: Dict[str, PrecisionParameters] = {
    "loose_consistency": PrecisionParameters(
        value_refresh_cost=1.0, query_refresh_cost=2.0
    ),
    "two_phase_locking": PrecisionParameters(
        value_refresh_cost=4.0, query_refresh_cost=2.0
    ),
}
