"""The adaptive width controller (Section 2 of the paper).

One :class:`AdaptiveWidthController` instance manages the interval width of a
single cached value.  Every refresh is an adaptation opportunity:

* **value-initiated refresh** — the exact value escaped the cached interval, a
  signal that the interval was too narrow.  With probability
  ``min(rho, 1)`` the width is grown to ``W * (1 + alpha)``.
* **query-initiated refresh** — a query found the interval too wide and
  fetched the exact value.  With probability ``min(1 / rho, 1)`` the width is
  shrunk to ``W / (1 + alpha)``.

The controller keeps the *original* (unclamped) width for future adaptation,
while :meth:`published_width` applies the ``theta_0`` / ``theta_1`` thresholds
to obtain the width actually installed in the cache, exactly as Section 2
prescribes ("the source still retains the original width, and uses it when
setting the next width").
"""

from __future__ import annotations

import math
import random
import sys
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.core.parameters import PrecisionParameters
from repro.core.thresholds import apply_thresholds

#: Smallest positive normal float; below it, halving loses mantissa bits and
#: the width table's exactness argument no longer holds.
_MIN_NORMAL = sys.float_info.min


def _exactly_invertible(factor: float) -> bool:
    """True when multiplying and dividing a normal float by ``factor`` is
    exact — i.e. the factor is a power of two (mantissa 0.5 in frexp form).

    The default adaptivity ``alpha = 1`` gives the factor 2, so the common
    hot path qualifies; fractional factors like 1.5 round and must keep the
    sequential multiply/divide arithmetic to stay bit-identical with the
    committed figure tables.
    """
    if factor <= 0 or math.isinf(factor):
        return False
    mantissa, _ = math.frexp(factor)
    return mantissa == 0.5


class WidthAdjustment(Enum):
    """Outcome of a refresh from the controller's point of view."""

    GREW = "grew"
    SHRANK = "shrank"
    UNCHANGED = "unchanged"


@dataclass
class ControllerState:
    """Snapshot of a controller's internal counters (useful for diagnostics)."""

    width: float
    published_width: float
    value_refreshes: int
    query_refreshes: int
    growth_events: int
    shrink_events: int


class AdaptiveWidthController:
    """Adaptive precision setting for a single cached approximate value.

    Parameters
    ----------
    parameters:
        The five algorithm parameters (costs, adaptivity, thresholds).
    initial_width:
        Starting width ``W``; must be positive so multiplicative updates can
        move it in both directions.  The paper does not prescribe a starting
        point because the algorithm converges from any positive width.
    rng:
        Source of randomness for the probabilistic adjustments.  Pass a seeded
        :class:`random.Random` for reproducible simulations.
    """

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial_width <= 0:
            raise ValueError(
                "initial_width must be positive so the width can adapt in both "
                f"directions, got {initial_width}"
            )
        self._parameters = parameters
        self._width = float(initial_width)
        self._rng = rng if rng is not None else random.Random()
        self._value_refreshes = 0
        self._query_refreshes = 0
        self._growth_events = 0
        self._shrink_events = 0
        # Precomputed adjustment factors: the parameter properties recompute
        # min()/divisions on every access, which is measurable when every
        # refresh of every cached value consults them.  The bundle is
        # immutable (frozen dataclass), so caching is safe.
        self._growth_probability = parameters.growth_probability
        self._shrink_probability = parameters.shrink_probability
        self._growth_factor = parameters.growth_factor
        self._adaptive = parameters.adaptivity != 0
        self._lower_threshold = parameters.lower_threshold
        self._upper_threshold = parameters.upper_threshold
        self._unclamped = (
            parameters.lower_threshold == 0.0
            and math.isinf(parameters.upper_threshold)
        )
        self._reset_width_table()

    def _reset_width_table(self) -> None:
        """(Re)build the exponent-keyed table of multiplicative widths.

        Widths only ever take values ``initial * factor**k``; the table maps
        the net exponent ``k`` to its width, so oscillating around the
        optimum replays memoised values instead of accumulating multiply/
        divide chains.  It is only sound when those chains are exact, i.e.
        for power-of-two factors and normal magnitudes — anything else keeps
        the plain sequential arithmetic (bit-identical to the historical
        behaviour, which for power-of-two factors the table also is).
        """
        self._exponent = 0
        if _exactly_invertible(self._growth_factor) and self._width >= _MIN_NORMAL:
            self._width_table: Optional[Dict[int, float]] = {0: self._width}
        else:
            self._width_table = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> PrecisionParameters:
        """The parameter bundle this controller was configured with."""
        return self._parameters

    @property
    def width(self) -> float:
        """The internal ("original") width, never clamped by thresholds."""
        return self._width

    def published_width(self) -> float:
        """The width to install in the cache, after threshold clamping."""
        if self._unclamped:
            # theta_0 = 0, theta_1 = inf: clamping is the identity (internal
            # widths are always positive and below +inf, and an overflowed
            # width publishes as inf either way).
            return self._width
        return apply_thresholds(
            self._width,
            self._lower_threshold,
            self._upper_threshold,
        )

    def state(self) -> ControllerState:
        """Return a snapshot of widths and refresh counters."""
        return ControllerState(
            width=self._width,
            published_width=self.published_width(),
            value_refreshes=self._value_refreshes,
            query_refreshes=self._query_refreshes,
            growth_events=self._growth_events,
            shrink_events=self._shrink_events,
        )

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def on_value_initiated_refresh(self) -> WidthAdjustment:
        """Record a value-initiated refresh ("interval too narrow").

        Returns the adjustment decision; call :meth:`published_width` for the
        width to ship with the refreshed interval.
        """
        self._value_refreshes += 1
        if not self._adaptive:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._growth_probability:
            table = self._width_table
            if table is None:
                self._width *= self._growth_factor
            else:
                self._exponent += 1
                width = table.get(self._exponent)
                if width is None:
                    width = self._width * self._growth_factor
                    if width >= _MIN_NORMAL and not math.isinf(width):
                        table[self._exponent] = width
                    else:
                        # Overflow: multiplication stops being invertible, so
                        # the table can no longer stand in for the sequential
                        # arithmetic.  Fall back permanently.
                        self._width_table = None
                self._width = width
            self._growth_events += 1
            return WidthAdjustment.GREW
        return WidthAdjustment.UNCHANGED

    def on_query_initiated_refresh(self) -> WidthAdjustment:
        """Record a query-initiated refresh ("interval too wide")."""
        self._query_refreshes += 1
        if not self._adaptive:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._shrink_probability:
            table = self._width_table
            if table is None:
                self._width /= self._growth_factor
            else:
                self._exponent -= 1
                width = table.get(self._exponent)
                if width is None:
                    width = self._width / self._growth_factor
                    if width >= _MIN_NORMAL:
                        table[self._exponent] = width
                    else:
                        # Subnormal: halving starts rounding, so memoised
                        # values would diverge from the sequential chain.
                        self._width_table = None
                self._width = width
            self._shrink_events += 1
            return WidthAdjustment.SHRANK
        return WidthAdjustment.UNCHANGED

    def reset(self, width: float) -> None:
        """Reset the internal width (used by experiments, not by the algorithm)."""
        if width <= 0:
            raise ValueError("width must be positive")
        self._width = float(width)
        self._reset_width_table()
