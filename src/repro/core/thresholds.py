"""Threshold clamping of interval widths (Section 2).

The algorithm keeps an internal ("original") width per value, but the width
actually *published* to the cache is clamped: widths strictly below the lower
threshold ``theta_0`` are published as ``0`` (exact copy) and widths at or
above the upper threshold ``theta_1`` are published as ``inf`` (effectively
uncached).  The source keeps adapting the original width, so the scheme can
leave either extreme once conditions change.
"""

from __future__ import annotations

import math


def apply_thresholds(
    width: float, lower_threshold: float, upper_threshold: float
) -> float:
    """Return the published width after applying ``theta_0`` / ``theta_1``.

    Parameters
    ----------
    width:
        The internally maintained ("original") width, ``>= 0``.
    lower_threshold:
        ``theta_0`` — widths strictly below it become ``0``.
    upper_threshold:
        ``theta_1`` — widths greater than or equal to it become ``inf``.

    Notes
    -----
    The order of the two tests matters when ``theta_0 == theta_1`` (the exact
    caching specialisation of Section 4.6): the paper's intent is that every
    width is then forced to either ``0`` or ``inf``, which the
    lower-test-first ordering delivers (widths below the common threshold go
    to 0, all others to inf).
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if lower_threshold < 0 or upper_threshold < 0:
        raise ValueError("thresholds must be non-negative")
    if upper_threshold < lower_threshold:
        raise ValueError("upper threshold must be >= lower threshold")
    if width < lower_threshold:
        return 0.0
    if width >= upper_threshold:
        return math.inf
    return width


def is_exact_width(published_width: float) -> bool:
    """True when a published width denotes an exact copy."""
    return published_width == 0.0


def is_uncached_width(published_width: float) -> bool:
    """True when a published width denotes an effectively uncached value."""
    return math.isinf(published_width)
