"""The "unsuccessful variations" of Section 4.5.

The paper evaluates three intuitive-but-unhelpful variations of the basic
algorithm and reports that none of them beat the simple controller on general
workloads:

* **Uncentered intervals** — maintain separate upper and lower widths, grow
  whichever side the value escaped from, shrink both on query refreshes.
  Helps only for biased random walks.
* **Time-varying intervals** — widths that grow with time (``t**1/2`` or
  ``t**1/3``), or endpoints drifting linearly; only the linear drift helps,
  and only when the data predictably trends.
* **History-window adjustment** — decide to grow or shrink based on the
  majority of the last ``r`` refreshes rather than only the most recent one.

They are implemented here so the Section 4.5 ablation experiments can
reproduce the negative results.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.parameters import PrecisionParameters
from repro.core.policy import WidthAdjustment
from repro.core.thresholds import apply_thresholds


class UncenteredWidthController:
    """Variation with independently adapted upper and lower widths.

    A value-initiated refresh caused by the value exceeding the *upper* bound
    grows only the upper width (with probability ``min(rho, 1)``); similarly
    for the lower bound.  A query-initiated refresh shrinks both widths (with
    probability ``min(1/rho, 1)``).
    """

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial_width <= 0:
            raise ValueError("initial_width must be positive")
        self._parameters = parameters
        self._upper_width = initial_width / 2.0
        self._lower_width = initial_width / 2.0
        self._rng = rng if rng is not None else random.Random()

    @property
    def upper_width(self) -> float:
        """Width of the interval above the exact value (unclamped)."""
        return self._upper_width

    @property
    def lower_width(self) -> float:
        """Width of the interval below the exact value (unclamped)."""
        return self._lower_width

    @property
    def width(self) -> float:
        """Total unclamped width (lower + upper)."""
        return self._lower_width + self._upper_width

    def published_widths(self) -> Tuple[float, float]:
        """Return (lower, upper) widths after threshold clamping of the total.

        Thresholds act on the total width; when clamped to 0 or inf both
        sides collapse accordingly.
        """
        total = apply_thresholds(
            self.width,
            self._parameters.lower_threshold,
            self._parameters.upper_threshold,
        )
        if total == 0.0:
            return 0.0, 0.0
        if total != self.width:  # clamped to inf
            return total, total
        return self._lower_width, self._upper_width

    def on_upper_escape(self) -> WidthAdjustment:
        """Value-initiated refresh triggered by the value exceeding the top."""
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._parameters.growth_probability:
            self._upper_width *= self._parameters.growth_factor
            return WidthAdjustment.GREW
        return WidthAdjustment.UNCHANGED

    def on_lower_escape(self) -> WidthAdjustment:
        """Value-initiated refresh triggered by the value dropping below."""
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._parameters.growth_probability:
            self._lower_width *= self._parameters.growth_factor
            return WidthAdjustment.GREW
        return WidthAdjustment.UNCHANGED

    def on_query_initiated_refresh(self) -> WidthAdjustment:
        """Shrink both sides with probability ``min(1/rho, 1)``."""
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._parameters.shrink_probability:
            self._upper_width /= self._parameters.growth_factor
            self._lower_width /= self._parameters.growth_factor
            return WidthAdjustment.SHRANK
        return WidthAdjustment.UNCHANGED


class TimeVaryingWidthController:
    """Variation whose published width grows with the time since refresh.

    The controller adapts a *base* width exactly like the standard algorithm
    but publishes ``base + growth_scale * elapsed**exponent`` when asked for
    the width at a given elapsed time.  Section 4.5 evaluates exponents 1/2
    and 1/3 and finds them unhelpful.
    """

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        exponent: float = 0.5,
        growth_scale: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial_width <= 0:
            raise ValueError("initial_width must be positive")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        if growth_scale < 0:
            raise ValueError("growth_scale must be non-negative")
        self._parameters = parameters
        self._base_width = initial_width
        self._exponent = exponent
        self._growth_scale = growth_scale
        self._rng = rng if rng is not None else random.Random()

    @property
    def base_width(self) -> float:
        """The adapted base width (width at the instant of refresh)."""
        return self._base_width

    def width_at(self, elapsed: float) -> float:
        """Published width ``elapsed`` time units after the last refresh."""
        if elapsed < 0:
            raise ValueError("elapsed must be non-negative")
        grown = self._base_width + self._growth_scale * elapsed**self._exponent
        return apply_thresholds(
            grown,
            self._parameters.lower_threshold,
            self._parameters.upper_threshold,
        )

    def on_value_initiated_refresh(self) -> WidthAdjustment:
        """Grow the base width with probability ``min(rho, 1)``."""
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._parameters.growth_probability:
            self._base_width *= self._parameters.growth_factor
            return WidthAdjustment.GREW
        return WidthAdjustment.UNCHANGED

    def on_query_initiated_refresh(self) -> WidthAdjustment:
        """Shrink the base width with probability ``min(1/rho, 1)``."""
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        if self._rng.random() < self._parameters.shrink_probability:
            self._base_width /= self._parameters.growth_factor
            return WidthAdjustment.SHRANK
        return WidthAdjustment.UNCHANGED


class HistoryWindowController:
    """Variation that adjusts based on the majority of the last ``r`` refreshes.

    The width is grown when the majority of the ``window`` most recent
    refreshes were value-initiated, and shrunk otherwise.  With ``window=1``
    this degenerates to the standard algorithm with ``rho = 1``.  The paper
    reports that no window size outperforms the memoryless controller.
    """

    _VALUE = "value"
    _QUERY = "query"

    def __init__(
        self,
        parameters: PrecisionParameters,
        initial_width: float = 1.0,
        window: int = 3,
    ) -> None:
        if initial_width <= 0:
            raise ValueError("initial_width must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self._parameters = parameters
        self._width = initial_width
        self._window = window
        self._history: Deque[str] = deque(maxlen=window)

    @property
    def width(self) -> float:
        """The internal (unclamped) width."""
        return self._width

    @property
    def window(self) -> int:
        """Number of recent refreshes considered."""
        return self._window

    def published_width(self) -> float:
        """Width after threshold clamping."""
        return apply_thresholds(
            self._width,
            self._parameters.lower_threshold,
            self._parameters.upper_threshold,
        )

    def on_value_initiated_refresh(self) -> WidthAdjustment:
        """Record a value-initiated refresh and apply the majority rule."""
        self._history.append(self._VALUE)
        return self._adjust()

    def on_query_initiated_refresh(self) -> WidthAdjustment:
        """Record a query-initiated refresh and apply the majority rule."""
        self._history.append(self._QUERY)
        return self._adjust()

    def _adjust(self) -> WidthAdjustment:
        if self._parameters.adaptivity == 0:
            return WidthAdjustment.UNCHANGED
        value_count = sum(1 for kind in self._history if kind == self._VALUE)
        query_count = len(self._history) - value_count
        if value_count > query_count:
            self._width *= self._parameters.growth_factor
            return WidthAdjustment.GREW
        if query_count > value_count:
            self._width /= self._parameters.growth_factor
            return WidthAdjustment.SHRANK
        return WidthAdjustment.UNCHANGED
