"""Data substrate: update streams, random walks, and the synthetic trace.

The paper evaluates on two kinds of data: synthetic one-dimensional random
walks (Section 4.2) and a real two-hour wide-area network traffic trace of the
50 most heavily trafficked hosts [PF95] (Section 4.3).  The trace itself is
not redistributable, so :mod:`repro.data.traffic` generates a synthetic
stand-in with the same structure (bursty, heavy-tailed ON/OFF behaviour,
one-minute moving-window averaging, the same value range); see DESIGN.md for
the substitution rationale.

All random generation flows through a pluggable stream engine
(:mod:`repro.data.engine`): ``reference`` preserves the ``random.Random``
sequences behind the committed figure tables, ``vector`` synthesises numpy
batches for paper-scale sweeps.  Generated traces can be persisted in an
on-disk cache (:mod:`repro.data.trace_cache`) keyed by
``(host_count, duration, seed, engine)``.
"""

from repro.data.engine import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    ReferenceEngine,
    StreamEngine,
    VectorEngine,
    get_engine,
)
from repro.data.merged import MergedTimeline, merge_timelines
from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import (
    CounterStream,
    RandomWalkStream,
    TraceStream,
    UpdateStream,
)
from repro.data.trace import Trace, moving_window_average
from repro.data.trace_cache import clear_trace_cache, load_or_generate, trace_cache_dir
from repro.data.traffic import SyntheticTrafficTraceGenerator

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "StreamEngine",
    "ReferenceEngine",
    "VectorEngine",
    "get_engine",
    "MergedTimeline",
    "merge_timelines",
    "RandomWalkGenerator",
    "UpdateStream",
    "RandomWalkStream",
    "TraceStream",
    "CounterStream",
    "Trace",
    "moving_window_average",
    "SyntheticTrafficTraceGenerator",
    "load_or_generate",
    "clear_trace_cache",
    "trace_cache_dir",
]
