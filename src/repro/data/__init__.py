"""Data substrate: update streams, random walks, and the synthetic trace.

The paper evaluates on two kinds of data: synthetic one-dimensional random
walks (Section 4.2) and a real two-hour wide-area network traffic trace of the
50 most heavily trafficked hosts [PF95] (Section 4.3).  The trace itself is
not redistributable, so :mod:`repro.data.traffic` generates a synthetic
stand-in with the same structure (bursty, heavy-tailed ON/OFF behaviour,
one-minute moving-window averaging, the same value range); see DESIGN.md for
the substitution rationale.
"""

from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import (
    CounterStream,
    RandomWalkStream,
    TraceStream,
    UpdateStream,
)
from repro.data.trace import Trace, moving_window_average
from repro.data.traffic import SyntheticTrafficTraceGenerator

__all__ = [
    "RandomWalkGenerator",
    "UpdateStream",
    "RandomWalkStream",
    "TraceStream",
    "CounterStream",
    "Trace",
    "moving_window_average",
    "SyntheticTrafficTraceGenerator",
]
