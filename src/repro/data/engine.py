"""Pluggable stream-generation engines: the vectorised data plane.

Every random quantity the data layer draws — random-walk steps, Poisson
update arrivals, bursty traffic seconds, moving-window smoothing — goes
through a :class:`StreamEngine`.  Two implementations cover the same split
the paper makes for cached values (an exact path and a fast
approximate-compatible path):

* :class:`ReferenceEngine` — the ``random.Random`` scalar sequences the
  committed figure tables were produced with.  Its batch methods draw from
  the RNG in exactly the same order as the historical per-step loops, so
  every seeded output is byte-identical to the pre-engine code.
* :class:`VectorEngine` — numpy ``Generator``-based batch synthesis.  Whole
  random-walk trajectories, Poisson timelines and burst segments are drawn
  as arrays, which is an order of magnitude faster at paper scale.  The
  sequences are statistically equivalent to the reference engine's but not
  bitwise equal (different RNG, different draw granularity), which is why
  engine selection is explicit: ``reference`` for the paper-exact figures,
  ``vector`` for scale sweeps.

Engines are identified by name (``SimulationConfig.engine``, CLI
``--engine``); :func:`get_engine` resolves a name to the shared instance.
"""

from __future__ import annotations

import functools
import random
from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.data.trace import moving_window_average

#: Name of the engine reproducing the committed figure tables byte-for-byte.
DEFAULT_ENGINE = "reference"


#: Grids longer than this are rebuilt per call instead of memoised: the
#: lru_cache bounds entry count, not bytes, so paper-scale sweeps over many
#: distinct (interval, duration) pairs must not pin multi-million-entry
#: tuples for the process lifetime.
_SCHEDULE_CACHE_MAX_STEPS = 1_000_000


def _build_reference_schedule_times(interval: float, duration: float) -> List[float]:
    # Accumulates with repeated float additions (no closed-form multiply) so
    # the instants are bit-identical to the historical update loop.
    times: List[float] = []
    time = interval
    horizon = duration + 1e-9
    while time <= horizon:
        times.append(round(time, 9))
        time += interval
    return times


@functools.lru_cache(maxsize=16)
def _cached_reference_schedule_times(
    interval: float, duration: float
) -> Tuple[float, ...]:
    return tuple(_build_reference_schedule_times(interval, duration))


def _reference_schedule_times(interval: float, duration: float) -> List[float]:
    """The reference engine's periodic grid, memoised per (interval, duration).

    Every source of a run shares one grid, so small grids are cached as
    immutable tuples; grids past :data:`_SCHEDULE_CACHE_MAX_STEPS` bypass
    the cache to keep memory retention bounded by entries *and* bytes.
    """
    if duration / interval > _SCHEDULE_CACHE_MAX_STEPS:
        return _build_reference_schedule_times(interval, duration)
    return list(_cached_reference_schedule_times(interval, duration))


class StreamEngine(ABC):
    """Batch generation surface shared by all stream/trace generators.

    An engine owns two things: how per-stream randomness handles are created
    (:meth:`rng`) and how batches of random quantities are synthesised from
    such a handle.  Scalar draws (e.g. the per-host burst-model parameters in
    :mod:`repro.data.traffic`) go through the handle directly — both engines
    return handles exposing the ``random.Random`` scalar method names.
    """

    name: ClassVar[str]

    @abstractmethod
    def rng(self, seed: Optional[int] = None) -> Any:
        """Return a fresh randomness handle for one stream or generator.

        Reference handles are seeded :class:`random.Random` instances; vector
        handles wrap a numpy ``Generator`` while exposing the same scalar
        method names (``random``, ``uniform``, ``betavariate``,
        ``expovariate``, ``paretovariate``).
        """

    @abstractmethod
    def walk_values(
        self,
        rng: Any,
        start: float,
        count: int,
        step_low: float,
        step_high: float,
        up_probability: float,
    ) -> List[float]:
        """Advance a random walk ``count`` steps from ``start``.

        Returns the ``count`` successive values (not including ``start``).
        Each step moves by a magnitude uniform in ``[step_low, step_high]``,
        upward with probability ``up_probability``.
        """

    @abstractmethod
    def schedule_times(self, interval: float, duration: float) -> List[float]:
        """Return the periodic instants ``interval, 2*interval, ...`` up to
        ``duration`` (inclusive, with the scheduler's 1e-9 tolerance)."""

    @abstractmethod
    def poisson_times(
        self, rng: Any, mean_interval: float, horizon: float
    ) -> List[float]:
        """Return Poisson arrival times in ``(0, horizon]`` with the given
        mean inter-arrival gap."""

    @abstractmethod
    def new_series(self, length: int) -> Any:
        """Return a zero-filled per-second series container of ``length``.

        The container is engine-native (a Python list for the reference
        engine, a numpy array for the vector engine) so burst fills and
        smoothing avoid per-host conversions; :meth:`as_list` converts back
        to plain floats at the boundary.
        """

    @abstractmethod
    def fill_burst(
        self,
        rng: Any,
        series: Any,
        start: int,
        count: int,
        burst_rate: float,
        peak_rate: float,
    ) -> None:
        """Fill ``series[start : start + count]`` with one burst's traffic:
        the burst rate jittered uniformly in ``[0.7, 1.3]`` per second and
        capped at ``peak_rate``."""

    @abstractmethod
    def finalize_series(
        self, series: Any, window: int, low: float, high: float
    ) -> List[float]:
        """Smooth a raw series with a trailing ``window``-sample moving
        average, clamp into ``[low, high]``, and return plain floats."""

    @abstractmethod
    def as_list(self, series: Any) -> List[float]:
        """Convert an engine-native series container to a list of floats."""

    @abstractmethod
    def moving_average(self, values: Sequence[float], window: int) -> List[float]:
        """Trailing moving average with the given window (see
        :func:`repro.data.trace.moving_window_average`)."""

    def merge_timelines(
        self,
        times_per_source: Sequence[Sequence[float]],
        values_per_source: Sequence[Sequence[float]],
    ) -> Optional[Tuple[List[float], List[int], List[float]]]:
        """Batch-merge per-source schedules into one time-ordered stream.

        Returns ``(times, source_indices, values)`` flat lists sorted by
        time, or ``None`` when the engine has no batch merge or the merge
        would not be exact (two sources sharing an instant must be ordered
        by the scheduler's dynamic tie-breaking, which a static sort cannot
        reproduce — see :mod:`repro.data.merged`).  The base implementation
        always returns ``None``; the reference engine inherits it because a
        pure-Python decorated sort would cost more than the heap replay it
        replaces.
        """
        return None


class ReferenceEngine(StreamEngine):
    """The paper-exact engine: ``random.Random`` scalar sequences.

    Batch methods replicate the historical per-step loops draw for draw, so
    seeded streams built through this engine reproduce every committed
    figure table byte-identically.
    """

    name = "reference"

    def rng(self, seed: Optional[int] = None) -> random.Random:
        return random.Random(seed)

    def walk_values(
        self,
        rng: random.Random,
        start: float,
        count: int,
        step_low: float,
        step_high: float,
        up_probability: float,
    ) -> List[float]:
        # One uniform draw then one direction draw per step, exactly like
        # count calls to the scalar step(); hot attributes bound locally.
        uniform = rng.uniform
        rand = rng.random
        value = start
        values: List[float] = []
        append = values.append
        for _ in range(count):
            magnitude = uniform(step_low, step_high)
            if rand() < up_probability:
                value += magnitude
            else:
                value -= magnitude
            append(value)
        return values

    def schedule_times(self, interval: float, duration: float) -> List[float]:
        # Returns a fresh list per call (callers may keep or alter it); the
        # underlying accumulation is memoised because every source of a run
        # typically shares one (interval, duration) grid.
        return _reference_schedule_times(interval, duration)

    def poisson_times(
        self, rng: random.Random, mean_interval: float, horizon: float
    ) -> List[float]:
        expovariate = rng.expovariate
        rate = 1.0 / mean_interval
        times: List[float] = []
        time = 0.0
        while True:
            time += expovariate(rate)
            if time > horizon:
                return times
            times.append(time)

    def new_series(self, length: int) -> List[float]:
        return [0.0] * length

    def fill_burst(
        self,
        rng: random.Random,
        series: List[float],
        start: int,
        count: int,
        burst_rate: float,
        peak_rate: float,
    ) -> None:
        # One jitter draw per second, in index order — the historical loop.
        uniform = rng.uniform
        for index in range(start, start + count):
            series[index] = min(burst_rate * uniform(0.7, 1.3), peak_rate)

    def finalize_series(
        self, series: List[float], window: int, low: float, high: float
    ) -> List[float]:
        return [
            min(max(value, low), high)
            for value in moving_window_average(series, window)
        ]

    def as_list(self, series: List[float]) -> List[float]:
        return series

    def moving_average(self, values: Sequence[float], window: int) -> List[float]:
        return moving_window_average(values, window)


class _VectorRandom:
    """Numpy-backed randomness handle with ``random.Random`` scalar names.

    Scalar draws let shared code (per-host burst models, single walk steps)
    run unchanged on either engine; batch generation goes straight to the
    underlying ``numpy.random.Generator`` via :attr:`generator`.
    """

    __slots__ = ("generator",)

    def __init__(self, generator: Any) -> None:
        self.generator = generator

    def random(self) -> float:
        return float(self.generator.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self.generator.uniform(low, high))

    def betavariate(self, alpha: float, beta: float) -> float:
        return float(self.generator.beta(alpha, beta))

    def expovariate(self, lambd: float) -> float:
        return float(self.generator.exponential(1.0 / lambd))

    def paretovariate(self, alpha: float) -> float:
        # random.paretovariate samples 1 / U**(1/alpha); numpy's pareto is
        # the Lomax distribution, the same law shifted down by one.
        return float(self.generator.pareto(alpha)) + 1.0


class VectorEngine(StreamEngine):
    """Numpy batch synthesis: fast, statistically equivalent, not bit-equal.

    Whole trajectories are drawn as arrays (uniform magnitude vector, sign
    vector, cumulative sum) instead of one scalar pair per step.  Use it for
    scale sweeps and capacity planning; paper-exact figure regeneration must
    stay on :class:`ReferenceEngine`.
    """

    name = "vector"

    def __init__(self) -> None:
        self._np = None

    @property
    def numpy(self):
        """The numpy module, imported on first use with a clear error."""
        if self._np is None:
            try:
                import numpy
            except ImportError as exc:  # pragma: no cover - numpy is bundled
                raise RuntimeError(
                    "the 'vector' stream engine requires numpy; install numpy "
                    "or select --engine reference"
                ) from exc
            self._np = numpy
        return self._np

    def rng(self, seed: Optional[int] = None) -> _VectorRandom:
        np = self.numpy
        return _VectorRandom(np.random.Generator(np.random.PCG64(seed)))

    def walk_values(
        self,
        rng: _VectorRandom,
        start: float,
        count: int,
        step_low: float,
        step_high: float,
        up_probability: float,
    ) -> List[float]:
        np = self.numpy
        if count == 0:
            return []
        generator = rng.generator
        magnitudes = generator.uniform(step_low, step_high, count)
        upward = generator.random(count) < up_probability
        deltas = np.where(upward, magnitudes, -magnitudes)
        values = np.cumsum(deltas)
        values += start
        return values.tolist()

    def schedule_times(self, interval: float, duration: float) -> List[float]:
        np = self.numpy
        count = int((duration + 1e-9) / interval)
        times = np.arange(1, count + 1, dtype=np.float64) * interval
        return np.round(times, 9).tolist()

    def poisson_times(
        self, rng: _VectorRandom, mean_interval: float, horizon: float
    ) -> List[float]:
        np = self.numpy
        generator = rng.generator
        times: List[float] = []
        last = 0.0
        # Draw gap batches sized to overshoot the horizon slightly; keep
        # extending until one batch crosses it.
        chunk = max(int(horizon / mean_interval * 1.2) + 16, 16)
        while True:
            arrivals = np.cumsum(generator.exponential(mean_interval, chunk))
            arrivals += last
            cut = int(np.searchsorted(arrivals, horizon, side="right"))
            times.extend(arrivals[:cut].tolist())
            if cut < chunk:
                return times
            last = float(arrivals[-1])
            chunk = max(chunk // 4, 16)

    def new_series(self, length: int):
        return self.numpy.zeros(length, dtype=self.numpy.float64)

    def fill_burst(
        self,
        rng: _VectorRandom,
        series: Any,
        start: int,
        count: int,
        burst_rate: float,
        peak_rate: float,
    ) -> None:
        np = self.numpy
        burst = rng.generator.uniform(0.7, 1.3, count)
        burst *= burst_rate
        np.minimum(burst, peak_rate, out=burst)
        series[start : start + count] = burst

    def _moving_average_array(self, series: Any, window: int):
        np = self.numpy
        cumulative = np.cumsum(series)
        averages = np.empty_like(cumulative)
        head = min(window, int(series.size))
        averages[:head] = cumulative[:head] / np.arange(1, head + 1)
        if series.size > window:
            averages[window:] = (cumulative[window:] - cumulative[:-window]) / window
        return averages

    def finalize_series(
        self, series: Any, window: int, low: float, high: float
    ) -> List[float]:
        if window < 1:
            raise ValueError("window must be at least 1")
        np = self.numpy
        averages = self._moving_average_array(series, window)
        np.clip(averages, low, high, out=averages)
        return averages.tolist()

    def as_list(self, series: Any) -> List[float]:
        return series.tolist()

    def moving_average(self, values: Sequence[float], window: int) -> List[float]:
        if window < 1:
            raise ValueError("window must be at least 1")
        np = self.numpy
        series = np.asarray(values, dtype=np.float64)
        if series.size == 0:
            return []
        return self._moving_average_array(series, window).tolist()

    def merge_timelines(
        self,
        times_per_source: Sequence[Sequence[float]],
        values_per_source: Sequence[Sequence[float]],
    ) -> Optional[Tuple[List[float], List[int], List[float]]]:
        np = self.numpy
        lengths = [len(times) for times in times_per_source]
        total = sum(lengths)
        if total == 0:
            return [], [], []
        times = np.empty(total, dtype=np.float64)
        values = np.empty(total, dtype=np.float64)
        offset = 0
        for source_times, source_values, length in zip(
            times_per_source, values_per_source, lengths
        ):
            times[offset : offset + length] = source_times
            values[offset : offset + length] = source_values
            offset += length
        source_indices = np.repeat(
            np.arange(len(times_per_source), dtype=np.intp), lengths
        )
        # Stable sort: within one source, equal instants keep their FIFO
        # order (sources are concatenated contiguously); across sources, any
        # shared instant shows up as an adjacent equal-time pair from two
        # different sources, which is exactly the case a static merge cannot
        # order correctly — bail out and let the caller replay dynamically.
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        sorted_sources = source_indices[order]
        tied = sorted_times[1:] == sorted_times[:-1]
        if bool(np.any(tied & (sorted_sources[1:] != sorted_sources[:-1]))):
            return None
        return (
            sorted_times.tolist(),
            sorted_sources.tolist(),
            values[order].tolist(),
        )


_ENGINES: Dict[str, StreamEngine] = {
    ReferenceEngine.name: ReferenceEngine(),
    VectorEngine.name: VectorEngine(),
}

#: The valid ``SimulationConfig.engine`` / CLI ``--engine`` values.
ENGINE_NAMES = tuple(sorted(_ENGINES))


def get_engine(name: str) -> StreamEngine:
    """Resolve an engine name to its shared instance."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown stream engine {name!r}; available: {', '.join(ENGINE_NAMES)}"
        ) from None
