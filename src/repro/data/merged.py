"""Merged-timeline export: one time-ordered event stream from many sources.

The simulator pre-materialises every source's update schedule up front
(:meth:`repro.data.streams.UpdateStream.schedule`), which means the whole
update timeline of a run is known before the first event executes.  The batch
execution kernel (:mod:`repro.simulation.kernel`) exploits that by replaying a
*merged* view of the per-source timelines instead of pushing every event
through a general priority queue.  This module builds that merged view.

Three representations are produced, picked per run by :func:`merge_timelines`:

* **lockstep** — every source shares one identical time grid (random walks,
  trace replays: one update per source per sample instant).  The merged
  stream is then simply "for each grid instant, every source in insertion
  order", stored as the shared ``times`` list plus one value column per
  source — no per-event bookkeeping at all.
* **static** — times differ across sources but no instant is shared by two
  sources, so the event order is a plain sort by time.  The engine exports
  the pre-merged flat arrays (:meth:`StreamEngine.merge_timelines`, a numpy
  stable argsort on the vector engine); engines without a batch merge fall
  through to the dynamic representation.
* **dynamic** — cross-source ties exist (or no batch merge is available), so
  the exact event order depends on the scheduler's dynamic tie-breaking and
  must be resolved while the simulation runs.  The kernel replays it with a
  small heap over per-source cursors (see
  :func:`repro.simulation.kernel.run_batch_kernel`), replicating the
  ``(time, priority, sequence)`` semantics of the general scheduler exactly.

The static representation is only exact when no two sources share an event
instant: with cross-source ties, the scheduler orders tied events by the
order their *predecessors* were executed (each source's next event draws its
tie-break sequence when the previous one is handled), which no statically
computed sort key can reproduce in general.  :func:`merge_timelines` verifies
the no-shared-instant property before trusting an engine's batch merge and
falls back to the dynamic representation otherwise.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.data.engine import StreamEngine

#: The three merged-timeline representations (``MergedTimeline.mode``).
MODE_LOCKSTEP = "lockstep"
MODE_STATIC = "static"
MODE_DYNAMIC = "dynamic"


class MergedTimeline:
    """The merged update timeline of one simulation run.

    Attributes
    ----------
    mode:
        One of :data:`MODE_LOCKSTEP`, :data:`MODE_STATIC`,
        :data:`MODE_DYNAMIC`.
    keys:
        Source keys in insertion (scheduling) order; ``source_indices`` and
        ``columns`` refer to positions in this tuple.
    times / values / source_indices:
        For ``static`` mode: the flat merged stream, time-ordered.
    times / columns:
        For ``lockstep`` mode: the shared time grid and one value column per
        source (``columns[i][j]`` is source ``i``'s value at ``times[j]``).
    times_per_source / values_per_source:
        For ``dynamic`` mode: each source's own schedule, split into parallel
        time/value lists for cursor-based consumption.
    """

    __slots__ = (
        "mode",
        "keys",
        "times",
        "values",
        "source_indices",
        "columns",
        "times_per_source",
        "values_per_source",
    )

    def __init__(
        self,
        mode: str,
        keys: Tuple[Hashable, ...],
        times: Optional[List[float]] = None,
        values: Optional[List[float]] = None,
        source_indices: Optional[List[int]] = None,
        columns: Optional[List[List[float]]] = None,
        times_per_source: Optional[List[List[float]]] = None,
        values_per_source: Optional[List[List[float]]] = None,
    ) -> None:
        self.mode = mode
        self.keys = keys
        self.times = times
        self.values = values
        self.source_indices = source_indices
        self.columns = columns
        self.times_per_source = times_per_source
        self.values_per_source = values_per_source

    @property
    def event_count(self) -> int:
        """Number of update events in the merged stream."""
        if self.mode == MODE_LOCKSTEP:
            assert self.times is not None and self.columns is not None
            return len(self.times) * len(self.columns)
        if self.mode == MODE_STATIC:
            assert self.times is not None
            return len(self.times)
        assert self.times_per_source is not None
        return sum(len(times) for times in self.times_per_source)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MergedTimeline(mode={self.mode!r}, sources={len(self.keys)}, "
            f"events={self.event_count})"
        )


def _split_timeline(
    timeline: Sequence[Tuple[float, float]],
) -> Tuple[List[float], List[float]]:
    """Split a ``[(time, value), ...]`` schedule into parallel lists."""
    if not timeline:
        return [], []
    times, values = zip(*timeline)
    return list(times), list(values)


def merge_timelines(
    timelines: Mapping[Hashable, Sequence[Tuple[float, float]]],
    engine: Optional[StreamEngine] = None,
) -> MergedTimeline:
    """Build the merged view of a run's pre-materialised update timelines.

    Parameters
    ----------
    timelines:
        Mapping of source key to its ``[(time, value), ...]`` schedule, in
        scheduling order (the simulator's source insertion order — the order
        initial tie-break sequences were assigned in).
    engine:
        Optional stream engine whose :meth:`StreamEngine.merge_timelines`
        batch merge is used for the static representation.  Engines without
        one (the reference engine) return ``None`` and non-lockstep runs use
        the dynamic representation instead.
    """
    keys = tuple(timelines)
    times_per_source: List[List[float]] = []
    values_per_source: List[List[float]] = []
    for timeline in timelines.values():
        times, values = _split_timeline(timeline)
        times_per_source.append(times)
        values_per_source.append(values)

    # Lockstep detection: every source updates at exactly the same instants.
    # This is the dominant shape (random walks and trace replays all tick on
    # one shared per-second grid), and C-level list equality makes the check
    # a single cheap pass per source.
    if times_per_source:
        grid = times_per_source[0]
        if all(times == grid for times in times_per_source[1:]):
            return MergedTimeline(
                mode=MODE_LOCKSTEP,
                keys=keys,
                times=grid,
                columns=values_per_source,
            )

    # Static merge: only exact when no instant is shared across sources, and
    # only built when the engine can batch it (numpy argsort); the engine
    # itself verifies the no-shared-instant property and returns None on
    # ties, so a Poisson workload with a measure-zero collision still
    # replays through the exact dynamic path.
    if engine is not None:
        merged = engine.merge_timelines(times_per_source, values_per_source)
        if merged is not None:
            times, source_indices, values = merged
            return MergedTimeline(
                mode=MODE_STATIC,
                keys=keys,
                times=times,
                values=values,
                source_indices=source_indices,
            )

    return MergedTimeline(
        mode=MODE_DYNAMIC,
        keys=keys,
        times_per_source=times_per_source,
        values_per_source=values_per_source,
    )
