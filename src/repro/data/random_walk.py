"""One-dimensional random walks (the paper's synthetic data, Section 4.2).

Every second the value either increases or decreases by an amount sampled
uniformly from ``[0.5, 1.5]``.  A *biased* walk (used in the Section 4.5
variation study) moves up with probability greater than one half.

Step generation goes through a pluggable :class:`~repro.data.engine.StreamEngine`:
the default :class:`~repro.data.engine.ReferenceEngine` draws from
``random.Random`` exactly as the committed figure tables require, while the
``vector`` engine synthesises whole trajectories as numpy batches.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.data.engine import DEFAULT_ENGINE, StreamEngine, get_engine


class RandomWalkGenerator:
    """Generates random-walk values, one step or one batch per call.

    Parameters
    ----------
    step_low / step_high:
        The step magnitude is drawn uniformly from ``[step_low, step_high]``
        (the paper uses ``[0.5, 1.5]``).
    up_probability:
        Probability that a step moves the value upward.  ``0.5`` is the
        unbiased walk of Section 4.2; larger values give the biased walk of
        Section 4.5.
    start:
        Initial value.
    rng:
        Randomness handle (pass a seeded one for reproducibility).  Must be
        a handle produced by — or compatible with — the chosen engine: a
        :class:`random.Random` for the reference engine, an
        ``engine.rng(seed)`` handle for the vector engine.
    engine:
        The stream engine drawing the steps (reference by default).
    """

    def __init__(
        self,
        step_low: float = 0.5,
        step_high: float = 1.5,
        up_probability: float = 0.5,
        start: float = 0.0,
        rng: Optional[random.Random] = None,
        engine: Optional[StreamEngine] = None,
    ) -> None:
        if step_low < 0:
            raise ValueError("step_low must be non-negative")
        if step_high < step_low:
            raise ValueError("step_high must be >= step_low")
        if not 0.0 <= up_probability <= 1.0:
            raise ValueError("up_probability must lie in [0, 1]")
        self._step_low = step_low
        self._step_high = step_high
        self._up_probability = up_probability
        self._value = float(start)
        self._engine = engine if engine is not None else get_engine(DEFAULT_ENGINE)
        self._rng = rng if rng is not None else self._engine.rng()

    @property
    def value(self) -> float:
        """The current value of the walk."""
        return self._value

    @property
    def engine(self) -> StreamEngine:
        """The stream engine drawing this walk's steps."""
        return self._engine

    @property
    def mean_step_magnitude(self) -> float:
        """Average absolute step size (the ``s`` of the Appendix A analysis)."""
        return (self._step_low + self._step_high) / 2.0

    @property
    def is_biased(self) -> bool:
        """True when up and down moves are not equally likely."""
        return self._up_probability != 0.5

    def step(self) -> float:
        """Advance the walk one step and return the new value."""
        magnitude = self._rng.uniform(self._step_low, self._step_high)
        if self._rng.random() < self._up_probability:
            self._value += magnitude
        else:
            self._value -= magnitude
        return self._value

    def steps_array(self, count: int) -> List[float]:
        """Advance the walk ``count`` steps and return all values at once.

        This is the batch path the simulator uses to pre-materialise update
        schedules.  Under the reference engine it draws from the RNG in
        exactly the same order as ``count`` calls to :meth:`step` (so seeded
        walks produce identical trajectories); under the vector engine the
        whole trajectory is synthesised as one numpy batch.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        values = self._engine.walk_values(
            self._rng,
            self._value,
            count,
            self._step_low,
            self._step_high,
            self._up_probability,
        )
        if values:
            self._value = values[-1]
        return values

    def walk(self, steps: int) -> List[float]:
        """Return the next ``steps`` values (the walk advances accordingly)."""
        return self.steps_array(steps)

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.step()
