"""Update streams: the sequences of source updates driving a simulation.

Every data source in a simulation is fed by an :class:`UpdateStream` that
yields ``(time, new_value)`` pairs in increasing time order.  Three concrete
streams cover the paper's workloads:

* :class:`RandomWalkStream` — one random-walk step per second (Section 4.2),
* :class:`TraceStream` — replay of a trace series (Section 4.3),
* :class:`CounterStream` — a monotone update counter, used for the stale-value
  (Divergence Caching) experiments of Section 4.7 where only the *number* of
  updates matters.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.data.random_walk import RandomWalkGenerator
from repro.data.trace import Trace

UpdateEventTuple = Tuple[float, float]


class UpdateStream(ABC):
    """A time-ordered stream of updates to one source value."""

    @property
    @abstractmethod
    def initial_value(self) -> float:
        """The source value before the first update."""

    @abstractmethod
    def updates(self, duration: float) -> Iterator[UpdateEventTuple]:
        """Yield ``(time, value)`` pairs for all updates in ``(0, duration]``."""

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        """Return the whole update schedule for ``(0, duration]`` as a list.

        Semantically identical to ``list(self.updates(duration))`` (the
        default implementation), but concrete streams override it with a
        batched construction so the simulator can pre-materialise per-source
        timelines without paying generator dispatch per step.  Streams with
        private randomness produce identical schedules either way.
        """
        return list(self.updates(duration))


class RandomWalkStream(UpdateStream):
    """A random-walk value updated once every ``interval`` seconds."""

    def __init__(
        self,
        walk: Optional[RandomWalkGenerator] = None,
        interval: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._walk = walk if walk is not None else RandomWalkGenerator(rng=rng)
        self._interval = interval
        self._initial = self._walk.value

    @property
    def initial_value(self) -> float:
        return self._initial

    @property
    def interval(self) -> float:
        """Seconds between consecutive updates."""
        return self._interval

    def updates(self, duration: float) -> Iterator[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        time = self._interval
        while time <= duration + 1e-9:
            yield (round(time, 9), self._walk.step())
            time += self._interval

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        # Accumulate the times with the same float additions as ``updates``
        # (no closed-form multiply) so both paths emit bit-identical instants,
        # then draw all the walk values in one batch.
        times: List[float] = []
        time = self._interval
        while time <= duration + 1e-9:
            times.append(round(time, 9))
            time += self._interval
        return list(zip(times, self._walk.steps_array(len(times))))


class TraceStream(UpdateStream):
    """Replays one series of a :class:`~repro.data.trace.Trace`."""

    def __init__(self, trace: Trace, key: Hashable) -> None:
        if key not in trace.series:
            raise KeyError(f"key {key!r} not present in trace")
        self._values: Sequence[float] = trace.series[key]
        self._interval = trace.sample_interval

    @property
    def initial_value(self) -> float:
        return self._values[0]

    def updates(self, duration: float) -> Iterator[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        for index in range(1, len(self._values)):
            time = index * self._interval
            if time > duration + 1e-9:
                break
            yield (time, self._values[index])

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        interval = self._interval
        horizon = duration + 1e-9
        events: List[UpdateEventTuple] = []
        for index in range(1, len(self._values)):
            time = index * interval
            if time > horizon:
                break
            events.append((time, self._values[index]))
        return events


class CounterStream(UpdateStream):
    """A monotone counter incremented on every update.

    Updates arrive either at a fixed period or as a Poisson process with the
    given mean inter-update time, modelling the update-frequency-only view of
    Divergence Caching.
    """

    def __init__(
        self,
        mean_interval: float = 1.0,
        poisson: bool = False,
        start: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        self._mean_interval = mean_interval
        self._poisson = poisson
        self._start = float(start)
        self._rng = rng if rng is not None else random.Random()

    @property
    def initial_value(self) -> float:
        return self._start

    def updates(self, duration: float) -> Iterator[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        value = self._start
        time = 0.0
        while True:
            if self._poisson:
                time += self._rng.expovariate(1.0 / self._mean_interval)
            else:
                time += self._mean_interval
            if time > duration + 1e-9:
                return
            value += 1.0
            yield (time, value)

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        horizon = duration + 1e-9
        events: List[UpdateEventTuple] = []
        value = self._start
        time = 0.0
        if self._poisson:
            expovariate = self._rng.expovariate
            rate = 1.0 / self._mean_interval
            while True:
                time += expovariate(rate)
                if time > horizon:
                    break
                value += 1.0
                events.append((time, value))
        else:
            mean_interval = self._mean_interval
            while True:
                time += mean_interval
                if time > horizon:
                    break
                value += 1.0
                events.append((time, value))
        return events


def streams_from_trace(trace: Trace, keys: Optional[Sequence[Hashable]] = None) -> dict:
    """Build a ``{key: TraceStream}`` mapping for the given (or all) trace keys."""
    selected = list(keys) if keys is not None else trace.keys
    return {key: TraceStream(trace, key) for key in selected}
