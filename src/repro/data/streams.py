"""Update streams: the sequences of source updates driving a simulation.

Every data source in a simulation is fed by an :class:`UpdateStream` that
yields ``(time, new_value)`` pairs in increasing time order.  Three concrete
streams cover the paper's workloads:

* :class:`RandomWalkStream` — one random-walk step per second (Section 4.2),
* :class:`TraceStream` — replay of a trace series (Section 4.3),
* :class:`CounterStream` — a monotone update counter, used for the stale-value
  (Divergence Caching) experiments of Section 4.7 where only the *number* of
  updates matters.

Randomised streams generate through a pluggable
:class:`~repro.data.engine.StreamEngine`; :meth:`UpdateStream.schedule` is the
single generation path (``updates`` replays the same batched schedule), so an
engine's output is identical whichever accessor a caller uses.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.data.engine import DEFAULT_ENGINE, StreamEngine, get_engine
from repro.data.random_walk import RandomWalkGenerator
from repro.data.trace import Trace

UpdateEventTuple = Tuple[float, float]


class UpdateStream(ABC):
    """A time-ordered stream of updates to one source value."""

    @property
    @abstractmethod
    def initial_value(self) -> float:
        """The source value before the first update."""

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        """Return the whole update schedule for ``(0, duration]`` as a list.

        This is the batch construction the simulator pre-materialises
        per-source timelines from; randomised streams draw it through their
        stream engine in as few RNG calls as the engine allows.

        Subclasses must override :meth:`schedule` or :meth:`updates` (the
        defaults are defined in terms of each other).  The bundled streams
        all override ``schedule`` — the single generation path — so both
        accessors emit identical events for a given randomness handle and
        engine.
        """
        if type(self).updates is UpdateStream.updates:
            raise NotImplementedError(
                f"{type(self).__name__} must override schedule() or updates()"
            )
        return list(self.updates(duration))

    def updates(self, duration: float) -> Iterator[UpdateEventTuple]:
        """Yield ``(time, value)`` pairs for all updates in ``(0, duration]``.

        Equivalent to iterating :meth:`schedule`; see :meth:`schedule` for
        the override contract.
        """
        return iter(self.schedule(duration))


class RandomWalkStream(UpdateStream):
    """A random-walk value updated once every ``interval`` seconds."""

    def __init__(
        self,
        walk: Optional[RandomWalkGenerator] = None,
        interval: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._walk = walk if walk is not None else RandomWalkGenerator(rng=rng)
        self._interval = interval
        self._initial = self._walk.value

    @property
    def initial_value(self) -> float:
        return self._initial

    @property
    def interval(self) -> float:
        """Seconds between consecutive updates."""
        return self._interval

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        engine = self._walk.engine
        times = engine.schedule_times(self._interval, duration)
        return list(zip(times, self._walk.steps_array(len(times))))


class TraceStream(UpdateStream):
    """Replays one series of a :class:`~repro.data.trace.Trace`."""

    def __init__(self, trace: Trace, key: Hashable) -> None:
        if key not in trace.series:
            raise KeyError(f"key {key!r} not present in trace")
        self._values: Sequence[float] = trace.series[key]
        self._interval = trace.sample_interval

    @property
    def initial_value(self) -> float:
        return self._values[0]

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        interval = self._interval
        horizon = duration + 1e-9
        events: List[UpdateEventTuple] = []
        for index in range(1, len(self._values)):
            time = index * interval
            if time > horizon:
                break
            events.append((time, self._values[index]))
        return events


class CounterStream(UpdateStream):
    """A monotone counter incremented on every update.

    Updates arrive either at a fixed period or as a Poisson process with the
    given mean inter-update time, modelling the update-frequency-only view of
    Divergence Caching.
    """

    def __init__(
        self,
        mean_interval: float = 1.0,
        poisson: bool = False,
        start: float = 0.0,
        rng: Optional[random.Random] = None,
        engine: Optional[StreamEngine] = None,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        self._mean_interval = mean_interval
        self._poisson = poisson
        self._start = float(start)
        self._engine = engine if engine is not None else get_engine(DEFAULT_ENGINE)
        self._rng = rng if rng is not None else self._engine.rng()

    @property
    def initial_value(self) -> float:
        return self._start

    def schedule(self, duration: float) -> List[UpdateEventTuple]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        horizon = duration + 1e-9
        value = self._start
        events: List[UpdateEventTuple] = []
        if self._poisson:
            for time in self._engine.poisson_times(
                self._rng, self._mean_interval, horizon
            ):
                value += 1.0
                events.append((time, value))
        else:
            mean_interval = self._mean_interval
            time = 0.0
            while True:
                time += mean_interval
                if time > horizon:
                    break
                value += 1.0
                events.append((time, value))
        return events


def streams_from_trace(trace: Trace, keys: Optional[Sequence[Hashable]] = None) -> dict:
    """Build a ``{key: TraceStream}`` mapping for the given (or all) trace keys."""
    selected = list(keys) if keys is not None else trace.keys
    return {key: TraceStream(trace, key) for key in selected}
