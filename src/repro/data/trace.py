"""Trace containers and moving-window smoothing.

A :class:`Trace` holds, for each source, a sequence of values sampled at a
fixed interval (one second in all of the paper's experiments).  The network
monitoring data in the paper is "a one minute moving window average of
network traffic every second"; :func:`moving_window_average` implements that
smoothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Sequence


def moving_window_average(values: Sequence[float], window: int) -> List[float]:
    """Return the trailing moving average of ``values`` with the given window.

    The average at position ``i`` covers ``values[max(0, i - window + 1) : i + 1]``,
    so early positions average over however many samples exist (this matches
    how a monitoring system reports a one-minute average during its first
    minute).
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    averages: List[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
        count = min(index + 1, window)
        averages.append(running / count)
    return averages


@dataclass
class Trace:
    """Per-source value sequences sampled at a fixed interval.

    Parameters
    ----------
    series:
        Mapping of source key to its value sequence.  All sequences must have
        the same length.
    sample_interval:
        Seconds between consecutive samples (1.0 in the paper).
    """

    series: Dict[Hashable, List[float]]
    sample_interval: float = 1.0

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError("a trace needs at least one series")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        lengths = {len(values) for values in self.series.values()}
        if len(lengths) != 1:
            raise ValueError("all series in a trace must have the same length")
        if 0 in lengths:
            raise ValueError("series must not be empty")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def keys(self) -> List[Hashable]:
        """The source keys in the trace."""
        return list(self.series.keys())

    @property
    def length(self) -> int:
        """Number of samples per series."""
        return len(next(iter(self.series.values())))

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        return self.length * self.sample_interval

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def value_at(self, key: Hashable, time: float) -> float:
        """Value of ``key`` at (the sample covering) ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        index = min(int(time / self.sample_interval), self.length - 1)
        return self.series[key][index]

    def initial_value(self, key: Hashable) -> float:
        """First sample of ``key``."""
        return self.series[key][0]

    def smoothed(self, window_seconds: float, engine=None) -> "Trace":
        """Return a new trace smoothed by a trailing moving-window average.

        ``engine`` (a :class:`~repro.data.engine.StreamEngine`) selects the
        smoothing implementation: the default scalar running sum reproduces
        the committed tables bit for bit, while the vector engine's
        cumulative-sum path is faster and equal up to float reassociation.
        """
        window = max(int(round(window_seconds / self.sample_interval)), 1)
        average = moving_window_average if engine is None else engine.moving_average
        return Trace(
            series={
                key: average(values, window) for key, values in self.series.items()
            },
            sample_interval=self.sample_interval,
        )

    def restricted_to(self, keys: Sequence[Hashable]) -> "Trace":
        """Return a trace containing only the given keys."""
        missing = [key for key in keys if key not in self.series]
        if missing:
            raise KeyError(f"keys not in trace: {missing}")
        return Trace(
            series={key: list(self.series[key]) for key in keys},
            sample_interval=self.sample_interval,
        )

    def top_keys_by_total(self, count: int) -> List[Hashable]:
        """Return the ``count`` keys with the largest total value.

        The paper "picked the 50 most heavily trafficked hosts"; this helper
        performs that selection on any trace.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        ranked = sorted(
            self.series.items(), key=lambda item: sum(item[1]), reverse=True
        )
        return [key for key, _ in ranked[:count]]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, path: Path) -> None:
        """Write the trace to a JSON file."""
        payload = {
            "sample_interval": self.sample_interval,
            "series": {str(key): values for key, values in self.series.items()},
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Path) -> "Trace":
        """Load a trace previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            series={key: list(values) for key, values in payload["series"].items()},
            sample_interval=float(payload["sample_interval"]),
        )

    @classmethod
    def from_mapping(
        cls, series: Mapping[Hashable, Sequence[float]], sample_interval: float = 1.0
    ) -> "Trace":
        """Build a trace from any mapping of key to value sequence."""
        return cls(
            series={key: list(values) for key, values in series.items()},
            sample_interval=sample_interval,
        )
