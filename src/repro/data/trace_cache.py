"""On-disk cache of generated traces, keyed by (hosts, duration, seed, engine).

Synthetic trace generation is the most expensive artefact of a paper-scale
run, and the per-process ``lru_cache`` in :mod:`repro.experiments.workloads`
cannot help worker processes: each one used to regenerate the trace once.
This module persists generated traces as JSON files so repeated sweeps and
process-pool workers load a pre-generated trace instead.

Layout: one file per key under the cache directory, named
``trace-v{format}-g{schema}-h{hosts}-d{duration}-s{seed}-{engine}.json``.
Each payload embeds its key and the generation-schema version; a mismatch
is treated as a miss and the file is regenerated, while a file that fails to
*parse* (truncated or mangled JSON) is additionally quarantined — renamed to
``<name>.corrupt`` — so a persistently broken file cannot shadow the
regenerated trace.
Writes are atomic (temp file + ``os.replace``), so concurrent workers race
benignly: generation is deterministic, every writer produces the same
bytes, and readers only ever observe complete files.

Environment knobs:

* ``REPRO_TRACE_CACHE_DIR`` — cache directory (default: a per-user
  ``repro-trace-cache-<uid>`` folder under the system temp directory).
* ``REPRO_TRACE_CACHE=off`` (or ``0``/``false``/``no``) — disable the disk
  cache entirely; every call generates in memory.

JSON float round-trips are exact in Python 3, so a cached trace replayed
through the reference engine still regenerates every committed figure table
byte-identically.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from pathlib import Path
from typing import Callable, Optional

from repro.data.trace import Trace

#: Bump when the payload layout changes (file naming / envelope schema).
CACHE_FORMAT_VERSION = 1

#: Bump when trace *generation* changes so stale cached content from an
#: older generator can never masquerade as current output.
TRACE_SCHEMA_VERSION = 1

_DISABLE_VALUES = {"0", "off", "false", "no"}


def cache_enabled() -> bool:
    """True unless ``REPRO_TRACE_CACHE`` disables the disk cache."""
    return os.environ.get("REPRO_TRACE_CACHE", "").strip().lower() not in (
        _DISABLE_VALUES
    )


def trace_cache_dir() -> Path:
    """The directory trace files live in (not created until first write).

    The default lives under the system temp directory with a per-user
    suffix: a world-shared fixed name would let one user's cache files be
    read by (and shadow) every other user's on a multi-user host.
    """
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return Path(override)
    if hasattr(os, "getuid"):
        user = str(os.getuid())
    else:  # pragma: no cover - Windows
        user = os.environ.get("USERNAME", "user")
    return Path(tempfile.gettempdir()) / f"repro-trace-cache-{user}"


def trace_cache_path(
    host_count: int,
    duration: int,
    seed: int,
    engine: str,
    cache_dir: Optional[Path] = None,
) -> Path:
    """The file a trace with this key is cached at."""
    directory = Path(cache_dir) if cache_dir is not None else trace_cache_dir()
    name = (
        f"trace-v{CACHE_FORMAT_VERSION}-g{TRACE_SCHEMA_VERSION}"
        f"-h{host_count}-d{duration}-s{seed}-{engine}.json"
    )
    return directory / name


def _key_payload(host_count: int, duration: int, seed: int, engine: str) -> dict:
    return {
        "host_count": host_count,
        "duration": duration,
        "seed": seed,
        "engine": engine,
        "schema": TRACE_SCHEMA_VERSION,
    }


def _quarantine(path: Path) -> None:
    """Move an unparseable cache file aside as ``<name>.corrupt``.

    Renaming (rather than deleting) keeps the evidence for debugging while
    making sure the regenerated file is not racing a reader of the broken
    one; if even the rename fails the file is unlinked, and if *that* fails
    the file is left alone — the subsequent atomic ``os.replace`` store
    overwrites it anyway.
    """
    try:
        os.replace(path, path.with_name(f"{path.name}.corrupt"))
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass


def _load(path: Path, expected_key: dict) -> Optional[Trace]:
    """Read a cached trace; any mismatch or corruption is a miss.

    A file that cannot be *read* (missing, permissions) is a plain miss.  A
    file that reads but cannot be *parsed* — truncated JSON from a torn
    copy, a mangled envelope — is quarantined so it cannot keep shadowing
    the regenerated trace.  A well-formed file whose embedded key does not
    match is left in place: it is some other run's valid cache entry that
    happens to share the name (e.g. after a schema bump rollback).
    """
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        payload = json.loads(text)
        if payload.get("key") != expected_key:
            return None
        return Trace(
            series={key: list(values) for key, values in payload["series"].items()},
            sample_interval=float(payload["sample_interval"]),
        )
    except (ValueError, KeyError, TypeError, AttributeError):
        _quarantine(path)
        return None


def _store(path: Path, trace: Trace, key: dict) -> None:
    """Atomically persist a trace; IO failures never fail the caller."""
    payload = {
        "key": key,
        "sample_interval": trace.sample_interval,
        "series": {
            str(series_key): values for series_key, values in trace.series.items()
        },
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        scratch.write_text(json.dumps(payload))
        os.replace(scratch, path)
    except OSError:
        # A read-only or full cache directory degrades to in-memory behaviour.
        pass


def load_or_generate(
    host_count: int,
    duration: int,
    seed: int,
    engine: str,
    generate: Callable[[], Trace],
    cache_dir: Optional[Path] = None,
    enabled: Optional[bool] = None,
) -> Trace:
    """Return the trace for this key, generating and caching on a miss.

    ``generate`` must be deterministic in the key (same key ⇒ same trace);
    that is what makes concurrent worker writes benign.  ``enabled`` forces
    the cache on or off regardless of the environment.
    """
    use_cache = cache_enabled() if enabled is None else enabled
    if not use_cache:
        return generate()
    key = _key_payload(host_count, duration, seed, engine)
    path = trace_cache_path(host_count, duration, seed, engine, cache_dir=cache_dir)
    cached = _load(path, key)
    if cached is not None:
        return cached
    trace = generate()
    _store(path, trace, key)
    return trace


def clear_trace_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete every cached trace file; returns how many were removed."""
    directory = Path(cache_dir) if cache_dir is not None else trace_cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for pattern in ("trace-v*.json", "trace-v*.json.corrupt"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
