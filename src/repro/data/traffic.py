"""Synthetic wide-area traffic trace (stand-in for the PF95 data set).

The paper's dynamic-environment experiments use "publicly available traces of
network traffic levels between hosts distributed over a wide area during a
two hour period [PF95]", smoothed into a one-minute moving-window average per
second, restricted to the 50 most heavily trafficked hosts, with values
ranging from 0 to 5.2 * 10**6 bytes per second.

The raw trace is not bundled with this reproduction, so this module generates
a synthetic equivalent preserving the properties the experiments depend on:

* per-host traffic alternates between idle periods and bursts ("a host became
  active after a period of inactivity" is exactly the regime Figures 4 and 5
  illustrate),
* burst durations are heavy-tailed (Pareto), reflecting the PF95 finding that
  Poisson models understate burstiness at every time scale,
* values are smoothed with the same one-minute moving window and span the
  same 0 .. ~5.2e6 range,
* hosts are heterogeneous — some are busy most of the time, others mostly
  idle — so that the cache and eviction experiments see skew.

Generation runs on a pluggable :class:`~repro.data.engine.StreamEngine`: the
reference engine reproduces the committed tables byte-for-byte, the vector
engine fills burst segments and smooths with numpy batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.data.engine import DEFAULT_ENGINE, StreamEngine, get_engine
from repro.data.trace import Trace

#: The paper reports traffic levels from 0 to 5.2e6 bytes per second.
PAPER_PEAK_TRAFFIC = 5.2e6

#: The paper smooths traffic with a one-minute moving window.
PAPER_SMOOTHING_WINDOW_SECONDS = 60.0

#: The paper uses a two-hour trace.
PAPER_TRACE_DURATION_SECONDS = 7200

#: The paper keeps the 50 most heavily trafficked hosts.
PAPER_HOST_COUNT = 50


@dataclass(frozen=True)
class BurstModel:
    """Parameters of a single host's ON/OFF burst behaviour."""

    mean_off_seconds: float
    pareto_shape: float
    min_burst_seconds: float
    peak_rate: float
    activity_bias: float

    def __post_init__(self) -> None:
        if self.mean_off_seconds <= 0:
            raise ValueError("mean_off_seconds must be positive")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto_shape must exceed 1 (finite mean burst length)")
        if self.min_burst_seconds <= 0:
            raise ValueError("min_burst_seconds must be positive")
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if not 0.0 <= self.activity_bias <= 1.0:
            raise ValueError("activity_bias must lie in [0, 1]")


class SyntheticTrafficTraceGenerator:
    """Generates a :class:`~repro.data.trace.Trace` of bursty host traffic.

    Parameters
    ----------
    host_count:
        Number of hosts (sources); the paper uses 50.
    duration_seconds:
        Trace length; the paper's trace covers two hours (7200 s).
    peak_rate:
        Upper end of the traffic range in bytes/second.
    smoothing_window_seconds:
        Length of the trailing moving-average window (60 s in the paper).
    seed:
        Seed for the internal random generator; the same seed always yields
        the same trace (per engine).
    engine:
        The stream engine drawing burst parameters and filling burst
        segments (reference by default).
    """

    def __init__(
        self,
        host_count: int = PAPER_HOST_COUNT,
        duration_seconds: int = PAPER_TRACE_DURATION_SECONDS,
        peak_rate: float = PAPER_PEAK_TRAFFIC,
        smoothing_window_seconds: float = PAPER_SMOOTHING_WINDOW_SECONDS,
        seed: int = 0,
        engine: Optional[StreamEngine] = None,
    ) -> None:
        if host_count < 1:
            raise ValueError("host_count must be at least 1")
        if duration_seconds < 2:
            raise ValueError("duration_seconds must be at least 2")
        if peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if smoothing_window_seconds < 1:
            raise ValueError("smoothing_window_seconds must be at least 1")
        self._host_count = host_count
        self._duration = int(duration_seconds)
        self._peak_rate = peak_rate
        self._window = smoothing_window_seconds
        self._seed = seed
        self._engine = engine if engine is not None else get_engine(DEFAULT_ENGINE)

    @property
    def engine(self) -> StreamEngine:
        """The stream engine this generator draws from."""
        return self._engine

    # ------------------------------------------------------------------
    # Host heterogeneity
    # ------------------------------------------------------------------
    def _host_model(self, rng) -> BurstModel:
        """Draw one host's burst parameters.

        Hosts differ in how often they are active and how heavy their bursts
        are, producing the skewed population the paper's cache-size
        experiments rely on.  These are a handful of scalar draws per host,
        served by either engine's randomness handle.
        """
        activity_bias = rng.betavariate(1.2, 2.0)
        mean_off = rng.uniform(30.0, 400.0) * (1.0 - 0.8 * activity_bias)
        pareto_shape = rng.uniform(1.2, 2.5)
        min_burst = rng.uniform(5.0, 30.0)
        peak_fraction = 0.15 + 0.85 * rng.betavariate(2.0, 2.0)
        return BurstModel(
            mean_off_seconds=mean_off,
            pareto_shape=pareto_shape,
            min_burst_seconds=min_burst,
            peak_rate=self._peak_rate * peak_fraction,
            activity_bias=activity_bias,
        )

    def _raw_host_series(self, model: BurstModel, rng):
        """Generate per-second raw (unsmoothed) traffic for one host.

        The ON/OFF state machine stays scalar (a few draws per burst), while
        each burst's per-second values are filled in one engine batch into
        an engine-native container — the hot part at paper scale.
        """
        engine = self._engine
        values = engine.new_series(self._duration)
        time = 0.0
        # Start some hosts mid-burst so the trace does not open fully idle.
        in_burst = rng.random() < model.activity_bias
        while time < self._duration:
            if in_burst:
                burst_length = model.min_burst_seconds * rng.paretovariate(
                    model.pareto_shape
                )
                burst_rate = model.peak_rate * rng.uniform(0.3, 1.0)
                end = min(time + burst_length, self._duration)
                second = int(time)
                count = max(math.ceil(end) - second, 0)
                if count:
                    engine.fill_burst(
                        rng, values, second, count, burst_rate, self._peak_rate
                    )
                time = end
                in_burst = False
            else:
                off_length = rng.expovariate(1.0 / model.mean_off_seconds)
                time += max(off_length, 1.0)
                in_burst = True
        return values

    def _raw_series_map(self) -> Dict[str, object]:
        """Raw per-host series in the engine's native containers."""
        rng = self._engine.rng(self._seed)
        series: Dict[str, object] = {}
        for host_index in range(self._host_count):
            model = self._host_model(rng)
            series[f"host-{host_index:02d}"] = self._raw_host_series(model, rng)
        return series

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate the smoothed multi-host trace.

        Each host's raw series is smoothed with the one-minute trailing
        window and clamped into ``[0, peak]`` (the running-sum average can
        leave tiny negative residues from floating-point cancellation, and
        traffic levels are physically >= 0) in one engine pass.
        """
        # Raw series are sampled per second (sample_interval 1.0), so the
        # window in samples equals the window in seconds — the same value
        # Trace.smoothed would compute.
        window = max(int(round(self._window)), 1)
        engine = self._engine
        series = {
            key: engine.finalize_series(values, window, 0.0, self._peak_rate)
            for key, values in self._raw_series_map().items()
        }
        return Trace(series=series, sample_interval=1.0)

    def generate_raw(self) -> Trace:
        """Generate the unsmoothed per-second trace (useful for tests)."""
        engine = self._engine
        series = {
            key: engine.as_list(values)
            for key, values in self._raw_series_map().items()
        }
        return Trace(series=series, sample_interval=1.0)
