"""Synthetic wide-area traffic trace (stand-in for the PF95 data set).

The paper's dynamic-environment experiments use "publicly available traces of
network traffic levels between hosts distributed over a wide area during a
two hour period [PF95]", smoothed into a one-minute moving-window average per
second, restricted to the 50 most heavily trafficked hosts, with values
ranging from 0 to 5.2 * 10**6 bytes per second.

The raw trace is not bundled with this reproduction, so this module generates
a synthetic equivalent preserving the properties the experiments depend on:

* per-host traffic alternates between idle periods and bursts ("a host became
  active after a period of inactivity" is exactly the regime Figures 4 and 5
  illustrate),
* burst durations are heavy-tailed (Pareto), reflecting the PF95 finding that
  Poisson models understate burstiness at every time scale,
* values are smoothed with the same one-minute moving window and span the
  same 0 .. ~5.2e6 range,
* hosts are heterogeneous — some are busy most of the time, others mostly
  idle — so that the cache and eviction experiments see skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.data.trace import Trace

#: The paper reports traffic levels from 0 to 5.2e6 bytes per second.
PAPER_PEAK_TRAFFIC = 5.2e6

#: The paper smooths traffic with a one-minute moving window.
PAPER_SMOOTHING_WINDOW_SECONDS = 60.0

#: The paper uses a two-hour trace.
PAPER_TRACE_DURATION_SECONDS = 7200

#: The paper keeps the 50 most heavily trafficked hosts.
PAPER_HOST_COUNT = 50


@dataclass(frozen=True)
class BurstModel:
    """Parameters of a single host's ON/OFF burst behaviour."""

    mean_off_seconds: float
    pareto_shape: float
    min_burst_seconds: float
    peak_rate: float
    activity_bias: float

    def __post_init__(self) -> None:
        if self.mean_off_seconds <= 0:
            raise ValueError("mean_off_seconds must be positive")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto_shape must exceed 1 (finite mean burst length)")
        if self.min_burst_seconds <= 0:
            raise ValueError("min_burst_seconds must be positive")
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if not 0.0 <= self.activity_bias <= 1.0:
            raise ValueError("activity_bias must lie in [0, 1]")


class SyntheticTrafficTraceGenerator:
    """Generates a :class:`~repro.data.trace.Trace` of bursty host traffic.

    Parameters
    ----------
    host_count:
        Number of hosts (sources); the paper uses 50.
    duration_seconds:
        Trace length; the paper's trace covers two hours (7200 s).
    peak_rate:
        Upper end of the traffic range in bytes/second.
    smoothing_window_seconds:
        Length of the trailing moving-average window (60 s in the paper).
    seed:
        Seed for the internal random generator; the same seed always yields
        the same trace.
    """

    def __init__(
        self,
        host_count: int = PAPER_HOST_COUNT,
        duration_seconds: int = PAPER_TRACE_DURATION_SECONDS,
        peak_rate: float = PAPER_PEAK_TRAFFIC,
        smoothing_window_seconds: float = PAPER_SMOOTHING_WINDOW_SECONDS,
        seed: int = 0,
    ) -> None:
        if host_count < 1:
            raise ValueError("host_count must be at least 1")
        if duration_seconds < 2:
            raise ValueError("duration_seconds must be at least 2")
        if peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if smoothing_window_seconds < 1:
            raise ValueError("smoothing_window_seconds must be at least 1")
        self._host_count = host_count
        self._duration = int(duration_seconds)
        self._peak_rate = peak_rate
        self._window = smoothing_window_seconds
        self._seed = seed

    # ------------------------------------------------------------------
    # Host heterogeneity
    # ------------------------------------------------------------------
    def _host_model(self, rng: random.Random) -> BurstModel:
        """Draw one host's burst parameters.

        Hosts differ in how often they are active and how heavy their bursts
        are, producing the skewed population the paper's cache-size
        experiments rely on.
        """
        activity_bias = rng.betavariate(1.2, 2.0)
        mean_off = rng.uniform(30.0, 400.0) * (1.0 - 0.8 * activity_bias)
        pareto_shape = rng.uniform(1.2, 2.5)
        min_burst = rng.uniform(5.0, 30.0)
        peak_fraction = 0.15 + 0.85 * rng.betavariate(2.0, 2.0)
        return BurstModel(
            mean_off_seconds=mean_off,
            pareto_shape=pareto_shape,
            min_burst_seconds=min_burst,
            peak_rate=self._peak_rate * peak_fraction,
            activity_bias=activity_bias,
        )

    def _raw_host_series(self, model: BurstModel, rng: random.Random) -> List[float]:
        """Generate per-second raw (unsmoothed) traffic for one host."""
        values = [0.0] * self._duration
        time = 0.0
        # Start some hosts mid-burst so the trace does not open fully idle.
        in_burst = rng.random() < model.activity_bias
        while time < self._duration:
            if in_burst:
                burst_length = model.min_burst_seconds * rng.paretovariate(
                    model.pareto_shape
                )
                burst_rate = model.peak_rate * rng.uniform(0.3, 1.0)
                end = min(time + burst_length, self._duration)
                second = int(time)
                while second < end:
                    jitter = rng.uniform(0.7, 1.3)
                    values[second] = min(burst_rate * jitter, self._peak_rate)
                    second += 1
                time = end
                in_burst = False
            else:
                off_length = rng.expovariate(1.0 / model.mean_off_seconds)
                time += max(off_length, 1.0)
                in_burst = True
        return values

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate the smoothed multi-host trace."""
        rng = random.Random(self._seed)
        series: Dict[str, List[float]] = {}
        for host_index in range(self._host_count):
            model = self._host_model(rng)
            series[f"host-{host_index:02d}"] = self._raw_host_series(model, rng)
        raw = Trace(series=series, sample_interval=1.0)
        smoothed = raw.smoothed(self._window)
        # The running-sum moving average can leave tiny negative residues from
        # floating-point cancellation; traffic levels are physically >= 0.
        clamped = {
            key: [min(max(value, 0.0), self._peak_rate) for value in values]
            for key, values in smoothed.series.items()
        }
        return Trace(series=clamped, sample_interval=1.0)

    def generate_raw(self) -> Trace:
        """Generate the unsmoothed per-second trace (useful for tests)."""
        rng = random.Random(self._seed)
        series: Dict[str, List[float]] = {}
        for host_index in range(self._host_count):
            model = self._host_model(rng)
            series[f"host-{host_index:02d}"] = self._raw_host_series(model, rng)
        return Trace(series=series, sample_interval=1.0)
