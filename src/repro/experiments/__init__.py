"""Experiments reproducing every table and figure of the paper.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows correspond to the
series of the paper's table or figure.  The modules default to laptop-scale
parameters (shorter traces, fewer hosts) so the whole suite runs in minutes;
pass ``paper_scale=True`` where available to use the paper's full settings.
"""

from repro.experiments.base import ExperimentResult, format_table, registry

__all__ = ["ExperimentResult", "format_table", "registry"]
