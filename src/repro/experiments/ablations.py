"""Ablations of design choices the paper calls out but does not plot.

Two design decisions of the algorithm/system are ablated:

* **Width-adjustment probabilities** — the algorithm grows on value refreshes
  with probability ``min(rho, 1)`` and shrinks on query refreshes with
  probability ``min(1/rho, 1)``; the ablation always adjusts (probability 1
  on both sides), which the Section 3 analysis predicts is suboptimal for
  ``rho != 1``.
* **Eviction policy** — the paper evicts the widest original width; the
  ablation compares against LRU and random eviction on a space-constrained
  cache.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.caching.eviction import (
    LeastRecentlyUsedEviction,
    RandomEviction,
    WidestFirstEviction,
)
from repro.caching.policies.adaptive import AdaptivePrecisionPolicy
from repro.core.parameters import PrecisionParameters
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation


class _AlwaysAdjustPolicy(AdaptivePrecisionPolicy):
    """Ablated policy that ignores the probabilistic adjustment rule.

    It forces the cost-factor-derived probabilities to 1 by building the
    controller with ``rho = 1`` while still charging the true costs in the
    simulation, so the only difference from the paper's policy is *when* the
    width is adjusted.
    """


def _always_adjust_policy(seed: int) -> _AlwaysAdjustPolicy:
    parameters = PrecisionParameters(
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        adaptivity=1.0,
        lower_threshold=0.0,
        upper_threshold=math.inf,
    )
    return _AlwaysAdjustPolicy(parameters, initial_width=KILO, rng=random.Random(seed))


def probability_ablation_rows(
    variant: str,
    cost_factor: float,
    host_count: int,
    duration: int,
    seed: int,
) -> List[Tuple]:
    """The row for one adjustment-probability variant (picklable sub-run)."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_average=100.0 * KILO,
        constraint_variation=1.0,
        cost_factor=cost_factor,
        seed=seed,
    )
    if variant == "paper":
        policy = adaptive_policy(
            cost_factor=cost_factor,
            adaptivity=1.0,
            initial_width=KILO,
            seed=seed,
        )
        label = f"min(rho,1)/min(1/rho,1), rho={cost_factor:g}"
    elif variant == "always-adjust":
        policy = _always_adjust_policy(seed)
        label = "always adjust (ablated)"
    else:
        raise ValueError(f"unknown variant {variant!r}")
    result = CacheSimulation(config, traffic_streams(trace), policy).run()
    return [("adjustment probabilities", label, result.cost_rate)]


def run_probability_ablation(
    cost_factor: float = 4.0,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 29,
) -> List[Tuple]:
    """Probabilistic adjustment (paper) vs always adjusting, at ``rho != 1``."""
    rows: List[Tuple] = []
    for variant in ("paper", "always-adjust"):
        rows.extend(
            probability_ablation_rows(
                variant=variant,
                cost_factor=cost_factor,
                host_count=host_count,
                duration=duration,
                seed=seed,
            )
        )
    return rows


def eviction_ablation_rows(
    eviction_kind: str,
    host_count: int,
    duration: int,
    seed: int,
) -> List[Tuple]:
    """The row for one eviction policy on the small cache (picklable)."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    capacity = max(host_count * 2 // 5, 2)
    if eviction_kind == "widest":
        label, eviction = "widest-first (paper)", WidestFirstEviction()
    elif eviction_kind == "lru":
        label, eviction = "LRU", LeastRecentlyUsedEviction()
    elif eviction_kind == "random":
        label, eviction = "random", RandomEviction(rng=random.Random(seed))
    else:
        raise ValueError(f"unknown eviction kind {eviction_kind!r}")
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_average=100.0 * KILO,
        constraint_variation=1.0,
        cost_factor=1.0,
        cache_capacity=capacity,
        seed=seed,
    )
    policy = adaptive_policy(
        cost_factor=1.0, adaptivity=1.0, initial_width=KILO, seed=seed
    )
    result = CacheSimulation(config, traffic_streams(trace), policy, eviction).run()
    return [("eviction policy", label, result.cost_rate)]


def run_eviction_ablation(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 29,
) -> List[Tuple]:
    """Widest-first (paper) vs LRU vs random eviction on a small cache."""
    rows: List[Tuple] = []
    for eviction_kind in ("widest", "lru", "random"):
        rows.extend(
            eviction_ablation_rows(
                eviction_kind=eviction_kind,
                host_count=host_count,
                duration=duration,
                seed=seed,
            )
        )
    return rows


def plan(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 29,
) -> ExperimentPlan:
    """Decompose both ablations into one sub-run per variant."""
    subruns = [
        SubRun(
            label=f"probabilities/{variant}",
            func=probability_ablation_rows,
            kwargs=dict(
                variant=variant,
                cost_factor=4.0,
                host_count=host_count,
                duration=duration,
                seed=seed,
            ),
        )
        for variant in ("paper", "always-adjust")
    ]
    subruns.extend(
        SubRun(
            label=f"eviction/{eviction_kind}",
            func=eviction_ablation_rows,
            kwargs=dict(
                eviction_kind=eviction_kind,
                host_count=host_count,
                duration=duration,
                seed=seed,
            ),
        )
        for eviction_kind in ("widest", "lru", "random")
    )
    return ExperimentPlan(
        experiment_id="ablations",
        title="Design-choice ablations: adjustment probabilities and eviction policy",
        columns=("ablation", "variant", "Omega"),
        subruns=tuple(subruns),
        notes=(
            "Expected: the paper's probabilistic adjustment is at least as good as "
            "always adjusting when rho != 1; widest-first eviction is competitive "
            "with or better than LRU/random for bounded caches."
        ),
    )


def run(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 29,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run both ablations."""
    return run_plan(
        plan(host_count=host_count, duration=duration, seed=seed), workers=workers
    )
