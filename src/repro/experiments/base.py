"""Common experiment plumbing: results, table formatting, and the registry."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class ExperimentResult:
    """The rows of one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Identifier matching DESIGN.md (e.g. ``"figure06"``).
    title:
        Human-readable description of what the rows show.
    columns:
        Column headers.
    rows:
        One tuple per row; cells may be numbers or strings.
    notes:
        Free-form remarks (e.g. which paper claim the rows support).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple]
    notes: str = ""

    def column_index(self, name: str) -> int:
        """Return the index of the named column (raises ``ValueError`` if absent)."""
        return list(self.columns).index(name)

    def column(self, name: str) -> List:
        """Return all values of the named column."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_table(self)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.4g}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    headers = [str(column) for column in result.columns]
    formatted_rows = [[_format_cell(cell) for cell in row] for row in result.rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if result.notes:
        lines.append(f"notes: {result.notes}")
    return "\n".join(lines)


#: Registry of experiment id -> zero-argument callable returning the result.
#: Populated lazily by :func:`registry` to avoid import cycles.
def registry() -> Dict[str, Callable[[], ExperimentResult]]:
    """Return the mapping of experiment ids to their default runners."""
    from repro.experiments import (
        ablations,
        figure02_model,
        figure03_optimality,
        figure04_05_timeseries,
        figure06_adaptivity,
        figure07_09_thresholds,
        figure10_13_exact,
        figure14_15_divergence,
        section44_sensitivity,
        section45_variations,
        serving_faults,
        serving_throughput,
        sharded_scaling,
        table1,
    )

    return {
        "table1": table1.run,
        "figure02": figure02_model.run,
        "figure03": figure03_optimality.run,
        "figure04_05": figure04_05_timeseries.run,
        "figure06": figure06_adaptivity.run,
        "figure07_09": figure07_09_thresholds.run,
        "figure10_13": figure10_13_exact.run,
        "figure14_15": figure14_15_divergence.run,
        "section44": section44_sensitivity.run,
        "section45": section45_variations.run,
        "sharded_scaling": sharded_scaling.run,
        "serving_throughput": serving_throughput.run,
        "serving_partition_sweep": serving_throughput.run_partition_sweep,
        "serving_faults": serving_faults.run,
        "ablations": ablations.run,
    }
