"""Figure 2: analytical cost rate and refresh probabilities vs interval width.

The paper plots ``P_vr = K1 / W**2``, ``P_qr = K2 * W`` and the resulting
cost rate ``Omega(W)`` for ``rho = 1`` with ``K1 = 1`` and ``K2 = 1/200``
(values "set based roughly on a query period of 10 seconds and an average
precision constraint of 10"), showing that the cost minimum coincides with
the crossing of the two probability curves.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost_model import CostModel
from repro.core.parameters import PrecisionParameters
from repro.experiments.base import ExperimentResult

#: The constants the paper quotes for Figure 2.
PAPER_K1 = 1.0
PAPER_K2 = 1.0 / 200.0


def run(
    widths: Sequence[float] = tuple(range(1, 21)),
    cost_factor: float = 1.0,
    k1: float = PAPER_K1,
    k2: float = PAPER_K2,
) -> ExperimentResult:
    """Sample the analytical curves over ``widths``."""
    parameters = PrecisionParameters.for_cost_factor(cost_factor)
    model = CostModel(parameters=parameters, k1=k1, k2=k2)
    rows = []
    for width, p_vr, p_qr, omega in model.sample_curves(list(widths)):
        rows.append((width, p_vr, p_qr, omega))
    optimal = model.optimal_width()
    return ExperimentResult(
        experiment_id="figure02",
        title="Analytical refresh probabilities and cost rate vs width (rho=1)",
        columns=("W", "P_vr", "P_qr", "Omega"),
        rows=rows,
        notes=(
            f"W* = (rho*K1/K2)^(1/3) = {optimal:.3f}; the cost minimum coincides "
            "with the crossing of rho*P_vr and P_qr."
        ),
    )


def optimal_width(
    cost_factor: float = 1.0, k1: float = PAPER_K1, k2: float = PAPER_K2
) -> float:
    """Convenience accessor for the closed-form optimum used in the notes."""
    parameters = PrecisionParameters.for_cost_factor(cost_factor)
    return CostModel(parameters=parameters, k1=k1, k2=k2).optimal_width()
