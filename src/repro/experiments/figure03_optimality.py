"""Figure 3 and the Section 4.2 optimality claims.

The experiment has two parts, both on a single random-walk source (step size
uniform in [0.5, 1.5], one update per second):

1. **Width sweep** — the adaptive part of the algorithm is turned off and the
   interval width held fixed per run; across runs the width varies, and the
   measured value-/query-initiated refresh rates and cost rate are recorded.
   The paper's Figure 3 shows these measurements matching the ``1/W**2`` and
   ``W`` shapes of the model, with the cost minimum at the crossing point.
2. **Adaptive run** — the same workload with the adaptive algorithm switched
   on; the paper reports performance within 1% of the best fixed width for
   the base configuration (``T_q = 2``, ``delta_avg = 20``, ``sigma = 1``,
   ``rho = 1``) and within 5% over the grid ``T_q in {1,2}``,
   ``delta_avg in {10,20}``, ``rho in {1,4}``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.convergence import relative_regret
from repro.analysis.optimal_width import WidthSweepResult, sweep_widths
from repro.caching.policies.static import StaticWidthPolicy
from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import RandomWalkStream
from repro.experiments.base import ExperimentResult
from repro.experiments.workloads import adaptive_policy
from repro.queries.aggregates import AggregateKind
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CacheSimulation

#: Base configuration of the Figure 3 experiment.
BASE_QUERY_PERIOD = 2.0
BASE_CONSTRAINT_AVERAGE = 20.0
BASE_CONSTRAINT_VARIATION = 1.0
BASE_COST_FACTOR = 1.0


def _config(
    duration: float,
    query_period: float,
    constraint_average: float,
    cost_factor: float,
    seed: int,
) -> SimulationConfig:
    query_refresh_cost = 2.0
    return SimulationConfig(
        duration=duration,
        warmup=duration * 0.1,
        query_period=query_period,
        query_size=1,
        aggregates=(AggregateKind.SUM,),
        constraint_average=constraint_average,
        constraint_variation=BASE_CONSTRAINT_VARIATION,
        value_refresh_cost=cost_factor * query_refresh_cost / 2.0,
        query_refresh_cost=query_refresh_cost,
        seed=seed,
    )


def _streams(seed: int):
    walk = RandomWalkGenerator(start=100.0, rng=random.Random(seed))
    return {"walk-0": RandomWalkStream(walk)}


def run_width_sweep(
    widths: Sequence[float] = tuple(range(1, 11)),
    duration: float = 4000.0,
    query_period: float = BASE_QUERY_PERIOD,
    constraint_average: float = BASE_CONSTRAINT_AVERAGE,
    cost_factor: float = BASE_COST_FACTOR,
    seed: int = 11,
) -> WidthSweepResult:
    """Measure cost rate and refresh rates for each fixed width."""

    def run_with_width(width: float):
        config = _config(duration, query_period, constraint_average, cost_factor, seed)
        policy = StaticWidthPolicy(width)
        return CacheSimulation(config, _streams(seed), policy).run()

    return sweep_widths(run_with_width, list(widths))


def run_adaptive(
    duration: float = 4000.0,
    query_period: float = BASE_QUERY_PERIOD,
    constraint_average: float = BASE_CONSTRAINT_AVERAGE,
    cost_factor: float = BASE_COST_FACTOR,
    seed: int = 11,
):
    """Run the adaptive algorithm on the same workload."""
    config = _config(duration, query_period, constraint_average, cost_factor, seed)
    policy = adaptive_policy(
        cost_factor=cost_factor, adaptivity=1.0, initial_width=1.0, seed=seed
    )
    return CacheSimulation(config, _streams(seed), policy).run()


@dataclass(frozen=True)
class OptimalityCheck:
    """Outcome of comparing the adaptive run against the best fixed width."""

    query_period: float
    constraint_average: float
    cost_factor: float
    best_fixed_width: float
    best_fixed_cost_rate: float
    adaptive_cost_rate: float
    regret: float


def convergence_report(
    grid_query_periods: Sequence[float] = (1.0, 2.0),
    grid_constraints: Sequence[float] = (10.0, 20.0),
    grid_cost_factors: Sequence[float] = (1.0, 4.0),
    duration: float = 3000.0,
    widths: Sequence[float] = tuple(range(1, 11)),
    seed: int = 11,
) -> List[OptimalityCheck]:
    """Reproduce the Section 4.2 "within 5% of optimal" grid."""
    checks = []
    for query_period in grid_query_periods:
        for constraint_average in grid_constraints:
            for cost_factor in grid_cost_factors:
                sweep = run_width_sweep(
                    widths=widths,
                    duration=duration,
                    query_period=query_period,
                    constraint_average=constraint_average,
                    cost_factor=cost_factor,
                    seed=seed,
                )
                adaptive = run_adaptive(
                    duration=duration,
                    query_period=query_period,
                    constraint_average=constraint_average,
                    cost_factor=cost_factor,
                    seed=seed,
                )
                checks.append(
                    OptimalityCheck(
                        query_period=query_period,
                        constraint_average=constraint_average,
                        cost_factor=cost_factor,
                        best_fixed_width=sweep.best_width,
                        best_fixed_cost_rate=sweep.best_cost_rate,
                        adaptive_cost_rate=adaptive.cost_rate,
                        regret=relative_regret(
                            adaptive.cost_rate, sweep.best_cost_rate
                        ),
                    )
                )
    return checks


def run(
    widths: Sequence[float] = tuple(range(1, 11)),
    duration: float = 4000.0,
    seed: int = 11,
) -> ExperimentResult:
    """Produce the Figure 3 rows plus the adaptive-run summary."""
    sweep = run_width_sweep(widths=widths, duration=duration, seed=seed)
    adaptive = run_adaptive(duration=duration, seed=seed)
    rows: List[Tuple] = [
        (
            point.width,
            point.value_refresh_rate,
            point.query_refresh_rate,
            point.cost_rate,
        )
        for point in sweep.points
    ]
    finite_widths = [w for w in adaptive.final_widths.values() if math.isfinite(w)]
    converged_width = finite_widths[0] if finite_widths else float("nan")
    regret = relative_regret(adaptive.cost_rate, sweep.best_cost_rate)
    return ExperimentResult(
        experiment_id="figure03",
        title="Measured refresh rates and cost rate vs fixed width (random walk)",
        columns=("W", "P_vr (measured)", "P_qr (measured)", "Omega (measured)"),
        rows=rows,
        notes=(
            f"best fixed width = {sweep.best_width:g} "
            f"(Omega = {sweep.best_cost_rate:.4f}); adaptive run: "
            f"Omega = {adaptive.cost_rate:.4f}, converged width ~ {converged_width:.2f}, "
            f"regret vs best fixed = {regret * 100:.1f}% "
            f"(paper: within 1% on this configuration)."
        ),
    )
