"""Figures 4 and 5: source value and cached interval over time.

The paper plots, for one host of the network-monitoring trace, the exact
traffic level together with the cached interval as both evolve, once for a
small average precision constraint (``delta_avg = 50K``, narrow intervals)
and once for a large one (``delta_avg = 500K``, wide intervals).  The
qualitative claim is that the adaptive algorithm selects interval widths on
the order of ``delta_avg / 10`` (the per-item share of a SUM constraint over
10 items).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.metrics import IntervalSample, SimulationResult
from repro.simulation.simulator import CacheSimulation


@dataclass(frozen=True)
class TimeSeriesRun:
    """One tracked-host run: the constraint used and the recorded samples."""

    constraint_average: float
    tracked_key: Hashable
    samples: List[IntervalSample]
    result: SimulationResult

    def mean_finite_width(self) -> float:
        """Average width of the cached interval over the samples (finite only)."""
        widths = [
            sample.interval.width
            for sample in self.samples
            if sample.interval is not None and not sample.interval.is_unbounded
        ]
        if not widths:
            return math.nan
        return sum(widths) / len(widths)


def run_timeseries(
    constraint_average: float,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    tracked_key: Optional[Hashable] = None,
    seed: int = 3,
) -> TimeSeriesRun:
    """Run the traffic workload tracking one host's value/interval evolution."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    key = tracked_key if tracked_key is not None else trace.top_keys_by_total(1)[0]
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_average=constraint_average,
        constraint_variation=1.0,
        cost_factor=1.0,
        seed=seed,
        track_keys=(key,),
    )
    policy = adaptive_policy(
        cost_factor=1.0,
        adaptivity=1.0,
        lower_threshold=0.0,
        upper_threshold=math.inf,
        initial_width=KILO,
        seed=seed,
    )
    simulation = CacheSimulation(config, traffic_streams(trace), policy)
    result = simulation.run()
    return TimeSeriesRun(
        constraint_average=constraint_average,
        tracked_key=key,
        samples=result.interval_samples[key],
        result=result,
    )


def timeseries_subrun(
    label: str,
    constraint_average: float,
    host_count: int,
    duration: int,
    sample_every: int,
    seed: int,
) -> Dict:
    """One tracked-host run, reduced to downsampled rows plus the mean width.

    Module-level (picklable) so the parallel runner can execute it in a
    worker process.
    """
    run_data = run_timeseries(
        constraint_average=constraint_average,
        host_count=host_count,
        duration=duration,
        seed=seed,
    )
    rows = []
    for index, sample in enumerate(run_data.samples):
        if index % sample_every != 0:
            continue
        if sample.interval is None or sample.interval.is_unbounded:
            low, high = math.nan, math.nan
        else:
            low, high = sample.interval.low, sample.interval.high
        rows.append((label, sample.time, sample.value, low, high))
    return {"label": label, "rows": rows, "mean_width": run_data.mean_finite_width()}


def _assemble_timeseries(results: List[Dict]) -> ExperimentResult:
    rows: List = []
    mean_widths: Dict[str, float] = {}
    for result in results:
        rows.extend(result["rows"])
        mean_widths[result["label"]] = result["mean_width"]
    return ExperimentResult(
        experiment_id="figure04_05",
        title="Source value and cached interval over time (small vs large constraints)",
        columns=("figure", "time", "exact value", "interval low", "interval high"),
        rows=rows,
        notes=(
            f"mean cached width: small-constraint run = {mean_widths['fig4_small']:.0f}, "
            f"large-constraint run = {mean_widths['fig5_large']:.0f} "
            "(paper: widths on the order of delta_avg/10, so the large-constraint "
            "run should use roughly 10x wider intervals)."
        ),
    )


def plan(
    small_constraint: float = 50.0 * KILO,
    large_constraint: float = 500.0 * KILO,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    sample_every: int = 60,
    seed: int = 3,
) -> ExperimentPlan:
    """Decompose into one sub-run per constraint setting."""
    subruns = tuple(
        SubRun(
            label=label,
            func=timeseries_subrun,
            kwargs=dict(
                label=label,
                constraint_average=constraint,
                host_count=host_count,
                duration=duration,
                sample_every=sample_every,
                seed=seed,
            ),
        )
        for label, constraint in (
            ("fig4_small", small_constraint),
            ("fig5_large", large_constraint),
        )
    )
    return ExperimentPlan(
        experiment_id="figure04_05",
        title="Source value and cached interval over time (small vs large constraints)",
        columns=("figure", "time", "exact value", "interval low", "interval high"),
        subruns=subruns,
        assemble=_assemble_timeseries,
    )


def run(
    small_constraint: float = 50.0 * KILO,
    large_constraint: float = 500.0 * KILO,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    sample_every: int = 60,
    seed: int = 3,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Produce downsampled (time, value, low, high) rows for both settings."""
    return run_plan(
        plan(
            small_constraint=small_constraint,
            large_constraint=large_constraint,
            host_count=host_count,
            duration=duration,
            sample_every=sample_every,
            seed=seed,
        ),
        workers=workers,
    )
