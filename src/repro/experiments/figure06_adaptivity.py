"""Figure 6: effect of the adaptivity parameter ``alpha``.

The paper sweeps ``alpha`` for twelve configurations — all combinations of
``rho in {1, 4}``, ``T_q in {0.5, 1, 6}`` and constraint ranges
``(delta_min, delta_max) in {(0, 100K), (50K, 150K)}`` — on the
network-monitoring trace with SUM queries and ``theta_0 = 0``,
``theta_1 = inf``.  The conclusion is that ``alpha = 1`` (double/halve) is a
good overall setting.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation

#: One (rho, T_q, (delta_min, delta_max)) cell of the adaptivity grid.
AdaptivityConfiguration = Tuple[float, float, Tuple[float, float]]

#: The twelve paper configurations: (rho, T_q, (delta_min, delta_max)).
PAPER_CONFIGURATIONS: Tuple[AdaptivityConfiguration, ...] = tuple(
    (cost_factor, query_period, bounds)
    for cost_factor in (1.0, 4.0)
    for query_period in (0.5, 1.0, 6.0)
    for bounds in ((0.0, 100.0 * KILO), (50.0 * KILO, 150.0 * KILO))
)

#: A reduced default grid keeping the benchmark suite fast while spanning the
#: same qualitative space (both cost factors, extreme query periods, both
#: constraint ranges).
DEFAULT_CONFIGURATIONS: Tuple[AdaptivityConfiguration, ...] = (
    (1.0, 0.5, (0.0, 100.0 * KILO)),
    (1.0, 6.0, (50.0 * KILO, 150.0 * KILO)),
    (4.0, 0.5, (50.0 * KILO, 150.0 * KILO)),
    (4.0, 6.0, (0.0, 100.0 * KILO)),
)

DEFAULT_ADAPTIVITIES: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)


def run(
    adaptivities: Sequence[float] = DEFAULT_ADAPTIVITIES,
    configurations: Sequence[AdaptivityConfiguration] = DEFAULT_CONFIGURATIONS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 5,
) -> ExperimentResult:
    """Sweep ``alpha`` for each configuration and report the cost rates."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    rows: List[Tuple] = []
    for cost_factor, query_period, bounds in configurations:
        for alpha in adaptivities:
            config = traffic_config(
                trace,
                query_period=query_period,
                constraint_bounds=bounds,
                cost_factor=cost_factor,
                seed=seed,
            )
            policy = adaptive_policy(
                cost_factor=cost_factor,
                adaptivity=alpha,
                lower_threshold=0.0,
                upper_threshold=math.inf,
                initial_width=KILO,
                seed=seed,
            )
            result = CacheSimulation(config, traffic_streams(trace), policy).run()
            rows.append(
                (
                    cost_factor,
                    query_period,
                    f"{bounds[0] / KILO:g}K-{bounds[1] / KILO:g}K",
                    alpha,
                    result.cost_rate,
                )
            )
    return ExperimentResult(
        experiment_id="figure06",
        title="Cost rate vs adaptivity parameter alpha (network trace, SUM queries)",
        columns=("rho", "T_q", "delta range", "alpha", "Omega"),
        rows=rows,
        notes=(
            "Paper conclusion: alpha = 1 is a good overall setting; cost rises "
            "for very small alpha (slow adaptation) and for very large alpha "
            "(over-shooting)."
        ),
    )
