"""Figures 7, 8, 9: performance of settings for the upper threshold ``theta_1``.

The paper plots the cost rate as a function of the average precision
constraint ``delta_avg`` for three settings of the upper threshold
(``theta_1 = theta_0`` — pure exact caching behaviour, ``theta_1 = 2K`` — a
small finite threshold, and ``theta_1 = inf``), at query periods
``T_q in {0.5, 1, 2}``, holding ``alpha = 1``, ``sigma = 0.5``,
``theta_0 = 1K`` and ``rho = 1``.  Expected shape: with ``theta_1 = theta_0``
the cost is flat in ``delta_avg`` (precision is never exploited); with
``theta_1 = inf`` the cost falls as constraints loosen; a small finite
``theta_1`` wins only for very tight constraints.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation

#: theta_0 = 1K per Section 4.4 ("differences in precision of 1K are not very
#: significant" for the traffic data).
LOWER_THRESHOLD = 1.0 * KILO

#: The three theta_1 settings compared in Figures 7-9.
UPPER_THRESHOLD_SETTINGS: Tuple[Tuple[str, float], ...] = (
    ("theta1=theta0", LOWER_THRESHOLD),
    ("theta1=2K", 2.0 * KILO),
    ("theta1=inf", math.inf),
)

DEFAULT_QUERY_PERIODS: Tuple[float, ...] = (0.5, 1.0, 2.0)
DEFAULT_CONSTRAINTS: Tuple[float, ...] = (
    0.0,
    10.0 * KILO,
    50.0 * KILO,
    100.0 * KILO,
    250.0 * KILO,
    500.0 * KILO,
)


def threshold_sweep_rows(
    query_period: float,
    label: str,
    upper_threshold: float,
    constraint_averages: Sequence[float],
    host_count: int,
    duration: int,
    seed: int,
) -> List[Tuple]:
    """Rows for one (T_q, theta_1) setting across the delta_avg sweep.

    Module-level (picklable) so the parallel runner can execute it in a
    worker process; everything is re-derived from the arguments and seed.
    """
    trace = traffic_trace(host_count=host_count, duration=duration)
    rows: List[Tuple] = []
    for constraint_average in constraint_averages:
        config = traffic_config(
            trace,
            query_period=query_period,
            constraint_average=constraint_average,
            constraint_variation=0.5,
            cost_factor=1.0,
            seed=seed,
        )
        policy = adaptive_policy(
            cost_factor=1.0,
            adaptivity=1.0,
            lower_threshold=LOWER_THRESHOLD,
            upper_threshold=upper_threshold,
            initial_width=KILO,
            seed=seed,
        )
        result = CacheSimulation(config, traffic_streams(trace), policy).run()
        rows.append((query_period, label, constraint_average / KILO, result.cost_rate))
    return rows


def plan(
    query_periods: Sequence[float] = DEFAULT_QUERY_PERIODS,
    constraint_averages: Sequence[float] = DEFAULT_CONSTRAINTS,
    upper_thresholds: Sequence[Tuple[str, float]] = UPPER_THRESHOLD_SETTINGS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 9,
) -> ExperimentPlan:
    """Decompose the sweep into one sub-run per (T_q, theta_1) setting."""
    subruns = tuple(
        SubRun(
            label=f"Tq={query_period:g}/{label}",
            func=threshold_sweep_rows,
            kwargs=dict(
                query_period=query_period,
                label=label,
                upper_threshold=upper_threshold,
                constraint_averages=tuple(constraint_averages),
                host_count=host_count,
                duration=duration,
                seed=seed,
            ),
        )
        for query_period in query_periods
        for label, upper_threshold in upper_thresholds
    )
    return ExperimentPlan(
        experiment_id="figure07_09",
        title="Cost rate vs delta_avg for three theta_1 settings (T_q = 0.5, 1, 2)",
        columns=("T_q", "theta_1", "delta_avg (K)", "Omega"),
        subruns=subruns,
        notes=(
            "Expected shape: theta1=theta0 is flat in delta_avg; theta1=inf "
            "improves as constraints loosen and is the best general setting; a "
            "small finite theta1 only helps very tight constraints."
        ),
    )


def run(
    query_periods: Sequence[float] = DEFAULT_QUERY_PERIODS,
    constraint_averages: Sequence[float] = DEFAULT_CONSTRAINTS,
    upper_thresholds: Sequence[Tuple[str, float]] = UPPER_THRESHOLD_SETTINGS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 9,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Measure the cost rate for every (T_q, theta_1, delta_avg) combination."""
    return run_plan(
        plan(
            query_periods=query_periods,
            constraint_averages=constraint_averages,
            upper_thresholds=upper_thresholds,
            host_count=host_count,
            duration=duration,
            seed=seed,
        ),
        workers=workers,
    )
