"""Figures 10-13: comparison against WJH97 adaptive exact caching.

For SUM queries at query periods ``T_q in {0.5, 1, 2, 5}``, the paper
compares:

* the WJH97 exact caching baseline (its window ``x`` tuned per run),
* the adaptive algorithm restricted to exact caching (``theta_1 = theta_0``),
  which should match the baseline, and
* the full adaptive algorithm (``theta_1 = inf``) under average precision
  constraints ``delta_avg in {0, 100K, 500K}``, which should beat exact
  caching whenever imprecision is allowed.

Figures 10/11 use a cache large enough for every value (``kappa = n``) with
``rho = 1`` and ``rho = 4``; Figures 12/13 repeat the comparison with a small
cache (``kappa = 20`` of 50 in the paper — scaled proportionally here).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    best_exact_caching_result,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation

LOWER_THRESHOLD = 1.0 * KILO
DEFAULT_QUERY_PERIODS: Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0)
DEFAULT_CONSTRAINTS: Tuple[float, ...] = (0.0, 100.0 * KILO, 500.0 * KILO)
DEFAULT_EXACT_WINDOWS: Tuple[int, ...] = (5, 10, 20, 40)


def _figure_id(cost_factor: float, small_cache: bool) -> str:
    if not small_cache:
        return "figure10" if cost_factor == 1.0 else "figure11"
    return "figure12" if cost_factor == 1.0 else "figure13"


def run_comparison(
    cost_factor: float,
    cache_capacity: Optional[int],
    query_periods: Sequence[float] = DEFAULT_QUERY_PERIODS,
    constraint_averages: Sequence[float] = DEFAULT_CONSTRAINTS,
    exact_windows: Sequence[int] = DEFAULT_EXACT_WINDOWS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 13,
) -> List[Tuple]:
    """Produce the rows of one figure (one cost factor / cache size)."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    small_cache = cache_capacity is not None and cache_capacity < host_count
    figure = _figure_id(cost_factor, small_cache)
    rows: List[Tuple] = []
    for query_period in query_periods:
        base_config = traffic_config(
            trace,
            query_period=query_period,
            constraint_average=0.0,
            constraint_variation=1.0,
            cost_factor=cost_factor,
            cache_capacity=cache_capacity,
            seed=seed,
        )
        exact = best_exact_caching_result(
            base_config,
            stream_factory=lambda: traffic_streams(trace),
            cost_factor=cost_factor,
            windows=exact_windows,
        )
        rows.append(
            (figure, query_period, "exact caching (WJH97)", 0.0, exact.cost_rate)
        )

        subsumption_policy = adaptive_policy(
            cost_factor=cost_factor,
            adaptivity=1.0,
            lower_threshold=LOWER_THRESHOLD,
            upper_threshold=LOWER_THRESHOLD,
            initial_width=KILO,
            seed=seed,
        )
        subsumption = CacheSimulation(
            base_config, traffic_streams(trace), subsumption_policy
        ).run()
        rows.append(
            (
                figure,
                query_period,
                "adaptive, theta1=theta0",
                0.0,
                subsumption.cost_rate,
            )
        )

        for constraint_average in constraint_averages:
            config = traffic_config(
                trace,
                query_period=query_period,
                constraint_average=constraint_average,
                constraint_variation=1.0,
                cost_factor=cost_factor,
                cache_capacity=cache_capacity,
                seed=seed,
            )
            policy = adaptive_policy(
                cost_factor=cost_factor,
                adaptivity=1.0,
                lower_threshold=LOWER_THRESHOLD,
                upper_threshold=math.inf,
                initial_width=KILO,
                seed=seed,
            )
            result = CacheSimulation(config, traffic_streams(trace), policy).run()
            rows.append(
                (
                    figure,
                    query_period,
                    "adaptive, theta1=inf",
                    constraint_average / KILO,
                    result.cost_rate,
                )
            )
    return rows


def comparison_subrun(
    cost_factor: float,
    cache_capacity: Optional[int],
    query_period: float,
    host_count: int,
    duration: int,
    seed: int,
) -> List[Tuple]:
    """Rows of one (cache size, cost factor, T_q) comparison cell.

    Module-level (picklable) wrapper over :func:`run_comparison` restricted
    to a single query period, for the parallel runner.
    """
    return run_comparison(
        cost_factor=cost_factor,
        cache_capacity=cache_capacity,
        query_periods=(query_period,),
        host_count=host_count,
        duration=duration,
        seed=seed,
    )


def plan(
    query_periods: Sequence[float] = (0.5, 2.0, 5.0),
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    include_small_cache: bool = True,
    seed: int = 13,
) -> ExperimentPlan:
    """Decompose into one sub-run per (cache size, cost factor, T_q) cell."""
    small_capacity = max(host_count * 2 // 5, 2)
    cache_settings: List[Optional[int]] = [None]
    if include_small_cache:
        cache_settings.append(small_capacity)
    subruns = tuple(
        SubRun(
            label=f"kappa={cache_capacity}/rho={cost_factor:g}/Tq={query_period:g}",
            func=comparison_subrun,
            kwargs=dict(
                cost_factor=cost_factor,
                cache_capacity=cache_capacity,
                query_period=query_period,
                host_count=host_count,
                duration=duration,
                seed=seed,
            ),
        )
        for cache_capacity in cache_settings
        for cost_factor in (1.0, 4.0)
        for query_period in query_periods
    )
    return ExperimentPlan(
        experiment_id="figure10_13",
        title="Adaptive precision setting vs WJH97 exact caching",
        columns=("figure", "T_q", "policy", "delta_avg (K)", "Omega"),
        subruns=subruns,
        notes=(
            "Expected shape: 'adaptive, theta1=theta0' tracks 'exact caching'; "
            "'adaptive, theta1=inf' beats exact caching when delta_avg > 0, with "
            "the advantage shrinking for the small cache (wide intervals get "
            "evicted)."
        ),
    )


def run(
    query_periods: Sequence[float] = (0.5, 2.0, 5.0),
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    include_small_cache: bool = True,
    seed: int = 13,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Produce all four figures' rows (with a reduced default grid)."""
    return run_plan(
        plan(
            query_periods=query_periods,
            host_count=host_count,
            duration=duration,
            include_small_cache=include_small_cache,
            seed=seed,
        ),
        workers=workers,
    )
