"""Figures 14 and 15: comparison against Divergence Caching (HSW94).

In this setting the approximations are *stale values*: precision is the
number of source updates not yet reflected in the cached copy, independent of
the update magnitudes.  Both competitors are exercised over the same
workload:

* **Divergence Caching** — the HSW94 baseline, which re-projects the optimal
  staleness allowance from moving windows (size ``k = 23``) of recent reads
  and writes at every refresh.
* **Our algorithm, specialised** — the adaptive controller applied to the
  update counter with one-sided intervals and the stale-value cost factor
  ``rho' = C_vr / C_qr`` (the paper's Section 4.7 adjustment).

The workload follows the paper: ``C_vr = 1``, ``C_qr = 2`` (so
``rho' = 0.5``), query periods ``T_q in {1, 5}``, and the average staleness
constraint ``delta_avg`` swept from 0 to 14 with ``sigma = 1``.  The expected
shape is a modest win for the adaptive algorithm across the sweep.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.caching.policies.adaptive import AdaptivePrecisionPolicy
from repro.caching.policies.divergence import DivergenceCachingPolicy
from repro.core.parameters import PrecisionParameters
from repro.data.streams import CounterStream, UpdateStream
from repro.experiments.base import ExperimentResult
from repro.intervals.placement import OneSidedPlacement
from repro.queries.aggregates import AggregateKind
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CacheSimulation

DEFAULT_SOURCE_COUNT = 10
DEFAULT_DURATION = 2000.0
DEFAULT_QUERY_PERIODS: Tuple[float, ...] = (1.0, 5.0)
DEFAULT_CONSTRAINTS: Tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0)

VALUE_REFRESH_COST = 1.0
QUERY_REFRESH_COST = 2.0


def _counter_streams(
    count: int, duration: float, seed: int
) -> Dict[Hashable, UpdateStream]:
    """Build sources whose values are update counters (Poisson update arrivals)."""
    streams: Dict[Hashable, UpdateStream] = {}
    for index in range(count):
        streams[f"item-{index}"] = CounterStream(
            mean_interval=1.0,
            poisson=True,
            rng=random.Random(seed * 100 + index),
        )
    return streams


def _config(
    duration: float, query_period: float, constraint_average: float, seed: int
) -> SimulationConfig:
    return SimulationConfig(
        duration=duration,
        warmup=duration * 0.2,
        query_period=query_period,
        query_size=1,
        aggregates=(AggregateKind.SUM,),
        constraint_average=constraint_average,
        constraint_variation=1.0,
        value_refresh_cost=VALUE_REFRESH_COST,
        query_refresh_cost=QUERY_REFRESH_COST,
        seed=seed,
    )


def adaptive_staleness_policy(
    constraint_average: float, seed: int
) -> AdaptivePrecisionPolicy:
    """The paper's algorithm specialised to stale-value approximations.

    Uses one-sided intervals over the update counter, the stale-value cost
    factor ``rho' = C_vr / C_qr``, ``theta_0 = 1`` (one update is the smallest
    meaningful staleness), and ``theta_1 = theta_0`` for exact workloads /
    ``inf`` otherwise, mirroring the parameter guidance of Section 4.7.
    """
    upper_threshold = 1.0 if constraint_average == 0 else math.inf
    parameters = PrecisionParameters(
        value_refresh_cost=VALUE_REFRESH_COST,
        query_refresh_cost=QUERY_REFRESH_COST,
        adaptivity=1.0,
        lower_threshold=1.0,
        upper_threshold=upper_threshold,
        cost_factor_multiplier=1.0,
    )
    return AdaptivePrecisionPolicy(
        parameters,
        initial_width=1.0,
        placement=OneSidedPlacement(),
        rng=random.Random(seed),
    )


def divergence_policy() -> DivergenceCachingPolicy:
    """The HSW94 baseline with the paper's window size ``k = 23``."""
    return DivergenceCachingPolicy(
        value_refresh_cost=VALUE_REFRESH_COST,
        query_refresh_cost=QUERY_REFRESH_COST,
        window_size=23,
    )


def run(
    query_periods: Sequence[float] = DEFAULT_QUERY_PERIODS,
    constraint_averages: Sequence[float] = DEFAULT_CONSTRAINTS,
    source_count: int = DEFAULT_SOURCE_COUNT,
    duration: float = DEFAULT_DURATION,
    seed: int = 17,
) -> ExperimentResult:
    """Measure both policies' cost rates across the staleness-constraint sweep."""
    rows: List[Tuple] = []
    for query_period in query_periods:
        figure = "figure14" if query_period == 1.0 else "figure15"
        for constraint_average in constraint_averages:
            config = _config(duration, query_period, constraint_average, seed)
            ours = CacheSimulation(
                config,
                _counter_streams(source_count, duration, seed),
                adaptive_staleness_policy(constraint_average, seed),
            ).run()
            theirs = CacheSimulation(
                config,
                _counter_streams(source_count, duration, seed),
                divergence_policy(),
            ).run()
            rows.append(
                (
                    figure,
                    query_period,
                    constraint_average,
                    ours.cost_rate,
                    theirs.cost_rate,
                )
            )
    return ExperimentResult(
        experiment_id="figure14_15",
        title="Adaptive staleness setting vs Divergence Caching (stale-value mode)",
        columns=(
            "figure",
            "T_q",
            "delta_avg (updates)",
            "Omega (ours)",
            "Omega (divergence)",
        ),
        rows=rows,
        notes=(
            "Expected shape: both costs fall as the staleness constraint loosens; "
            "the adaptive algorithm shows a modest improvement over Divergence "
            "Caching across the sweep (paper Figures 14 and 15)."
        ),
    )
