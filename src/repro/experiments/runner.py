"""Process-pool experiment runner.

The multi-configuration experiments are embarrassingly parallel: every
(parameter combination) is an independent simulation whose randomness is
fully determined by explicit seeds.  Each such experiment declares an
:class:`ExperimentPlan` — an ordered tuple of :class:`SubRun` descriptors,
each naming a module-level function and its keyword arguments — and
:func:`run_plan` executes the sub-runs either sequentially or fanned out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Because a sub-run re-derives everything it needs (trace, streams, policy)
from its keyword arguments and seeds, executing it in a worker process
produces exactly the rows the sequential path produces; ``run_plan``
reassembles results in plan order, so the final table is identical for any
worker count.

Usage::

    from repro.experiments import figure07_09_thresholds
    result = run_plan(figure07_09_thresholds.plan(), workers=4)

or through the CLI: ``python -m repro.cli run figure07_09 --workers 4``.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.base import ExperimentResult


@dataclass(frozen=True)
class SubRun:
    """One independent unit of an experiment.

    Parameters
    ----------
    label:
        Human-readable identifier, unique within the plan (used in errors
        and progress reporting).
    func:
        A **module-level** callable (it must be picklable for the process
        pool) returning this sub-run's result — usually a list of rows.
    kwargs:
        Keyword arguments passed to ``func``; they must be picklable and
        carry every seed the sub-run needs, so the result is deterministic
        regardless of which process executes it.
    """

    label: str
    func: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentPlan:
    """An experiment decomposed into independent, deterministic sub-runs.

    ``assemble`` (optional, runs in the parent process) turns the ordered
    list of sub-run results into the final :class:`ExperimentResult`; when
    omitted, sub-run results are assumed to be row lists and are
    concatenated in plan order.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    subruns: Tuple[SubRun, ...]
    notes: str = ""
    assemble: Optional[Callable[[List[Any]], ExperimentResult]] = None

    def __post_init__(self) -> None:
        labels = [subrun.label for subrun in self.subruns]
        if len(set(labels)) != len(labels):
            raise ValueError("sub-run labels must be unique within a plan")


def execute_subrun(subrun: SubRun) -> Any:
    """Execute one sub-run in the current process."""
    return subrun.func(**subrun.kwargs)


def execute_chunk(subruns: Sequence[SubRun]) -> List[Any]:
    """Execute a deterministic batch of sub-runs in the current process.

    The chunked submission path of :func:`run_plan` ships one of these per
    pool task: large sweeps amortise the per-task submission/pickling
    overhead over ``chunk_size`` sub-runs while each sub-run stays exactly
    as deterministic as when submitted individually.
    """
    return [subrun.func(**subrun.kwargs) for subrun in subruns]


def _assemble(plan: ExperimentPlan, results: List[Any]) -> ExperimentResult:
    if plan.assemble is not None:
        return plan.assemble(results)
    rows: List[Tuple] = []
    for result in results:
        rows.extend(result)
    return ExperimentResult(
        experiment_id=plan.experiment_id,
        title=plan.title,
        columns=plan.columns,
        rows=rows,
        notes=plan.notes,
    )


def run_plan(
    plan: ExperimentPlan,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> ExperimentResult:
    """Execute a plan's sub-runs and assemble the experiment result.

    Parameters
    ----------
    plan:
        The experiment decomposition to execute.
    workers:
        ``None``, ``0`` or ``1`` runs sequentially in-process; larger values
        fan the sub-runs out over that many worker processes.  The assembled
        result is identical either way (sub-runs are deterministic and
        results are reassembled in plan order).
    chunk_size:
        Optional batch size for pool submission: sub-runs are grouped into
        deterministic, plan-ordered chunks of this size and each chunk is
        one pool task (:func:`execute_chunk`), so paper-scale sweeps pay the
        submission overhead once per chunk instead of once per sub-run.
        Results are flattened back into plan order, preserving the
        identical-rows guarantee for any ``(workers, chunk_size)``
        combination.  ``None`` (the default) submits sub-runs individually.
    """
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if not plan.subruns:
        return _assemble(plan, [])
    if workers is None or workers <= 1:
        results = [execute_subrun(subrun) for subrun in plan.subruns]
        return _assemble(plan, results)
    if chunk_size is not None and chunk_size > 1:
        chunks = [
            plan.subruns[start : start + chunk_size]
            for start in range(0, len(plan.subruns), chunk_size)
        ]
        max_workers = min(workers, len(chunks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(execute_chunk, chunk) for chunk in chunks]
            results = [result for future in futures for result in future.result()]
        return _assemble(plan, results)
    max_workers = min(workers, len(plan.subruns))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(subrun.func, **subrun.kwargs) for subrun in plan.subruns]
        results = [future.result() for future in futures]
    return _assemble(plan, results)


def _worker_entry(target, parent_end, worker_end, args):
    """Child-side entry: drop the inherited parent pipe end, run the target.

    Under the fork start method the child inherits the parent's endpoint of
    its own pipe; without closing it here, the parent's
    ``close_connection()`` could never deliver EOF to a worker blocked on
    ``recv`` — its own inherited copy would keep the pipe alive.
    """
    parent_end.close()
    target(worker_end, *args)


class WorkerHandle:
    """One supervised worker process plus its parent pipe endpoint.

    The handle owns the process lifecycle: ``start`` spawns the target as
    ``target(connection, *args)``, ``restart`` replaces a dead or wedged
    worker with a fresh process running the same target (the caller is
    responsible for resyncing its state — see
    :func:`repro.sharding.workers.run_concurrent_shards`), and ``stop``
    escalates ``join(grace)`` → ``terminate()`` → ``kill()`` so no worker
    can outlive its pool.  ``force_stopped`` records the harshest measure
    that was needed (``"terminated"`` or ``"killed"``), for reporting.
    """

    def __init__(
        self,
        index: int,
        target: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.index = index
        self.target = target
        self.args = args
        self.process: Optional[multiprocessing.Process] = None
        self.connection: Optional[Any] = None
        self.restarts = 0
        self.force_stopped: Optional[str] = None

    def start(self) -> None:
        """Spawn the worker process and wire up the duplex pipe."""
        parent_end, worker_end = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_worker_entry,
            args=(self.target, parent_end, worker_end, self.args),
            daemon=True,
        )
        process.start()
        worker_end.close()
        self.process = process
        self.connection = parent_end

    def restart(self, grace: float = 5.0) -> None:
        """Replace the worker with a fresh process (same target and args)."""
        self.close_connection()
        self.stop(grace=grace)
        self.restarts += 1
        self.start()

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, payload: Any) -> None:
        if self.connection is None:
            raise BrokenPipeError("worker connection is closed")
        self.connection.send(payload)

    def recv(self) -> Any:
        if self.connection is None:
            raise EOFError("worker connection is closed")
        return self.connection.recv()

    def close_connection(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None

    def stop(self, grace: float = 5.0) -> Optional[str]:
        """Stop the process, escalating join → terminate → kill.

        Returns the escalation that was needed (``None`` for a clean join)
        and records it in ``force_stopped``.  Safe to call on an already
        dead or never-started worker.
        """
        process = self.process
        if process is None:
            return None
        escalation: Optional[str] = None
        process.join(timeout=grace)
        if process.is_alive():
            process.terminate()
            process.join(timeout=grace)
            escalation = "terminated"
        if process.is_alive():  # pragma: no cover - SIGTERM-immune worker
            process.kill()
            process.join(timeout=grace)
            escalation = "killed"
        if escalation is not None:
            self.force_stopped = escalation
        self.process = None
        return escalation


@contextmanager
def persistent_worker_pool(
    targets: Sequence[Tuple[Callable[..., None], Tuple[Any, ...]]],
    grace: float = 5.0,
) -> Iterator[List[WorkerHandle]]:
    """Spawn long-lived worker processes connected by duplex pipes.

    The :class:`ProcessPoolExecutor` path above fits one-shot, independent
    sub-runs; workloads that must exchange state mid-run (the concurrent
    shard workers of :mod:`repro.sharding.workers`, which synchronise at
    every query tick) need persistent processes with a message channel
    instead.  Each ``(target, args)`` pair is started as one
    :class:`WorkerHandle`; the parent talks through ``handle.send`` /
    ``handle.recv`` and may ``handle.restart()`` a worker that died.

    On exit the parent endpoints are closed first (workers blocked on
    ``recv`` see EOF instead of hanging), then every worker is stopped
    with the full join → terminate → kill escalation; workers that needed
    force are reported in one :class:`RuntimeWarning` — a worker that
    ignores even SIGTERM cannot leak past the pool.
    """
    handles: List[WorkerHandle] = [
        WorkerHandle(index, target, args) for index, (target, args) in enumerate(targets)
    ]
    try:
        for handle in handles:
            handle.start()
        yield handles
    finally:
        for handle in handles:
            handle.close_connection()
        for handle in handles:
            handle.stop(grace=grace)
        forced = [
            f"worker {handle.index} ({handle.force_stopped})"
            for handle in handles
            if handle.force_stopped
        ]
        if forced:
            warnings.warn(
                "persistent_worker_pool force-stopped: " + ", ".join(forced),
                RuntimeWarning,
                stacklevel=2,
            )


def plan_registry() -> Dict[str, Callable[[], ExperimentPlan]]:
    """Return the experiments that declare parallelisable plans.

    Keys match :func:`repro.experiments.base.registry` ids; values are
    zero-argument factories producing the default-scale plan.  Experiments
    absent here (single-simulation reproductions) only run sequentially.
    """
    from repro.experiments import (
        ablations,
        figure04_05_timeseries,
        figure07_09_thresholds,
        figure10_13_exact,
        section44_sensitivity,
        section45_variations,
        sharded_scaling,
    )

    return {
        "figure04_05": figure04_05_timeseries.plan,
        "figure07_09": figure07_09_thresholds.plan,
        "figure10_13": figure10_13_exact.plan,
        "section44": section44_sensitivity.plan,
        "section45": section45_variations.plan,
        "sharded_scaling": sharded_scaling.plan,
        "ablations": ablations.plan,
    }
