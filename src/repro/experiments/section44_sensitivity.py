"""Section 4.4 sensitivity claims: the lower threshold and constraint spread.

Two textual claims from Section 4.4 are reproduced:

1. **Lower threshold** — with ``theta_0 = 1K`` (a small positive constant)
   the performance of workloads with moderate precision constraints degrades
   by well under a few percent relative to ``theta_0 = 0``, while workloads
   demanding exact answers (``delta_avg = 0``) need ``theta_0 > 0`` at all to
   benefit from caching.
2. **Constraint variation** — widening the spread of precision constraints
   (``sigma`` from 0 to 1) degrades performance only slightly (the paper
   reports 1.9% at ``delta_avg = 100K``, 5.5% at 10K, <1% at 5K).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    DEFAULT_HOST_COUNT,
    DEFAULT_TRACE_DURATION,
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation


def lower_threshold_rows(
    lower_threshold: float,
    constraint_bounds: Tuple[float, float],
    host_count: int,
    duration: int,
    seed: int,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> List[Tuple]:
    """The row for one ``theta_0`` setting (picklable sub-run unit)."""
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_bounds=constraint_bounds,
        cost_factor=1.0,
        seed=seed,
        shards=shards,
        engine=engine,
        shard_workers=shard_workers,
        exchange_window=exchange_window,
        kernel=kernel,
    )
    policy = adaptive_policy(
        cost_factor=1.0,
        adaptivity=1.0,
        lower_threshold=lower_threshold,
        upper_threshold=math.inf,
        initial_width=KILO,
        seed=seed,
    )
    result = CacheSimulation(config, traffic_streams(trace), policy).run()
    return [("theta0_study", lower_threshold / KILO, "", result.cost_rate)]


def run_lower_threshold_study(
    constraint_bounds: Tuple[float, float] = (5.0 * KILO, 15.0 * KILO),
    lower_thresholds: Sequence[float] = (0.0, 1.0 * KILO, 5.0 * KILO),
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 21,
) -> List[Tuple]:
    """Cost rate as a function of ``theta_0`` for a moderate-constraint workload."""
    rows: List[Tuple] = []
    for lower_threshold in lower_thresholds:
        rows.extend(
            lower_threshold_rows(
                lower_threshold=lower_threshold,
                constraint_bounds=constraint_bounds,
                host_count=host_count,
                duration=duration,
                seed=seed,
            )
        )
    return rows


def constraint_variation_rows(
    constraint_average: float,
    variation: float,
    host_count: int,
    duration: int,
    seed: int,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> List[Tuple]:
    """The row for one (delta_avg, sigma) cell (picklable sub-run unit)."""
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_average=constraint_average,
        constraint_variation=variation,
        cost_factor=1.0,
        seed=seed,
        shards=shards,
        engine=engine,
        shard_workers=shard_workers,
        exchange_window=exchange_window,
        kernel=kernel,
    )
    policy = adaptive_policy(
        cost_factor=1.0,
        adaptivity=1.0,
        lower_threshold=1.0 * KILO,
        upper_threshold=math.inf,
        initial_width=KILO,
        seed=seed,
    )
    result = CacheSimulation(config, traffic_streams(trace), policy).run()
    return [("sigma_study", constraint_average / KILO, variation, result.cost_rate)]


def run_constraint_variation_study(
    constraint_averages: Sequence[float] = (5.0 * KILO, 10.0 * KILO, 100.0 * KILO),
    variations: Sequence[float] = (0.0, 1.0),
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 21,
) -> List[Tuple]:
    """Cost rate as the constraint spread ``sigma`` widens, per ``delta_avg``."""
    rows: List[Tuple] = []
    for constraint_average in constraint_averages:
        for variation in variations:
            rows.extend(
                constraint_variation_rows(
                    constraint_average=constraint_average,
                    variation=variation,
                    host_count=host_count,
                    duration=duration,
                    seed=seed,
                )
            )
    return rows


DEFAULT_LOWER_THRESHOLDS: Tuple[float, ...] = (0.0, 1.0 * KILO, 5.0 * KILO)
DEFAULT_CONSTRAINT_BOUNDS: Tuple[float, float] = (5.0 * KILO, 15.0 * KILO)
DEFAULT_CONSTRAINT_AVERAGES: Tuple[float, ...] = (5.0 * KILO, 10.0 * KILO, 100.0 * KILO)
DEFAULT_VARIATIONS: Tuple[float, ...] = (0.0, 1.0)


def plan(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 21,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentPlan:
    """Decompose both studies into one sub-run per parameter cell."""
    subruns = [
        SubRun(
            label=f"theta0={lower_threshold / KILO:g}K",
            func=lower_threshold_rows,
            kwargs=dict(
                lower_threshold=lower_threshold,
                constraint_bounds=DEFAULT_CONSTRAINT_BOUNDS,
                host_count=host_count,
                duration=duration,
                seed=seed,
                shards=shards,
                engine=engine,
                shard_workers=shard_workers,
                exchange_window=exchange_window,
                kernel=kernel,
            ),
        )
        for lower_threshold in DEFAULT_LOWER_THRESHOLDS
    ]
    subruns.extend(
        SubRun(
            label=f"sigma={variation:g}/delta={constraint_average / KILO:g}K",
            func=constraint_variation_rows,
            kwargs=dict(
                constraint_average=constraint_average,
                variation=variation,
                host_count=host_count,
                duration=duration,
                seed=seed,
                shards=shards,
                engine=engine,
                shard_workers=shard_workers,
                exchange_window=exchange_window,
                kernel=kernel,
            ),
        )
        for constraint_average in DEFAULT_CONSTRAINT_AVERAGES
        for variation in DEFAULT_VARIATIONS
    )
    return ExperimentPlan(
        experiment_id="section44",
        title="Section 4.4 sensitivity: lower threshold theta_0 and constraint spread sigma",
        columns=("study", "theta_0 (K) / delta_avg (K)", "sigma", "Omega"),
        subruns=tuple(subruns),
        notes=(
            "Expected: a small positive theta_0 (1K) costs only a few percent for "
            "moderate constraints; widening sigma from 0 to 1 degrades performance "
            "by only a few percent."
        ),
    )


def run(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 21,
    workers: Optional[int] = None,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentResult:
    """Produce both Section 4.4 sensitivity studies."""
    return run_plan(
        plan(
            host_count=host_count,
            duration=duration,
            seed=seed,
            shards=shards,
            engine=engine,
            shard_workers=shard_workers,
            exchange_window=exchange_window,
            kernel=kernel,
        ),
        workers=workers,
    )
