"""Section 4.5: the unsuccessful variations.

Three intuitive variations of the algorithm are compared against the standard
centred, constant-interval, memoryless controller:

* uncentered intervals (independently adapted upper/lower widths),
* history-window adjustment (grow/shrink by majority of the last ``r``
  refreshes), and
* (for the time-varying case) the
  :class:`~repro.core.variations.TimeVaryingWidthController`, exercised by the
  unit tests; in the simulation comparison we represent it through the
  uncentered/history policies since the paper's conclusion is the same for
  all three: none beats the standard algorithm on unbiased data, and only
  biased (trending) data benefits from asymmetry.

The experiment runs on unbiased and biased random walks, reproducing the
paper's conclusion that the variations only help when the data predictably
trends.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.caching.policies.adaptive import (
    AdaptivePrecisionPolicy,
    UncenteredAdaptivePolicy,
)
from repro.core.parameters import PrecisionParameters
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import random_walk_streams
from repro.queries.aggregates import AggregateKind
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CacheSimulation

DEFAULT_DURATION = 3000.0
DEFAULT_SOURCE_COUNT = 5


def _config(
    duration: float,
    seed: int,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> SimulationConfig:
    return SimulationConfig(
        duration=duration,
        warmup=duration * 0.1,
        query_period=2.0,
        query_size=min(DEFAULT_SOURCE_COUNT, 5),
        aggregates=(AggregateKind.SUM,),
        constraint_average=40.0,
        constraint_variation=1.0,
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        seed=seed,
        shards=shards,
        shard_workers=shard_workers,
        exchange_window=exchange_window,
        engine=engine,
        kernel=kernel,
    )


def _parameters() -> PrecisionParameters:
    return PrecisionParameters(
        value_refresh_cost=1.0,
        query_refresh_cost=2.0,
        adaptivity=1.0,
        lower_threshold=0.0,
        upper_threshold=math.inf,
    )


def variation_rows(
    up_probability: float,
    variant: str,
    duration: float,
    source_count: int,
    seed: int,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> List[Tuple]:
    """The row for one (walk bias, placement variant) cell (picklable).

    The cache is unbounded here, so any ``shards`` count must produce the
    same rows — the CI sharded-smoke job relies on exactly that.  ``engine``
    selects the stream engine generating the walks (``reference`` reproduces
    the committed table byte-for-byte).  ``shard_workers`` > 1 runs a
    sharded cell's shards concurrently in worker processes (exact here:
    rho = 1, so the policy decomposes — see :mod:`repro.sharding.workers`);
    ``kernel`` picks the event-execution strategy.
    """
    walk_kind = "unbiased walk" if up_probability == 0.5 else "biased walk"
    config = _config(
        duration,
        seed,
        shards=shards,
        engine=engine,
        shard_workers=shard_workers,
        exchange_window=exchange_window,
        kernel=kernel,
    )
    if variant == "centred":
        policy = AdaptivePrecisionPolicy(
            _parameters(), initial_width=4.0, rng=random.Random(seed)
        )
        variant_label = "centred (paper default)"
    elif variant == "uncentered":
        policy = UncenteredAdaptivePolicy(
            _parameters(), initial_width=4.0, rng=random.Random(seed)
        )
        variant_label = "uncentered (Section 4.5)"
    else:
        raise ValueError(f"unknown variant {variant!r}")
    result = CacheSimulation(
        config,
        random_walk_streams(
            source_count, seed, up_probability=up_probability, engine=engine
        ),
        policy,
    ).run()
    return [(walk_kind, variant_label, result.cost_rate)]


def plan(
    duration: float = DEFAULT_DURATION,
    source_count: int = DEFAULT_SOURCE_COUNT,
    up_probabilities: Sequence[float] = (0.5, 0.8),
    seed: int = 23,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentPlan:
    """Decompose into one sub-run per (walk bias, placement variant) cell."""
    subruns = tuple(
        SubRun(
            label=f"p_up={up_probability:g}/{variant}",
            func=variation_rows,
            kwargs=dict(
                up_probability=up_probability,
                variant=variant,
                duration=duration,
                source_count=source_count,
                seed=seed,
                shards=shards,
                engine=engine,
                shard_workers=shard_workers,
                exchange_window=exchange_window,
                kernel=kernel,
            ),
        )
        for up_probability in up_probabilities
        for variant in ("centred", "uncentered")
    )
    return ExperimentPlan(
        experiment_id="section45",
        title="Unsuccessful variations: centred vs uncentered intervals",
        columns=("data", "variant", "Omega"),
        subruns=subruns,
        notes=(
            "Expected: on the unbiased walk the centred strategy is at least as "
            "good as the uncentered one; on the strongly biased walk the "
            "uncentered strategy can win slightly (the one case the paper reports "
            "it helping)."
        ),
    )


def run(
    duration: float = DEFAULT_DURATION,
    source_count: int = DEFAULT_SOURCE_COUNT,
    up_probabilities: Sequence[float] = (0.5, 0.8),
    seed: int = 23,
    workers: Optional[int] = None,
    shards: int = 1,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentResult:
    """Compare centred vs uncentered placement on unbiased and biased walks."""
    return run_plan(
        plan(
            duration=duration,
            source_count=source_count,
            up_probabilities=up_probabilities,
            seed=seed,
            shards=shards,
            engine=engine,
            shard_workers=shard_workers,
            exchange_window=exchange_window,
            kernel=kernel,
        ),
        workers=workers,
    )


