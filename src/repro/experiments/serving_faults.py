"""Chaos sweep: the serving stack's containment guarantee under faults.

Not a paper reproduction — this experiment characterises the fault-tolerant
serving fabric (:mod:`repro.serving.faults`) the production-scale roadmap
adds on top of the reproduced algorithm.  Each row replays the
deterministic trace replay under one seeded :class:`FaultPlan`, from the
zero plan (which must stay bit-identical to the offline simulator) through
escalating drop/truncate rates and feeder kill/outage schedules, and
records what the paper's approximate-caching contract promises even then:

* ``violations`` — answers whose returned interval excluded the true
  aggregate.  **This column must be zero in every row**: faults may widen
  answers, they may never make them wrong.
* ``degraded`` — answers served from the mirror with a widened bound while
  the owning feeder was down (tagged ``degraded: true`` on the wire);
* ``drops`` / ``truncs`` — injected connection drops and truncated frames;
* ``reconnects`` / ``retries`` — feeder reconnect-and-resync cycles and
  client retry attempts the fabric absorbed;
* ``v_refresh`` / ``q_refresh`` / ``hit_rate`` — the replay's behaviour,
  which for the zero plan equals the offline run's exactly.

Every fault schedule is derived from the plan's seed alone, so the rows are
deterministic per seed — same table on every host, replayable one row at a
time with ``repro loadgen --fault-plan``.
"""

from __future__ import annotations

import asyncio
from typing import Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.workloads import (
    serving_config,
    serving_policy,
    traffic_trace,
)
from repro.serving.faults import FaultPlan
from repro.serving.loadgen import replay_trace_deterministic
from repro.serving.server import CacheServer

DEFAULT_HOST_COUNT = 25
DEFAULT_DURATION = 300

#: The swept chaos schedules: a zero-plan control row, then escalating
#: frame faults, then feeder kill/outage schedules, then everything at once.
DEFAULT_PLANS: Tuple[FaultPlan, ...] = (
    FaultPlan(seed=11),
    FaultPlan(seed=11, drop_rate=0.02, truncate_rate=0.01),
    FaultPlan(seed=11, drop_rate=0.08, truncate_rate=0.04),
    FaultPlan(seed=11, kill_every=25, outage_queries=0),
    FaultPlan(seed=11, kill_every=25, outage_queries=4),
    FaultPlan(
        seed=11,
        drop_rate=0.05,
        truncate_rate=0.02,
        kill_every=20,
        outage_queries=3,
    ),
)


def chaos_row(
    plan: FaultPlan,
    host_count: int,
    duration: int,
    seed: int,
    engine: str = "reference",
) -> Tuple:
    """Replay the deterministic trace under one fault plan, audited."""
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    config = serving_config(trace, seed=seed, engine=engine)

    async def drive():
        server = CacheServer(
            serving_policy(cost_factor=1.0, seed=seed),
            value_refresh_cost=config.value_refresh_cost,
            query_refresh_cost=config.query_refresh_cost,
        )
        try:
            return await replay_trace_deterministic(
                server,
                trace,
                config,
                fault_plan=plan,
                check_invariant=True,
            )
        finally:
            await server.close()

    report = asyncio.run(drive())
    return (
        plan.describe(),
        report.invariant_violations,
        report.degraded_answers,
        report.faults_injected.get("drops", 0),
        report.faults_injected.get("truncations", 0),
        report.reconnects,
        report.retries,
        report.value_refreshes,
        report.query_refreshes,
        report.hit_rate,
    )


def run(
    plans: Sequence[FaultPlan] = DEFAULT_PLANS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_DURATION,
    seed: int = 5,
    engine: str = "reference",
) -> ExperimentResult:
    """Sweep fault plans over the audited deterministic replay."""
    rows = [
        chaos_row(
            plan,
            host_count=host_count,
            duration=duration,
            seed=seed,
            engine=engine,
        )
        for plan in plans
    ]
    return ExperimentResult(
        experiment_id="serving_faults",
        title="Serving fabric under deterministic fault injection",
        columns=(
            "plan",
            "violations",
            "degraded",
            "drops",
            "truncs",
            "reconnects",
            "retries",
            "v_refresh",
            "q_refresh",
            "hit_rate",
        ),
        rows=rows,
        notes=(
            "Every answer is audited against the replay's ground truth: the "
            "'violations' column counts returned intervals that excluded the "
            "true aggregate and must be zero in every row — faults widen "
            "answers (the 'degraded' column), they never falsify them.  All "
            "fault schedules derive from the plan seed, so rows are "
            "deterministic per seed.  The first (zero-plan) row doubles as a "
            "control: its refresh counts and hit rate equal the offline "
            "simulator's."
        ),
    )
