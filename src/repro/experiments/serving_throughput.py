"""Serving-layer throughput sweep: concurrent clients on the loopback server.

Not a paper reproduction — this experiment characterises the online serving
layer (:mod:`repro.serving`) the production-scale roadmap adds on top of the
reproduced algorithm.  For each client count, a fresh
:class:`~repro.serving.server.CacheServer` hosts the network-monitoring
workload's adaptive policy, feeders replay the synthetic traffic trace over
the in-process loopback transport, and N concurrent query connections issue
bounded aggregates as fast as responses return.  The table records, per
client count:

* ``queries`` / ``qps(wall)`` — completed queries and wall-clock throughput;
* ``p50_ms`` / ``p99_ms`` — client-observed query latency percentiles;
* ``hit_rate`` — the workload hit rate at the server's cache;
* ``v_refresh`` / ``q_refresh`` — refreshes by kind (query-initiated ones
  ride the refresh RPC back to the owning feeder connection);
* ``rejected`` — queries refused by admission control;
* ``Omega`` — the refresh cost rate over the replayed trace duration.

Unlike the reproduction tables, wall-clock columns depend on the host
machine: the rows are *characterisation*, not committed-output material, so
this experiment carries no parallel plan and is excluded from byte-identity
CI diffs (like the microbenchmarks in ``benchmarks/``).
"""

from __future__ import annotations

import asyncio
from typing import Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.workloads import (
    serving_config,
    serving_policy,
    traffic_trace,
)
from repro.serving.loadgen import replay_trace_concurrent
from repro.serving.server import CacheServer

DEFAULT_HOST_COUNT = 25
DEFAULT_DURATION = 300
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)
DEFAULT_QUERIES_PER_CLIENT = 150


def serving_row(
    clients: int,
    host_count: int,
    duration: int,
    queries_per_client: int,
    shards: int,
    seed: int,
    engine: str = "reference",
) -> Tuple:
    """Measure one client count against a fresh loopback server."""
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    config = serving_config(trace, seed=seed, shards=shards, engine=engine)

    async def drive():
        server = CacheServer(
            serving_policy(cost_factor=1.0, seed=seed),
            shards=shards,
            value_refresh_cost=config.value_refresh_cost,
            query_refresh_cost=config.query_refresh_cost,
        )
        try:
            return await replay_trace_concurrent(
                server,
                trace,
                config,
                clients=clients,
                queries_per_client=queries_per_client,
                feeders=min(2, host_count),
            )
        finally:
            await server.close()

    report = asyncio.run(drive())
    return (
        clients,
        report.queries,
        report.throughput_qps,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.hit_rate,
        report.value_refreshes,
        report.query_refreshes,
        report.queries_rejected,
        report.omega,
    )


def run(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_DURATION,
    queries_per_client: int = DEFAULT_QUERIES_PER_CLIENT,
    shards: int = 1,
    seed: int = 11,
    engine: str = "reference",
) -> ExperimentResult:
    """Sweep concurrent client counts on the loopback serving stack."""
    rows = [
        serving_row(
            clients=clients,
            host_count=host_count,
            duration=duration,
            queries_per_client=queries_per_client,
            shards=shards,
            seed=seed,
            engine=engine,
        )
        for clients in client_counts
    ]
    return ExperimentResult(
        experiment_id="serving_throughput",
        title="Online serving layer: concurrent clients on the loopback server",
        columns=(
            "clients",
            "queries",
            "qps(wall)",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "v_refresh",
            "q_refresh",
            "rejected",
            "Omega",
        ),
        rows=rows,
        notes=(
            "Wall-clock columns (qps, latency percentiles) depend on the host "
            "machine; refresh counts and hit rates are deterministic per seed. "
            "Each row replays the same trace against a fresh server over the "
            "in-process loopback transport."
        ),
    )
