"""Serving-layer throughput sweep: concurrent clients on the loopback server.

Not a paper reproduction — this experiment characterises the online serving
layer (:mod:`repro.serving`) the production-scale roadmap adds on top of the
reproduced algorithm.  For each client count, a fresh
:class:`~repro.serving.server.CacheServer` hosts the network-monitoring
workload's adaptive policy, feeders replay the synthetic traffic trace over
the in-process loopback transport, and N concurrent query connections issue
bounded aggregates as fast as responses return.  The table records, per
client count:

* ``queries`` / ``qps(wall)`` — completed queries and wall-clock throughput;
* ``p50_ms`` / ``p99_ms`` — client-observed query latency percentiles;
* ``hit_rate`` — the workload hit rate at the server's cache;
* ``v_refresh`` / ``q_refresh`` — refreshes by kind (query-initiated ones
  ride the refresh RPC back to the owning feeder connection);
* ``rejected`` — queries refused by admission control;
* ``Omega`` — the refresh cost rate over the replayed trace duration.

The module also hosts the partitioned-deployment sweep
(``serving_partition_sweep``): whole ``repro serve`` topologies — a single
server, a gateway with its partition pool, and several stateless gateways
sharing one pool — each spawned as real OS processes and driven open loop
over TCP at a curve of offered rates, reporting goodput, p50/p99/max
latency and the rejection curve per process count.

Unlike the reproduction tables, wall-clock columns depend on the host
machine: the rows are *characterisation*, not committed-output material, so
this experiment carries no parallel plan and is excluded from byte-identity
CI diffs (like the microbenchmarks in ``benchmarks/``).
"""

from __future__ import annotations

import asyncio
import os
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.workloads import (
    serving_config,
    serving_policy,
    traffic_trace,
)
from repro.serving.loadgen import (
    MultiTargetDialer,
    OpenLoopProfile,
    dialer_for_target,
    replay_trace_concurrent,
    run_open_loop,
)
from repro.serving.procs import ProcessPartitionPool, ServerProcess
from repro.serving.server import CacheServer

DEFAULT_HOST_COUNT = 25
DEFAULT_DURATION = 300
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)
DEFAULT_QUERIES_PER_CLIENT = 150

#: (label, partitions, edge gateways) — partitions 0 means one plain
#: CacheServer process with no gateway in front of it.
DEFAULT_DEPLOYMENTS: Tuple[Tuple[str, int, int], ...] = (
    ("single", 0, 0),
    ("gw p1", 1, 1),
    ("gw p2", 2, 1),
    ("gw p4", 4, 1),
    ("gw p4 e4", 4, 4),
)
DEFAULT_OFFERED_RATES: Tuple[float, ...] = (500.0, 1500.0, 3000.0)
DEFAULT_SWEEP_SECONDS = 2.5
DEFAULT_KEYS_PER_QUERY = 20
DEFAULT_SWEEP_CONSTRAINT = 1e9


def serving_row(
    clients: int,
    host_count: int,
    duration: int,
    queries_per_client: int,
    shards: int,
    seed: int,
    engine: str = "reference",
) -> Tuple:
    """Measure one client count against a fresh loopback server."""
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    config = serving_config(trace, seed=seed, shards=shards, engine=engine)

    async def drive():
        server = CacheServer(
            serving_policy(cost_factor=1.0, seed=seed),
            shards=shards,
            value_refresh_cost=config.value_refresh_cost,
            query_refresh_cost=config.query_refresh_cost,
        )
        try:
            return await replay_trace_concurrent(
                server,
                trace,
                config,
                clients=clients,
                queries_per_client=queries_per_client,
                feeders=min(2, host_count),
            )
        finally:
            await server.close()

    report = asyncio.run(drive())
    return (
        clients,
        report.queries,
        report.throughput_qps,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.hit_rate,
        report.value_refreshes,
        report.query_refreshes,
        report.queries_rejected,
        report.omega,
    )


def run(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_DURATION,
    queries_per_client: int = DEFAULT_QUERIES_PER_CLIENT,
    shards: int = 1,
    seed: int = 11,
    engine: str = "reference",
) -> ExperimentResult:
    """Sweep concurrent client counts on the loopback serving stack."""
    rows = [
        serving_row(
            clients=clients,
            host_count=host_count,
            duration=duration,
            queries_per_client=queries_per_client,
            shards=shards,
            seed=seed,
            engine=engine,
        )
        for clients in client_counts
    ]
    return ExperimentResult(
        experiment_id="serving_throughput",
        title="Online serving layer: concurrent clients on the loopback server",
        columns=(
            "clients",
            "queries",
            "qps(wall)",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "v_refresh",
            "q_refresh",
            "rejected",
            "Omega",
        ),
        rows=rows,
        notes=(
            "Wall-clock columns (qps, latency percentiles) depend on the host "
            "machine; refresh counts and hit rates are deterministic per seed. "
            "Each row replays the same trace against a fresh server over the "
            "in-process loopback transport."
        ),
    )


def _sweep_deployment(
    partitions: int, edges: int, seed: int, max_inflight: int
) -> Tuple[List[object], object]:
    """Spawn one deployment; return (processes to stop, dial target)."""
    spec = {"seed": seed, "max_inflight": max_inflight}
    if partitions == 0:
        server = ServerProcess("single", spec)
        return [server], dialer_for_target(server.start())
    if edges <= 1:
        server = ServerProcess("gateway", dict(spec, partitions=partitions))
        return [server], dialer_for_target(server.start())
    # Scaled edge: one shared partition pool, ``edges`` stateless gateway
    # processes in front of it, client connections spread round-robin.
    pool = ProcessPartitionPool(partitions, spec)
    stack: List[object] = [pool]
    try:
        targets = pool.start()
        gateways = [
            ServerProcess("gateway", dict(spec, targets=targets))
            for _ in range(edges)
        ]
        stack.extend(gateways)
        return stack, MultiTargetDialer([gateway.start() for gateway in gateways])
    except BaseException:
        _stop_stack(stack)
        raise


def _stop_stack(stack: Sequence[object]) -> None:
    for process in reversed(list(stack)):
        process.stop()


def partition_sweep_row(
    label: str,
    partitions: int,
    edges: int,
    offered_rate: float,
    *,
    host_count: int,
    duration: int,
    sweep_seconds: float,
    keys_per_query: int,
    constraint: float,
    connections: int,
    seed: int,
) -> Tuple:
    """Offered-load point for one deployment: goodput, latency, rejections."""
    trace = traffic_trace(host_count=host_count, duration=duration)
    config = serving_config(trace, seed=seed)
    # Ramping into the offered rate warms the cache before peak load, so
    # the row measures steady serving rather than the cold-start refresh
    # storm (every key's first query forces a feeder round-trip).
    profile = OpenLoopProfile(
        duration_s=sweep_seconds,
        base_rate=max(offered_rate / 10.0, 50.0),
        peak_rate=offered_rate,
        shape="ramp",
        keys_per_query=min(keys_per_query, host_count),
        constraint=constraint,
        seed=seed,
    )
    stack, target = _sweep_deployment(partitions, edges, seed, max_inflight=256)
    try:

        async def drive():
            return await run_open_loop(
                target,
                trace,
                config,
                profile=profile,
                connections=connections,
                deadline=5.0,
            )

        report = asyncio.run(drive())
    finally:
        _stop_stack(stack)
    answered = report.queries - report.queries_rejected - report.deadline_failures
    processes = 1 if partitions == 0 else partitions + edges
    return (
        label,
        processes,
        offered_rate,
        report.queries,
        answered,
        answered / report.wall_seconds if report.wall_seconds else 0.0,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.max_latency_ms,
        report.queries_rejected,
        report.deadline_failures,
    )


def run_partition_sweep(
    deployments: Sequence[Tuple[str, int, int]] = DEFAULT_DEPLOYMENTS,
    offered_rates: Sequence[float] = DEFAULT_OFFERED_RATES,
    host_count: int = 100,
    duration: int = 120,
    sweep_seconds: float = DEFAULT_SWEEP_SECONDS,
    keys_per_query: int = DEFAULT_KEYS_PER_QUERY,
    constraint: float = DEFAULT_SWEEP_CONSTRAINT,
    connections: int = 8,
    seed: int = 11,
) -> ExperimentResult:
    """Sweep process counts: deployments × offered rates, open loop over TCP.

    Every deployment runs in its own OS process(es) — a plain
    ``CacheServer``, a gateway that spawns its partition pool, or several
    stateless gateways sharing one pool — and the load generator dials it
    over real sockets, so the rows compare what ``repro serve`` topologies
    actually deliver.  Rejected and deadline-missed queries are excluded
    from the latency percentiles; the ``rejected`` column against
    ``offered_qps`` is the rejection curve per process count.
    """
    rows = [
        partition_sweep_row(
            label,
            partitions,
            edges,
            rate,
            host_count=host_count,
            duration=duration,
            sweep_seconds=sweep_seconds,
            keys_per_query=keys_per_query,
            constraint=constraint,
            connections=connections,
            seed=seed,
        )
        for label, partitions, edges in deployments
        for rate in offered_rates
    ]
    cores = os.cpu_count() or 1
    scaling_note = (
        "Multi-process rows can only beat the single server when the host "
        f"grants them real parallelism; this run saw {cores} CPU core(s)"
        + (
            ", so every extra process merely time-slices one core and the "
            "gateway hop is pure overhead — the sweep then measures that "
            "overhead, not scaling."
            if cores < 2
            else "."
        )
    )
    return ExperimentResult(
        experiment_id="serving_partition_sweep",
        title="Partitioned serving: process-count sweep, open-loop over TCP",
        columns=(
            "deployment",
            "procs",
            "offered_qps",
            "queries",
            "answered",
            "goodput_qps",
            "p50_ms",
            "p99_ms",
            "max_ms",
            "rejected",
            "deadline_miss",
        ),
        rows=rows,
        notes=(
            "Open-loop arrivals ramp to the offered rate (Zipf key "
            "popularity); latency percentiles cover answered queries only. "
            + scaling_note
        ),
    )
