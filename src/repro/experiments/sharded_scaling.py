"""Shard-count scaling sweep on the network-monitoring workload.

This experiment is not a paper reproduction — it characterises the sharded
multi-cache topology (:mod:`repro.sharding`) that the production-scale
roadmap adds on top of the paper's algorithm.  A large host population runs
the standard adaptive policy behind 1, 2, 4 and 8 cache shards at a fixed
total cache capacity, and the table records, per shard count:

* ``Omega`` — the cost rate, which must stay essentially flat: partitioning
  only changes *where* an approximation lives, while per-shard eviction
  budgets can shift which victims are chosen when space is tight;
* ``hit_rate`` and ``skew`` — the global workload hit rate plus the spread
  (max - min) of the per-shard hit rates, the load-balance signal of the
  hash partitioning;
* ``events`` and ``events/s(sim)`` — the scheduler's total event count and
  its per-simulated-second rate.  Both are deterministic (wall-clock
  throughput depends on the host machine, which would break the
  identical-rows guarantee of the parallel runner; wall-clock comparisons
  belong to ``benchmarks/``).

Every (shard count) cell is an independent, deterministically seeded
simulation, so the sweep fans out over the process pool like any other
experiment plan.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentPlan, SubRun, run_plan
from repro.experiments.workloads import (
    KILO,
    adaptive_policy,
    traffic_config,
    traffic_streams,
    traffic_trace,
)
from repro.simulation.simulator import CacheSimulation

#: Larger than the paper-reproduction defaults (25 hosts): the sharded
#: topology only becomes interesting when each shard holds a real population.
DEFAULT_HOST_COUNT = 100
DEFAULT_DURATION = 600
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Fraction of the host population the total cache capacity covers; below
#: 1.0 so per-shard eviction budgets are actually exercised.
DEFAULT_CAPACITY_FRACTION = 0.6


def scaling_rows(
    shard_count: int,
    host_count: int,
    duration: int,
    capacity_fraction: float,
    seed: int,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> List[Tuple]:
    """The row for one shard count (picklable sub-run unit).

    ``shard_workers`` > 1 executes a sharded cell's shards concurrently in
    worker processes (clamped to the cell's shard count; single-shard cells
    always run in-process).  This sweep uses ``rho = 1``, so the policy
    decomposes and the rows are identical for any worker count.
    """
    trace = traffic_trace(host_count=host_count, duration=duration, engine=engine)
    capacity = max(shard_count, int(host_count * capacity_fraction))
    config = traffic_config(
        trace,
        query_period=1.0,
        constraint_average=100.0 * KILO,
        constraint_variation=1.0,
        cost_factor=1.0,
        cache_capacity=capacity,
        seed=seed,
        shards=shard_count,
        engine=engine,
        shard_workers=(min(shard_workers, shard_count) if shard_count > 1 else 0),
        exchange_window=exchange_window,
        kernel=kernel,
    )
    policy = adaptive_policy(
        cost_factor=1.0,
        lower_threshold=1.0 * KILO,
        initial_width=KILO,
        seed=seed,
    )
    result = CacheSimulation(config, traffic_streams(trace), policy).run()
    events_per_second = result.events_processed / config.duration
    return [
        (
            shard_count,
            host_count,
            capacity,
            result.cost_rate,
            result.cache_hit_rate,
            result.hit_rate_skew,
            result.events_processed,
            events_per_second,
        )
    ]


def plan(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_DURATION,
    capacity_fraction: float = DEFAULT_CAPACITY_FRACTION,
    seed: int = 29,
    shards: Optional[int] = None,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentPlan:
    """Decompose into one sub-run per shard count.

    ``shards`` (the CLI ``--shards`` flag) narrows the sweep to that single
    shard count; the default sweeps ``shard_counts``.  ``engine`` selects
    the stream engine generating the trace (CLI ``--engine``).
    """
    if shards is not None:
        shard_counts = (shards,)
    subruns = tuple(
        SubRun(
            label=f"shards={shard_count}",
            func=scaling_rows,
            kwargs=dict(
                shard_count=shard_count,
                host_count=host_count,
                duration=duration,
                capacity_fraction=capacity_fraction,
                seed=seed,
                engine=engine,
                shard_workers=shard_workers,
                exchange_window=exchange_window,
                kernel=kernel,
            ),
        )
        for shard_count in shard_counts
    )
    return ExperimentPlan(
        experiment_id="sharded_scaling",
        title="Sharded multi-cache topology: shard-count sweep at fixed capacity",
        columns=(
            "shards",
            "hosts",
            "kappa",
            "Omega",
            "hit_rate",
            "skew",
            "events",
            "events/s(sim)",
        ),
        subruns=subruns,
        notes=(
            "Omega should stay essentially flat across shard counts (per-shard "
            "eviction budgets can shift individual victims); skew is the "
            "max-min spread of per-shard hit rates under CRC-32 partitioning. "
            "Event counts are simulated-time throughput, deterministic by "
            "construction."
        ),
    )


def run(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_DURATION,
    capacity_fraction: float = DEFAULT_CAPACITY_FRACTION,
    seed: int = 29,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    engine: str = "reference",
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> ExperimentResult:
    """Sweep shard counts at a large host population."""
    return run_plan(
        plan(
            shard_counts=shard_counts,
            host_count=host_count,
            duration=duration,
            capacity_fraction=capacity_fraction,
            seed=seed,
            shards=shards,
            engine=engine,
            shard_workers=shard_workers,
            exchange_window=exchange_window,
            kernel=kernel,
        ),
        workers=workers,
    )
