"""Table 1: the model and algorithm symbols.

Table 1 of the paper is a glossary rather than an experiment; reproducing it
keeps the experiment index complete and gives the CLI a convenient reference
card.  Each row maps a paper symbol to its meaning and to the place in this
code base where it lives.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult

_SYMBOLS = [
    (
        "C_vr",
        "cost of a value-initiated refresh",
        "PrecisionParameters.value_refresh_cost",
    ),
    (
        "C_qr",
        "cost of a query-initiated refresh",
        "PrecisionParameters.query_refresh_cost",
    ),
    ("rho", "cost factor 2*C_vr/C_qr", "PrecisionParameters.cost_factor"),
    ("Omega", "cost rate per time step (minimised)", "SimulationResult.cost_rate"),
    ("W", "width of a cached approximation", "AdaptiveWidthController.width"),
    ("W*", "width minimising the cost rate", "CostModel.optimal_width"),
    ("alpha", "adaptivity parameter", "PrecisionParameters.adaptivity"),
    (
        "theta_0",
        "lower threshold (widths below become 0)",
        "PrecisionParameters.lower_threshold",
    ),
    (
        "theta_1",
        "upper threshold (widths above become inf)",
        "PrecisionParameters.upper_threshold",
    ),
    (
        "P_vr",
        "probability of a value-initiated refresh",
        "CostModel.value_refresh_probability",
    ),
    (
        "P_qr",
        "probability of a query-initiated refresh",
        "CostModel.query_refresh_probability",
    ),
    ("delta", "precision constraint of a query", "Query.constraint"),
    (
        "delta_avg",
        "average precision constraint",
        "SimulationConfig.constraint_average",
    ),
    (
        "sigma",
        "variation of precision constraints",
        "SimulationConfig.constraint_variation",
    ),
    ("delta_min", "minimum precision constraint", "ConstraintDistribution.minimum"),
    ("delta_max", "maximum precision constraint", "ConstraintDistribution.maximum"),
    ("n", "number of data sources", "len(CacheSimulation.sources)"),
    ("kappa", "cache size in approximate values", "SimulationConfig.cache_capacity"),
    ("T_q", "time period between queries", "SimulationConfig.query_period"),
    ("s", "random walk step size", "RandomWalkGenerator.mean_step_magnitude"),
]


def run() -> ExperimentResult:
    """Return the symbol glossary as an experiment result."""
    return ExperimentResult(
        experiment_id="table1",
        title="Model and algorithm symbols (paper Table 1)",
        columns=("symbol", "meaning", "implemented by"),
        rows=[tuple(row) for row in _SYMBOLS],
        notes="Static glossary; maps every paper symbol to this code base.",
    )
