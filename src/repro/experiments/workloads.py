"""Shared workload builders used by the experiment modules.

The paper's dynamic-environment experiments all run against the same
network-monitoring trace and mostly differ in algorithm parameters, query
period and constraint distribution.  This module centralises the construction
of those shared pieces (with caching of the synthetic trace, which is the
most expensive artefact to build) so individual experiment modules stay
small and declarative.
"""

from __future__ import annotations

import functools
import math
import random
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.caching.policies.adaptive import AdaptivePrecisionPolicy
from repro.caching.policies.exact_caching import ExactCachingPolicy
from repro.core.parameters import PrecisionParameters
from repro.data.engine import DEFAULT_ENGINE, get_engine
from repro.data.random_walk import RandomWalkGenerator
from repro.data.streams import RandomWalkStream, TraceStream, UpdateStream
from repro.data.trace import Trace
from repro.data.trace_cache import load_or_generate
from repro.data.traffic import SyntheticTrafficTraceGenerator
from repro.queries.aggregates import AggregateKind
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CacheSimulation
from repro.simulation.metrics import SimulationResult

#: Default laptop-scale settings; the paper's full scale is 50 hosts / 7200 s.
DEFAULT_HOST_COUNT = 25
DEFAULT_TRACE_DURATION = 1500
DEFAULT_WARMUP_FRACTION = 0.2

#: 10**3, the unit the paper abbreviates as ``K`` in Section 4.
KILO = 1_000.0


@functools.lru_cache(maxsize=8)
def traffic_trace(
    host_count: int = DEFAULT_HOST_COUNT,
    duration: int = DEFAULT_TRACE_DURATION,
    seed: int = 7,
    engine: str = DEFAULT_ENGINE,
) -> Trace:
    """Return (and cache) the synthetic network-monitoring trace.

    Two cache layers: the ``lru_cache`` keeps the trace hot within one
    process, and the on-disk trace cache (:mod:`repro.data.trace_cache`,
    keyed by ``(host_count, duration, seed, engine)``) shares it across
    worker processes and repeated sweeps, so ``--workers N`` loads each
    trace from disk instead of regenerating it N times.  ``engine`` names
    the stream engine generating the trace on a miss.
    """

    def build() -> Trace:
        return SyntheticTrafficTraceGenerator(
            host_count=host_count,
            duration_seconds=duration,
            seed=seed,
            engine=get_engine(engine),
        ).generate()

    return load_or_generate(
        host_count=host_count,
        duration=duration,
        seed=seed,
        engine=engine,
        generate=build,
    )


def traffic_streams(trace: Trace) -> Dict[Hashable, UpdateStream]:
    """Build one trace-replay update stream per host in ``trace``."""
    return {key: TraceStream(trace, key) for key in trace.keys}


def random_walk_streams(
    count: int,
    seed: int,
    up_probability: float = 0.5,
    start: float = 100.0,
    engine: str = DEFAULT_ENGINE,
) -> Dict[Hashable, UpdateStream]:
    """Build ``count`` independent random-walk streams (paper Section 4.2 data).

    ``engine`` selects the stream engine drawing the steps; every walk gets
    its own deterministically derived randomness handle either way.
    """
    stream_engine = get_engine(engine)
    streams: Dict[Hashable, UpdateStream] = {}
    for index in range(count):
        walk = RandomWalkGenerator(
            up_probability=up_probability,
            start=start,
            rng=stream_engine.rng(seed * 1000 + index),
            engine=stream_engine,
        )
        streams[f"walk-{index}"] = RandomWalkStream(walk)
    return streams


def adaptive_policy(
    cost_factor: float = 1.0,
    adaptivity: float = 1.0,
    lower_threshold: float = 0.0,
    upper_threshold: float = math.inf,
    initial_width: float = 1.0,
    seed: int = 0,
) -> AdaptivePrecisionPolicy:
    """Build the paper's policy for a given ``rho`` and tuning parameters."""
    parameters = PrecisionParameters.for_cost_factor(
        cost_factor,
        adaptivity=adaptivity,
        lower_threshold=lower_threshold,
        upper_threshold=upper_threshold,
    )
    return AdaptivePrecisionPolicy(
        parameters, initial_width=initial_width, rng=random.Random(seed)
    )


def serving_policy(cost_factor: float = 1.0, seed: int = 0) -> AdaptivePrecisionPolicy:
    """The serving stack's default policy: the monitoring workload's tuning.

    One construction shared by ``repro serve`` / ``repro loadgen``
    (:mod:`repro.cli`), the ``serving_throughput`` experiment and the
    serving microbenchmark, so the three surfaces always measure the same
    policy.
    """
    return adaptive_policy(
        cost_factor=cost_factor,
        lower_threshold=1.0 * KILO,
        initial_width=KILO,
        seed=seed,
    )


def serving_config(
    trace: Trace,
    seed: int = 5,
    shards: int = 1,
    engine: str = DEFAULT_ENGINE,
) -> SimulationConfig:
    """The serving stack's default workload config (shared construction).

    The warmup-free twin of the monitoring workload: one construction shared
    by ``repro loadgen`` (:mod:`repro.cli`) and the ``serving_throughput``
    experiment, so the CLI's ``--compare-offline`` equivalence check and the
    experiment table always describe the same workload.  ``warmup`` is zero
    because the server has no warm-up notion — all-time counters must match
    the offline run's.
    """
    return traffic_config(
        trace,
        constraint_average=100.0 * KILO,
        constraint_variation=1.0,
        cost_factor=1.0,
        seed=seed,
        shards=shards,
        engine=engine,
    ).with_changes(warmup=0.0)


def exact_caching_policy(
    cost_factor: float = 1.0, reevaluation_window: int = 20
) -> ExactCachingPolicy:
    """Build the WJH97 baseline with costs matching a cost factor ``rho``."""
    query_refresh_cost = 2.0
    value_refresh_cost = cost_factor * query_refresh_cost / 2.0
    return ExactCachingPolicy(
        value_refresh_cost=value_refresh_cost,
        query_refresh_cost=query_refresh_cost,
        reevaluation_window=reevaluation_window,
    )


def traffic_config(
    trace: Trace,
    query_period: float = 1.0,
    constraint_average: float = 100.0 * KILO,
    constraint_variation: float = 1.0,
    constraint_bounds: Optional[Tuple[float, float]] = None,
    cost_factor: float = 1.0,
    cache_capacity: Optional[int] = None,
    aggregates: Sequence[AggregateKind] = (AggregateKind.SUM,),
    seed: int = 0,
    track_keys: Sequence[Hashable] = (),
    query_size: Optional[int] = None,
    shards: int = 1,
    engine: str = DEFAULT_ENGINE,
    shard_workers: int = 0,
    exchange_window: int = 1,
    kernel: str = "batch",
) -> SimulationConfig:
    """Build a simulation config for the network-monitoring workload.

    ``query_size`` defaults to one fifth of the host population, preserving
    the paper's ratio (10 values per query out of 50 hosts) and therefore the
    per-item read rate when experiments run on a reduced host count.
    ``shards`` > 1 fronts the run with the hash-partitioned multi-cache
    coordinator (see :mod:`repro.sharding`); ``shard_workers`` > 1 runs
    those shards concurrently in worker processes
    (:mod:`repro.sharding.workers`), and ``exchange_window`` > 1 batches
    their per-query-tick exchange over windows of ticks.  ``engine`` records
    which stream engine generated the run's data (see
    :mod:`repro.data.engine`); ``kernel`` selects the event-execution
    strategy (:mod:`repro.simulation.kernel`).
    """
    if query_size is None:
        query_size = max(len(trace.keys) // 5, 1)
    query_refresh_cost = 2.0
    value_refresh_cost = cost_factor * query_refresh_cost / 2.0
    return SimulationConfig(
        duration=trace.duration,
        warmup=trace.duration * DEFAULT_WARMUP_FRACTION,
        query_period=query_period,
        query_size=query_size,
        aggregates=tuple(aggregates),
        constraint_average=constraint_average,
        constraint_variation=constraint_variation,
        constraint_bounds=constraint_bounds,
        cache_capacity=cache_capacity,
        shards=shards,
        shard_workers=shard_workers,
        exchange_window=exchange_window,
        engine=engine,
        kernel=kernel,
        value_refresh_cost=value_refresh_cost,
        query_refresh_cost=query_refresh_cost,
        seed=seed,
        track_keys=tuple(track_keys),
    )


def run_traffic_simulation(
    config: SimulationConfig,
    streams: Dict[Hashable, UpdateStream],
    policy,
) -> SimulationResult:
    """Run one simulation (thin wrapper kept for experiment readability)."""
    return CacheSimulation(config, streams, policy).run()


def best_exact_caching_result(
    config: SimulationConfig,
    stream_factory,
    cost_factor: float,
    windows: Sequence[int] = (5, 10, 20, 40),
) -> SimulationResult:
    """Run the WJH97 baseline for several ``x`` windows and keep the best.

    The paper tunes ``x`` (3 to 45) per run and reports the best value, which
    this helper mirrors with a small grid.  ``stream_factory`` must build a
    fresh set of update streams per run because streams are consumed.
    """
    best: Optional[SimulationResult] = None
    for window in windows:
        policy = exact_caching_policy(cost_factor, reevaluation_window=window)
        result = CacheSimulation(config, stream_factory(), policy).run()
        if best is None or result.cost_rate < best.cost_rate:
            best = result
    assert best is not None
    return best
