"""Interval approximations to numeric values.

This subpackage provides the approximation substrate used throughout the
library: closed numeric intervals (:class:`~repro.intervals.interval.Interval`),
placement strategies that turn an exact value plus a target width into a new
interval (:mod:`repro.intervals.placement`), and stale-value approximations
used when emulating Divergence Caching
(:class:`~repro.intervals.staleness.StalenessBound`).
"""

from repro.intervals.interval import (
    EXACT_ZERO,
    UNBOUNDED,
    Interval,
    hull,
    intersection,
)
from repro.intervals.placement import (
    CenteredPlacement,
    IntervalPlacement,
    LinearGrowthPlacement,
    OneSidedPlacement,
    UncenteredPlacement,
)
from repro.intervals.staleness import StalenessBound

__all__ = [
    "Interval",
    "UNBOUNDED",
    "EXACT_ZERO",
    "hull",
    "intersection",
    "IntervalPlacement",
    "CenteredPlacement",
    "OneSidedPlacement",
    "UncenteredPlacement",
    "LinearGrowthPlacement",
    "StalenessBound",
]
