"""Closed numeric intervals used as cached approximations.

An interval approximation ``[L, H]`` is a *valid* approximation of an exact
numeric value ``V`` when ``L <= V <= H`` (Section 1.1 of the paper).  The
precision of the approximation is the reciprocal of its width,
``Prec([L, H]) = 1 / (H - L)``: a zero-width interval pins down the exact
value (infinite precision) while an unbounded interval carries no information
(zero precision).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

_isnan = math.isnan


class Interval:
    """A closed interval ``[low, high]`` approximating a numeric value.

    Instances are immutable (assignment raises, as with the frozen dataclass
    this replaces — intervals hash on their endpoints and are shared, e.g.
    the module-level :data:`UNBOUNDED` singleton).  ``low`` may be ``-inf``
    and ``high`` may be ``+inf``.  This is a ``__slots__`` class rather than
    a frozen dataclass: intervals are created on every refresh and
    aggregate-bound computation, and the hand-written ``__init__`` is
    several times cheaper there.

    Parameters
    ----------
    low:
        Lower endpoint (inclusive).
    high:
        Upper endpoint (inclusive).  Must satisfy ``high >= low``.
    """

    __slots__ = ("low", "high", "width")

    def __init__(self, low: float, high: float) -> None:
        if high < low or _isnan(low) or _isnan(high):
            if _isnan(low) or _isnan(high):
                raise ValueError("interval endpoints must not be NaN")
            raise ValueError(f"invalid interval: high ({high}) < low ({low})")
        # Direct slot-descriptor writes: they bypass the immutability guard
        # below without paying object.__setattr__'s per-call attribute lookup.
        _set_low(self, low)
        _set_high(self, high)
        _set_width(self, high - low)

    def __setattr__(self, name, value):
        raise AttributeError("Interval is immutable")

    def __delattr__(self, name):
        raise AttributeError("Interval is immutable")

    def __reduce__(self):
        # Default __slots__ pickling restores state through setattr, which
        # the immutability guard blocks; rebuild through __init__ instead.
        return (Interval, (self.low, self.high))

    def __eq__(self, other: object):
        if not isinstance(other, Interval):
            return NotImplemented
        return self.low == other.low and self.high == other.high

    def __ne__(self, other: object):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def exact(cls, value: float) -> "Interval":
        """Return the zero-width interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def centered(cls, center: float, width: float) -> "Interval":
        """Return an interval of the given ``width`` centred on ``center``.

        A ``width`` of ``math.inf`` yields the unbounded interval, matching
        the paper's convention that widths clamped to ``theta_1 = inf`` mean
        "effectively not cached".
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if math.isinf(width):
            return UNBOUNDED
        half = width / 2.0
        return cls(center - half, center + half)

    @classmethod
    def above(cls, anchor: float, width: float) -> "Interval":
        """Return the one-sided interval ``[anchor, anchor + width]``.

        One-sided intervals are used for monotone quantities such as the
        update counters of stale-value approximations (Section 4.7).
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if math.isinf(width):
            return cls(anchor, math.inf)
        return cls(anchor, anchor + width)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    # ``width`` (``high - low``; ``inf`` for unbounded intervals) is a slot
    # precomputed at construction: refresh selection reads it several times
    # per queried interval, so one subtraction at build time beats a property
    # call at every access.

    @property
    def center(self) -> float:
        """The midpoint of the interval.

        Raises :class:`ValueError` for intervals with an infinite endpoint,
        whose midpoint is undefined.
        """
        if math.isinf(self.low) or math.isinf(self.high):
            raise ValueError("center is undefined for unbounded intervals")
        return (self.low + self.high) / 2.0

    @property
    def precision(self) -> float:
        """``1 / width`` — infinite for exact intervals, zero for unbounded."""
        if self.width == 0:
            return math.inf
        return 1.0 / self.width

    @property
    def is_exact(self) -> bool:
        """True when the interval has zero width (an exact copy)."""
        return self.width == 0

    @property
    def is_unbounded(self) -> bool:
        """True when either endpoint is infinite."""
        return math.isinf(self.low) or math.isinf(self.high)

    # ------------------------------------------------------------------
    # Validity and membership
    # ------------------------------------------------------------------
    def contains(self, value: float) -> bool:
        """Return ``True`` if ``low <= value <= high``.

        This is exactly the paper's ``Valid([L, H], V)`` test.
        """
        return self.low <= value <= self.high

    def is_valid_for(self, value: float) -> bool:
        """Alias of :meth:`contains`, named after the paper's predicate."""
        return self.contains(value)

    def meets_constraint(self, max_width: float) -> bool:
        """Return ``True`` if the interval satisfies a precision constraint.

        A query with precision constraint ``delta`` accepts an approximation
        whose width does not exceed ``delta``.
        """
        if max_width < 0:
            raise ValueError(f"precision constraint must be >= 0, got {max_width}")
        return self.width <= max_width

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersects(self, other: "Interval") -> bool:
        """Return ``True`` when the two intervals share at least one point."""
        return self.low <= other.high and other.low <= self.high

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlap of two intervals, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both intervals."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    # ------------------------------------------------------------------
    # Arithmetic (used by bounded aggregates)
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def scale(self, factor: float) -> "Interval":
        """Return the interval scaled by a non-negative ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        if factor == 0:
            return Interval.exact(0.0)
        return Interval(self.low * factor, self.high * factor)

    def shift(self, offset: float) -> "Interval":
        """Return the interval translated by ``offset``."""
        return Interval(self.low + offset, self.high + offset)

    def clamp_value(self, value: float) -> float:
        """Return ``value`` clipped into the interval."""
        return min(max(value, self.low), self.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.low!r}, {self.high!r})"


#: Slot descriptors bound once so ``Interval.__init__`` can write its fields
#: past the immutability guard without per-call attribute-machinery overhead.
_set_low = Interval.low.__set__
_set_high = Interval.high.__set__
_set_width = Interval.width.__set__

#: The fully unbounded interval: a valid approximation of any value, carrying
#: no information (zero precision).
UNBOUNDED = Interval(-math.inf, math.inf)

#: The exact approximation of zero, occasionally useful as an identity for
#: interval sums.
EXACT_ZERO = Interval.exact(0.0)


def hull(intervals: Iterable[Interval]) -> Interval:
    """Return the smallest interval containing every interval in ``intervals``.

    Raises :class:`ValueError` on an empty iterable.
    """
    result: Optional[Interval] = None
    for interval in intervals:
        result = interval if result is None else result.hull(interval)
    if result is None:
        raise ValueError("hull() of an empty collection is undefined")
    return result


def intersection(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Return the common overlap of all ``intervals`` (``None`` if empty/disjoint)."""
    result: Optional[Interval] = None
    for interval in intervals:
        if result is None:
            result = interval
            continue
        result = result.intersection(interval)
        if result is None:
            return None
    return result
