"""Strategies for placing a refreshed interval around an exact value.

When a source refreshes a cache (either because the value escaped its
interval, or because a query requested the exact value) it must choose the
*placement* of the new interval relative to the current exact value.  The
paper's default is a centred placement (Section 2); Section 4.5 also explores
uncentered placements and intervals whose endpoints grow with time, and the
Divergence Caching emulation of Section 4.7 uses one-sided intervals over a
monotone update counter.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.intervals.interval import UNBOUNDED, Interval


class IntervalPlacement(ABC):
    """Abstract strategy mapping ``(exact value, width)`` to an interval."""

    @abstractmethod
    def place(self, value: float, width: float) -> Interval:
        """Return a new interval of total ``width`` that contains ``value``."""

    def describe(self) -> str:
        """Return a short human-readable name for reports."""
        return type(self).__name__


@dataclass(frozen=True)
class CenteredPlacement(IntervalPlacement):
    """The paper's default: the interval is centred on the exact value."""

    def place(self, value: float, width: float) -> Interval:
        return Interval.centered(value, width)


@dataclass(frozen=True)
class OneSidedPlacement(IntervalPlacement):
    """One-sided placement ``[value, value + width]``.

    Used for monotone non-decreasing quantities, notably the update counters
    of stale-value approximations in the Divergence Caching comparison
    (Section 4.7), where the exact value can only move upward.
    """

    def place(self, value: float, width: float) -> Interval:
        return Interval.above(value, width)


@dataclass(frozen=True)
class UncenteredPlacement(IntervalPlacement):
    """Asymmetric placement splitting the width into lower and upper parts.

    ``upper_fraction`` of the width is placed above the exact value and the
    remainder below it.  With ``upper_fraction = 0.5`` this degenerates to
    :class:`CenteredPlacement`.  Section 4.5 reports that uncentered intervals
    only help for biased random walks.
    """

    upper_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.upper_fraction <= 1.0:
            raise ValueError(
                f"upper_fraction must lie in [0, 1], got {self.upper_fraction}"
            )

    def place(self, value: float, width: float) -> Interval:
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if math.isinf(width):
            return UNBOUNDED
        upper = width * self.upper_fraction
        lower = width - upper
        return Interval(value - lower, value + upper)


@dataclass(frozen=True)
class LinearGrowthPlacement(IntervalPlacement):
    """Placement for time-varying intervals with linearly drifting endpoints.

    Section 4.5 considers intervals ``[L(t), H(t)]`` whose endpoints grow
    linearly with time at rate ``drift_rate`` (useful only for biased walks).
    The simulator evaluates time-varying intervals by widening/shifting the
    placed interval as time advances; this class captures the placement at
    refresh time, with :meth:`at_elapsed` producing the interval after a given
    elapsed time.
    """

    drift_rate: float = 0.0

    def place(self, value: float, width: float) -> Interval:
        return Interval.centered(value, width)

    def at_elapsed(self, base: Interval, elapsed: float) -> Interval:
        """Return the interval ``base`` drifted by ``elapsed`` time units."""
        if elapsed < 0:
            raise ValueError("elapsed time must be non-negative")
        if base.is_unbounded:
            return base
        offset = self.drift_rate * elapsed
        return base.shift(offset)


@dataclass(frozen=True)
class PowerGrowthPlacement(IntervalPlacement):
    """Time-varying placement whose width grows like ``t ** exponent``.

    Section 4.5 evaluates exponents 1/2 and 1/3 and finds them unhelpful for
    both the network trace and unbiased random walks; the class exists so the
    ablation experiments can reproduce that negative result.
    """

    exponent: float = 0.5
    growth_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")
        if self.growth_scale < 0:
            raise ValueError("growth_scale must be non-negative")

    def place(self, value: float, width: float) -> Interval:
        return Interval.centered(value, width)

    def at_elapsed(self, base: Interval, elapsed: float) -> Interval:
        """Return ``base`` symmetrically widened after ``elapsed`` time units."""
        if elapsed < 0:
            raise ValueError("elapsed time must be non-negative")
        if base.is_unbounded:
            return base
        extra = self.growth_scale * (elapsed ** self.exponent)
        return Interval(base.low - extra, base.high + extra)
