"""Stale-value approximations (Divergence Caching emulation, Section 4.7).

In Divergence Caching [HSW94] the precision of a cached copy is inversely
proportional to the number of updates applied at the source that are *not*
reflected in the cached copy, independent of the updates' magnitudes.  The
paper's Section 4.7 shows that the adaptive precision-setting algorithm can be
specialised to this setting by bounding the *number of updates* with a numeric
interval.  :class:`StalenessBound` is that specialisation: a snapshot value
plus an allowance of unreflected updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.intervals.interval import Interval


@dataclass(frozen=True)
class StalenessBound:
    """A cached snapshot allowed to lag the source by a bounded update count.

    Parameters
    ----------
    snapshot:
        The exact value observed at refresh time.
    refresh_update_count:
        The source's cumulative update counter at refresh time.
    allowance:
        Maximum number of subsequent source updates for which the snapshot is
        still considered a valid approximation.  ``0`` means the copy must be
        exact (invalidated by any update); ``math.inf`` means the copy never
        expires (equivalent to not caching from a precision standpoint).
    """

    snapshot: float
    refresh_update_count: int
    allowance: float

    def __post_init__(self) -> None:
        if self.allowance < 0:
            raise ValueError(f"allowance must be non-negative, got {self.allowance}")
        if self.refresh_update_count < 0:
            raise ValueError("refresh_update_count must be non-negative")

    @property
    def width(self) -> float:
        """The divergence width — the update allowance itself."""
        return self.allowance

    @property
    def precision(self) -> float:
        """Reciprocal of the allowance (``inf`` for an exact copy)."""
        if self.allowance == 0:
            return math.inf
        return 1.0 / self.allowance

    def staleness(self, current_update_count: int) -> int:
        """Number of source updates not reflected in the snapshot."""
        if current_update_count < self.refresh_update_count:
            raise ValueError(
                "current update count cannot precede the refresh update count"
            )
        return current_update_count - self.refresh_update_count

    def is_valid(self, current_update_count: int) -> bool:
        """True while the unreflected update count stays within the allowance."""
        return self.staleness(current_update_count) <= self.allowance

    def meets_constraint(self, max_staleness: float) -> bool:
        """True when the allowance satisfies a query's staleness constraint."""
        if max_staleness < 0:
            raise ValueError("staleness constraint must be non-negative")
        return self.allowance <= max_staleness

    def as_interval(self) -> Interval:
        """View the bound as a one-sided interval over the update counter.

        This is the representation the paper uses when specialising the
        interval algorithm to stale-value approximations: the counter is
        bounded by ``[count_at_refresh, count_at_refresh + allowance]``.
        """
        return Interval.above(float(self.refresh_update_count), self.allowance)
