"""Unified observability: metrics registry, trace spans, logging, exposition.

The layer absorbs the serving stack's ad-hoc counters (``/stats`` dicts,
the old exchange meter, fault-injection tallies, loadgen percentiles)
behind one process-local :class:`~repro.obs.metrics.MetricsRegistry`,
records deterministic trace spans into a crash flight recorder
(:mod:`repro.obs.trace`), and exposes everything as Prometheus text via
``GET /metrics`` (:mod:`repro.obs.prom`).  Everything is off by default
and free when off: recording is a single ``enabled`` check, so the
deterministic-replay guarantees hold bit-for-bit with observability on or
off.
"""

from repro.obs.logging import (
    LOG_LEVELS,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshot,
    merge_snapshots,
)
from repro.obs.prom import flatten_snapshot, parse_text, render_snapshot
from repro.obs.trace import (
    TRACER,
    FlightRecorder,
    Tracer,
    configure_tracer,
    crash_dump_scope,
    span_id,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "LATENCY_BUCKETS_SECONDS",
    "LOG_LEVELS",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "TRACER",
    "Tracer",
    "aggregate_snapshot",
    "configure_logging",
    "configure_tracer",
    "crash_dump_scope",
    "flatten_snapshot",
    "get_logger",
    "merge_snapshots",
    "parse_text",
    "render_snapshot",
    "span_id",
]
