"""Structured JSON-lines logging for every process in a deployment.

One formatter, one configuration entry point.  Each record renders as a
single JSON object carrying the run context that makes multi-process logs
mergeable after the fact: the run ``seed``, the process ``role``
(``gateway`` / ``partition`` / ``loadgen`` / ...), and the ``partition``
index where one applies.  ``configure_logging`` is called once per process
— by the CLI for the foreground process, by the worker entrypoints in
``serving/procs.py`` for spawned children — so a gateway deployment's logs
concatenate into one stream that sorts and filters by those fields.

``captureWarnings(True)`` routes ``warnings.warn(...)`` (the serving
stack's resync / supervision ``RuntimeWarning``s) into the same stream as
``py.warnings`` records instead of bare stderr lines.  The warnings remain
*warnings* — tests pin them with ``pytest.warns`` — this only changes how
they surface when a deployment configures logging.
"""

from __future__ import annotations

import json
import logging
import logging.handlers
import sys
from typing import Any, Dict, Optional

__all__ = ["JsonLinesFormatter", "LOG_LEVELS", "configure_logging", "get_logger"]

#: Root of the package logger hierarchy configured here.
ROOT_LOGGER = "repro"

# Library-style default: a process that never calls configure_logging must
# stay silent (no logging.lastResort stderr lines for WARNING+ records from
# the serving stack's instrumentation).
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

#: The level names ``configure_logging`` accepts (lowercase).
LOG_LEVELS = frozenset({"critical", "error", "warning", "info", "debug"})


class JsonLinesFormatter(logging.Formatter):
    """Render each record as one JSON line with static run-context fields."""

    def __init__(
        self,
        *,
        seed: Optional[int] = None,
        role: Optional[str] = None,
        partition: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.static_fields: Dict[str, Any] = {}
        if seed is not None:
            self.static_fields["seed"] = seed
        if role is not None:
            self.static_fields["role"] = role
        if partition is not None:
            self.static_fields["partition"] = partition

    def format(self, record: logging.Record) -> str:
        payload: Dict[str, Any] = {
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(self.static_fields)
        extra = getattr(record, "fields", None)
        if isinstance(extra, dict):
            payload.update(extra)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """A logger under the package hierarchy (``repro.<name>``)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: str = "warning",
    log_file: Optional[str] = None,
    *,
    seed: Optional[int] = None,
    role: Optional[str] = None,
    partition: Optional[int] = None,
    capture_warnings: bool = True,
) -> logging.Logger:
    """Point the ``repro`` logger tree at one JSON-lines handler.

    Reconfigures idempotently (earlier handlers installed here are
    replaced), so worker respawns and repeated CLI invocations inside one
    process never double-log.  Returns the configured root package logger.
    """
    if level.lower() not in LOG_LEVELS:
        raise ValueError(f"unknown log level: {level!r}")
    numeric = getattr(logging, level.upper())
    formatter = JsonLinesFormatter(seed=seed, role=role, partition=partition)
    if log_file:
        handler: logging.Handler = logging.FileHandler(log_file)
    else:
        handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(formatter)
    handler.set_name("repro-obs-json")

    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(numeric)
    root.propagate = False
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs-json":
            root.removeHandler(existing)
            existing.close()
    root.addHandler(handler)

    if capture_warnings:
        logging.captureWarnings(True)
        warn_logger = logging.getLogger("py.warnings")
        warn_logger.propagate = False
        for existing in list(warn_logger.handlers):
            if existing.get_name() == "repro-obs-json":
                warn_logger.removeHandler(existing)
        warn_logger.addHandler(handler)
    return root
