"""The process-local metrics registry: counters, gauges, histograms.

One registry per process absorbs every counter the system used to scatter
across ad-hoc surfaces (`/stats` snapshot dicts, the shard-exchange meter,
fault-injection counters, loadgen percentiles) behind a single API with a
Prometheus-shaped data model:

* :class:`Counter` — a monotonically increasing total.
* :class:`Gauge` — a point-in-time value that can go up and down.
* :class:`Histogram` — fixed-bucket cumulative observation counts plus a
  running sum, mergeable bucket-wise across processes (the gateway merges
  per-partition histograms).

**Hot-path discipline.**  A metric handle is looked up once (at component
construction or module import) and held; recording is one attribute check
plus an in-place add — no dict lookup, no allocation, no formatting.  With
the registry disabled (``enabled=False``, the default) every ``inc`` /
``set`` / ``observe`` is a single predictable branch, so instrumented code
costs nothing measurable when nobody is scraping.

**Determinism.**  Metrics are write-only observers: recording never reads
the clock, never draws randomness, and never feeds a value back into the
serving or simulation path — a replay with metrics enabled is byte-identical
to one with metrics disabled (CI's ``obs-smoke`` job diffs exactly this).

**Collectors.**  Existing cumulative state (``ServingStatistics``, WAL
counters, cache statistics) is absorbed without touching its hot paths: a
*collector* callback registered with :meth:`MetricsRegistry.collector` runs
at snapshot time and copies the current totals into registry handles, so
the scrape pays the cost, not the serving path.

**Snapshots.**  :meth:`MetricsRegistry.snapshot` returns a JSON-able dict
(the ``metrics`` protocol op carries it from partitions to the gateway);
:func:`merge_snapshots` folds many processes' snapshots into one, and
:func:`aggregate_snapshot` sums series across a label dimension (for
whole-deployment totals in the ``repro obs`` CLI).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_SECONDS",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "aggregate_snapshot",
    "merge_snapshots",
]

_INF = float("inf")

#: Generic default buckets (powers of ten with 2.5/5 subdivisions).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets sized for request latencies in seconds (0.1 ms .. 10 s).
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

#: Buckets sized for counts/sizes (fan-outs, batch sizes, byte payloads).
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
)

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> _LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total.

    ``set_total`` exists for collectors that mirror an existing cumulative
    counter into the registry at scrape time; hot paths use :meth:`inc`.
    """

    __slots__ = ("name", "help", "labels", "value", "registry")
    kind = "counter"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help_text: str, labels: _LabelsKey
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self.registry.enabled:
            self.value += amount

    def set_total(self, total: float) -> None:
        """Collector-only: mirror an externally maintained running total."""
        if self.registry.enabled:
            self.value = total

    def sample(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "help", "labels", "value", "registry")
    kind = "gauge"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help_text: str, labels: _LabelsKey
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.registry.enabled:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if self.registry.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self.registry.enabled:
            self.value -= amount

    def sample(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket observation counts (per-bucket storage, cumulative render).

    ``bounds`` are the finite upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches everything above the last bound.  An observation
    equal to a bound lands in that bound's bucket (Prometheus ``le``
    semantics).  ``counts[i]`` is the number of observations in bucket ``i``
    (*not* cumulative — cumulation happens at exposition), which keeps
    :meth:`observe` a single bisect plus three in-place adds.
    """

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count", "registry")
    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labels: _LabelsKey,
        bounds: Tuple[float, ...],
    ) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if bounds[-1] == _INF:
            raise ValueError("+Inf is implicit; pass finite bounds only")
        self.registry = registry
        self.name = name
        self.help = help_text
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self.registry.enabled:
            return
        # bisect_left returns the first bound >= value, i.e. the smallest
        # bucket whose ``le`` admits the observation.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with the +Inf bucket."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            out.append((bound, running))
        out.append((_INF, running + self.counts[-1]))
        return out

    def sample(self) -> Dict[str, Any]:
        return {
            "labels": dict(self.labels),
            "sum": self.sum,
            "count": self.count,
            "buckets": [[le, cum] for le, cum in self.cumulative()],
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """A process-local family of metrics plus its collectors.

    Disabled by default: handles can be created and held unconditionally,
    and recording through them is a no-op until :meth:`enable` — the
    zero-overhead posture offline simulations and unit tests run in.
    ``constant_labels`` stamp every exposed sample (role/partition identity
    in multi-process deployments) without appearing on the hot-path keys.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        constant_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.enabled = enabled
        self.constant_labels: Dict[str, str] = dict(constant_labels or {})
        self._metrics: Dict[Tuple[str, _LabelsKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._order: List[str] = []
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def set_constant_labels(self, **labels: str) -> None:
        self.constant_labels.update({k: str(v) for k, v in labels.items()})

    def reset(self) -> None:
        """Zero every value, keeping registrations and collectors."""
        for metric in self._metrics.values():
            metric.reset()

    # ------------------------------------------------------------------
    # Handle creation (get-or-create; kind conflicts are programming errors)
    # ------------------------------------------------------------------
    def _get_or_create(
        self, kind: str, factory: Callable[[_LabelsKey], Any], name: str, labels: Dict[str, str]
    ) -> Any:
        registered = self._kinds.get(name)
        if registered is not None and registered != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {registered}, not a {kind}"
            )
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(key[1])
            self._metrics[key] = metric
            if registered is None:
                self._kinds[name] = kind
                self._order.append(name)
        return metric

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get_or_create(
            "counter", lambda key: Counter(self, name, help_text, key), name, labels
        )

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get_or_create(
            "gauge", lambda key: Gauge(self, name, help_text, key), name, labels
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        bounds = tuple(float(b) for b in buckets)
        metric = self._get_or_create(
            "histogram",
            lambda key: Histogram(self, name, help_text, key, bounds),
            name,
            labels,
        )
        if metric.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.bounds}, not {bounds}"
            )
        return metric

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------
    def collector(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Register a scrape-time callback that refreshes mirrored values."""
        self._collectors.append(fn)
        return fn

    def remove_collector(self, fn: Callable[[], None]) -> None:
        try:
            self._collectors.remove(fn)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Introspection / exposition
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> float:
        """A counter/gauge's current value (0.0 when never recorded)."""
        metric = self._metrics.get((name, _labels_key(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise ValueError(f"{name!r} is a histogram; read its handle directly")
        return metric.value

    def snapshot(self) -> Dict[str, Any]:
        """The registry's JSON-able state (collectors run first when enabled)."""
        if self.enabled:
            for collect in list(self._collectors):
                collect()
        metrics: List[Dict[str, Any]] = []
        for name in self._order:
            kind = self._kinds[name]
            first = True
            entry: Dict[str, Any] = {}
            for (metric_name, _), metric in self._metrics.items():
                if metric_name != name:
                    continue
                if first:
                    entry = {
                        "name": name,
                        "kind": kind,
                        "help": metric.help,
                        "samples": [],
                    }
                    first = False
                sample = metric.sample()
                if self.constant_labels:
                    merged = dict(self.constant_labels)
                    merged.update(sample["labels"])
                    sample["labels"] = merged
                entry["samples"].append(sample)
            if not first:
                metrics.append(entry)
        return {"metrics": metrics}

    def render(self) -> str:
        """The registry as Prometheus text exposition format."""
        from repro.obs.prom import render_snapshot

        return render_snapshot(self.snapshot())


# ---------------------------------------------------------------------------
# Snapshot algebra (the gateway's per-partition aggregation)
# ---------------------------------------------------------------------------


def _merge_samples(kind: str, into: Dict[str, Any], sample: Dict[str, Any]) -> None:
    if kind == "histogram":
        if [le for le, _ in into["buckets"]] != [le for le, _ in sample["buckets"]]:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{into['buckets']} vs {sample['buckets']}"
            )
        into["sum"] += sample["sum"]
        into["count"] += sample["count"]
        into["buckets"] = [
            [le, a + b]
            for (le, a), (_, b) in zip(into["buckets"], sample["buckets"])
        ]
    else:
        # Counters and gauges both merge by summation: gauges that must not
        # be summed across processes (clocks, rates) are exposed with
        # distinguishing constant labels, so they never share a series.
        into["value"] += sample["value"]


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold many registries' snapshots into one.

    Samples with the same metric name *and* the same label set merge
    (counters/gauges sum, histograms add bucket-wise — bounds must match);
    differently labelled samples stay distinct series.  Metric kind
    conflicts across snapshots raise ``ValueError``.
    """
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    order: List[str] = []
    merged: Dict[str, Dict[_LabelsKey, Dict[str, Any]]] = {}
    for snapshot in snapshots:
        for metric in snapshot.get("metrics", ()):
            name = metric["name"]
            kind = metric["kind"]
            known = kinds.get(name)
            if known is None:
                kinds[name] = kind
                helps[name] = metric.get("help", "")
                order.append(name)
                merged[name] = {}
            elif known != kind:
                raise ValueError(
                    f"metric {name!r} is a {known} in one snapshot and a "
                    f"{kind} in another"
                )
            series = merged[name]
            for sample in metric.get("samples", ()):
                key = _labels_key(sample.get("labels", {}))
                existing = series.get(key)
                if existing is None:
                    copied = dict(sample)
                    copied["labels"] = dict(sample.get("labels", {}))
                    if kind == "histogram":
                        copied["buckets"] = [list(b) for b in sample["buckets"]]
                    series[key] = copied
                else:
                    _merge_samples(kind, existing, sample)
    return {
        "metrics": [
            {
                "name": name,
                "kind": kinds[name],
                "help": helps[name],
                "samples": list(merged[name].values()),
            }
            for name in order
        ]
    }


def aggregate_snapshot(
    snapshot: Dict[str, Any], drop_labels: Sequence[str]
) -> Dict[str, Any]:
    """Sum series across the ``drop_labels`` dimensions.

    Dropping ``("partition",)`` turns a gateway scrape's per-partition
    series into whole-deployment totals (histograms merge bucket-wise);
    series that never carried the label pass through unchanged.
    """
    dropped = set(drop_labels)
    stripped = {"metrics": []}
    for metric in snapshot.get("metrics", ()):
        entry = dict(metric)
        entry["samples"] = []
        for sample in metric.get("samples", ()):
            copied = dict(sample)
            copied["labels"] = {
                k: v for k, v in sample.get("labels", {}).items() if k not in dropped
            }
            if metric["kind"] == "histogram":
                copied["buckets"] = [list(b) for b in sample["buckets"]]
            entry["samples"].append(copied)
        stripped["metrics"].append(entry)
    return merge_snapshots([stripped])


#: The process's default registry.  Serving deployments enable it via the
#: CLI (``--metrics``); offline simulation leaves it disabled and pays one
#: branch per instrumented site.
REGISTRY = MetricsRegistry()
