"""Prometheus text exposition: render a registry snapshot, parse a scrape.

The renderer emits the text format (version 0.0.4) from the JSON-able
snapshots of :mod:`repro.obs.metrics`: ``# HELP`` / ``# TYPE`` headers, one
sample line per series, histograms as cumulative ``_bucket{le="..."}``
series plus ``_sum`` and ``_count``.  Floats round-trip through ``repr``
(the same rule as the serving wire format) so a parsed scrape reproduces
the sampled values exactly — pinned by the hypothesis round-trip test in
``tests/test_obs_prom.py``.

The parser reads the subset the renderer emits (plus tolerant whitespace
and unknown comment lines), returning flat samples the ``repro obs``
pretty-printer and the round-trip tests consume.  It is a scrape debugging
tool, not a general Prometheus client.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

__all__ = ["flatten_snapshot", "parse_text", "render_snapshot"]

#: One parsed sample: (metric name, labels, value).
Sample = Tuple[str, Dict[str, str], float]


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - registries never store NaN
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """A registry snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", ()):
        name = metric["name"]
        kind = metric["kind"]
        help_text = metric.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in metric.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                for le, cumulative in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(le))
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{_format_value(float(cumulative))}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(float(sample['sum']))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{_format_value(float(sample['count']))}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(float(sample['value']))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def flatten_snapshot(snapshot: Dict[str, Any]) -> List[Sample]:
    """The flat samples a scrape of ``snapshot`` parses back to."""
    samples: List[Sample] = []
    for metric in snapshot.get("metrics", ()):
        name = metric["name"]
        for sample in metric.get("samples", ()):
            labels = {k: str(v) for k, v in sample.get("labels", {}).items()}
            if metric["kind"] == "histogram":
                for le, cumulative in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(le))
                    samples.append((f"{name}_bucket", bucket_labels, float(cumulative)))
                samples.append((f"{name}_sum", dict(labels), float(sample["sum"])))
                samples.append((f"{name}_count", dict(labels), float(sample["count"])))
            else:
                samples.append((name, labels, float(sample["value"])))
    return samples


def _parse_value(text: str) -> float:
    stripped = text.strip()
    if stripped == "+Inf":
        return math.inf
    if stripped == "-Inf":
        return -math.inf
    if stripped == "NaN":  # pragma: no cover - renderer never emits it
        return math.nan
    return float(stripped)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    length = len(text)
    while index < length:
        equals = text.index("=", index)
        name = text[index:equals].strip().lstrip(",").strip()
        if text[equals + 1] != '"':
            raise ValueError(f"unquoted label value after {name!r}")
        chars: List[str] = []
        cursor = equals + 2
        while True:
            char = text[cursor]
            if char == "\\":
                escape = text[cursor + 1]
                chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(escape, "\\" + escape)
                )
                cursor += 2
                continue
            if char == '"':
                break
            chars.append(char)
            cursor += 1
        labels[name] = "".join(chars)
        index = cursor + 1
    return labels


def parse_text(text: str) -> Tuple[Dict[str, str], List[Sample]]:
    """Parse a scrape into ``(types by metric name, flat samples)``.

    Raises ``ValueError`` on lines the renderer's dialect cannot produce.
    """
    types: Dict[str, str] = {}
    samples: List[Sample] = []
    # Split on newline only: the exposition format breaks lines with "\n",
    # and quoted label values may legally contain other Unicode line
    # boundaries (U+2028 etc.) that str.splitlines() would split on.
    for raw_line in text.split("\n"):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3].strip()
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            samples.append(
                (name.strip(), _parse_labels(label_text), _parse_value(value_text))
            )
        else:
            try:
                name, value_text = line.rsplit(None, 1)
            except ValueError:
                raise ValueError(f"malformed sample line: {raw_line!r}") from None
            samples.append((name.strip(), {}, _parse_value(value_text)))
    return types, samples
