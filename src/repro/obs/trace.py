"""Deterministic trace spans and the crash flight recorder.

**Span identity is positional, never temporal.**  A span ID is derived
from ``(connection ordinal, frame position)`` — the connection's accept
ordinal on the recording process and the position of the frame that caused
the work — rendered as ``role:ordinal:frame``.  Nothing about a span reads
the wall clock or draws randomness, so a serialized replay records the
identical span stream every run and enabling tracing cannot perturb the
bit-identity guarantees (span recording is append-only into a ring).

Each process in a deployment (gateway, partitions, load generator) records
its own spans: the query's gateway span, the partition spans its fan-out
causes, and the refresh-RPC spans back toward feeders all carry IDs that
re-derive identically on every replay, so cross-process traces line up by
construction instead of by propagated headers (the wire format stays
byte-identical with tracing on or off).

**Flight recorder.**  Spans land in a bounded ring
(:class:`FlightRecorder`, default 512 events).  On a crash the ring is
dumped to ``<dir>/<role>[-<detail>].flightrec.json`` — partitions dump on
unhandled exceptions (:func:`crash_dump_scope`), and the *gateway* dumps
its own recent spans when it notices a partition died (SIGKILL leaves the
victim nothing to dump; the survivor's view of the last frames before the
death is what makes a chaos-suite failure diagnosable).
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_RING_SIZE",
    "FlightRecorder",
    "TRACER",
    "Tracer",
    "configure_tracer",
    "crash_dump_scope",
    "span_id",
]

DEFAULT_RING_SIZE = 512

#: Bumped when the dump layout changes, so tooling can refuse old files.
FLIGHTREC_VERSION = 1


def span_id(role: str, connection: int, frame: Any) -> str:
    """The deterministic span ID for a frame position on a connection."""
    return f"{role}:{connection}:{frame}"


class FlightRecorder:
    """A bounded ring of recent span events plus the dump codec."""

    __slots__ = ("ring", "dropped", "dumps_written")

    def __init__(self, size: int = DEFAULT_RING_SIZE) -> None:
        if size < 1:
            raise ValueError("ring size must be at least 1")
        self.ring: Deque[Dict[str, Any]] = deque(maxlen=size)
        self.dropped = 0
        self.dumps_written = 0

    def append(self, event: Dict[str, Any]) -> None:
        if len(self.ring) == self.ring.maxlen:
            self.dropped += 1
        self.ring.append(event)

    def events(self) -> List[Dict[str, Any]]:
        return list(self.ring)

    def clear(self) -> None:
        self.ring.clear()
        self.dropped = 0

    def dump(self, path: Any, *, role: str, reason: str) -> Path:
        """Write the ring as ``*.flightrec.json`` and return the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "flightrec_version": FLIGHTREC_VERSION,
            "role": role,
            "reason": reason,
            "dropped": self.dropped,
            "events": self.events(),
        }
        target.write_text(json.dumps(payload, indent=1, sort_keys=True))
        self.dumps_written += 1
        return target


class Tracer:
    """The process's span recorder (disabled by default).

    ``record`` is the one hot-path entry point: guarded by a single
    ``enabled`` check, it derives the span ID from the caller-supplied
    (connection ordinal, frame position) pair and appends one event dict to
    the flight-recorder ring.  ``attrs`` must already be deterministic —
    logical clocks, key counts, op names; never wall time.
    """

    __slots__ = ("enabled", "role", "recorder", "flightrec_dir")

    def __init__(
        self,
        *,
        enabled: bool = False,
        role: str = "proc",
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self.enabled = enabled
        self.role = role
        self.recorder = FlightRecorder(ring_size)
        #: When set, crash dumps (and the gateway's partition-death dumps)
        #: land here; ``None`` disables dumping entirely.
        self.flightrec_dir: Optional[Path] = None

    def record(
        self,
        name: str,
        *,
        conn: int,
        frame: Any,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> str:
        """Record one span event; returns its deterministic ID ('' if off)."""
        if not self.enabled:
            return ""
        sid = span_id(self.role, conn, frame)
        event: Dict[str, Any] = {"span": sid, "name": name}
        if parent:
            event["parent"] = parent
        if attrs:
            event.update(attrs)
        self.recorder.append(event)
        return sid

    def dump(self, detail: str, reason: str) -> Optional[Path]:
        """Dump the ring to the configured directory (no-op when unset)."""
        if self.flightrec_dir is None:
            return None
        name = f"{self.role}-{detail}.flightrec.json" if detail else (
            f"{self.role}.flightrec.json"
        )
        return self.recorder.dump(
            Path(self.flightrec_dir) / name, role=self.role, reason=reason
        )


#: The process's default tracer, configured by the CLI / worker specs.
TRACER = Tracer()


def configure_tracer(
    *,
    role: str,
    enabled: bool = True,
    flightrec_dir: Optional[Any] = None,
    ring_size: int = DEFAULT_RING_SIZE,
) -> Tracer:
    """(Re)configure the process tracer in place and return it."""
    TRACER.role = role
    TRACER.enabled = enabled
    TRACER.recorder = FlightRecorder(ring_size)
    TRACER.flightrec_dir = None if flightrec_dir is None else Path(flightrec_dir)
    return TRACER


@contextmanager
def crash_dump_scope(detail: str = "crash") -> Iterator[Tracer]:
    """Dump the tracer ring if the wrapped block dies with an exception.

    Worker entrypoints wrap their serve loops in this so a partition that
    crashes (anything short of SIGKILL) leaves its last spans behind as a
    ``*.flightrec.json`` next to its WAL.
    """
    try:
        yield TRACER
    except BaseException as exc:
        try:
            TRACER.dump(detail, reason=f"{type(exc).__name__}: {exc}")
        except OSError:  # pragma: no cover - a full/readonly flightrec dir
            pass
        raise
