"""Query substrate: bounded aggregates over cached approximations.

The workload in the paper's performance study (Section 4.1) issues SUM or MAX
aggregates over a set of cached intervals, each accompanied by a precision
constraint ``delta`` bounding the acceptable width of the result interval.
When the cached intervals are too wide, a subset of them is refreshed (at
cost ``C_qr`` each) until the constraint is met, following the selection
algorithms of TRAPP [OW00].
"""

from repro.queries.aggregates import (
    AggregateKind,
    average_bound,
    count_below_bound,
    max_bound,
    min_bound,
    sum_bound,
)
from repro.queries.constraints import PrecisionConstraintGenerator
from repro.queries.refresh_selection import (
    QueryExecution,
    execute_bounded_query,
    select_sum_refreshes,
)
from repro.queries.workload import Query, QueryWorkload

__all__ = [
    "AggregateKind",
    "sum_bound",
    "max_bound",
    "min_bound",
    "average_bound",
    "count_below_bound",
    "PrecisionConstraintGenerator",
    "QueryExecution",
    "execute_bounded_query",
    "select_sum_refreshes",
    "Query",
    "QueryWorkload",
]
