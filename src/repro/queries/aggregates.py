"""Interval bounds for aggregate queries over approximate values.

Given interval approximations ``[L_i, H_i]`` of a set of exact values, the
result of an aggregate over those values can itself be bounded by an interval
computed from the endpoints (this is the TRAPP / "bounded aggregate" idea of
[OW00] that the paper's query workload is modelled on):

* ``SUM``  — ``[sum L_i, sum H_i]``
* ``MAX``  — ``[max L_i, max H_i]``
* ``MIN``  — ``[min L_i, min H_i]``
* ``AVG``  — the SUM bound divided by the count
* ``COUNT(<= threshold)`` — how many values are certainly / possibly below a
  threshold, expressed as an integer interval.

All functions accept any iterable of :class:`~repro.intervals.interval.Interval`.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Sequence

from repro.intervals.interval import Interval


class AggregateKind(Enum):
    """Aggregate functions supported by the query workload."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    AVG = "avg"


def _materialise(intervals: Iterable[Interval]) -> List[Interval]:
    # Callers in the simulator hot path already pass freshly built lists;
    # avoid copying those (the bound functions never mutate their input).
    result = intervals if type(intervals) is list else list(intervals)
    if not result:
        raise ValueError("aggregate bounds require at least one interval")
    return result


def sum_bound(intervals: Iterable[Interval]) -> Interval:
    """Interval bounding the SUM of the underlying exact values."""
    items = _materialise(intervals)
    # One pass instead of two generator sums; each accumulator adds the same
    # values in the same order, so the floats are identical.
    low = 0
    high = 0
    for interval in items:
        low += interval.low
        high += interval.high
    return Interval(low, high)


def max_bound(intervals: Iterable[Interval]) -> Interval:
    """Interval bounding the MAX of the underlying exact values."""
    items = _materialise(intervals)
    low = max(interval.low for interval in items)
    high = max(interval.high for interval in items)
    return Interval(low, high)


def min_bound(intervals: Iterable[Interval]) -> Interval:
    """Interval bounding the MIN of the underlying exact values."""
    items = _materialise(intervals)
    low = min(interval.low for interval in items)
    high = min(interval.high for interval in items)
    return Interval(low, high)


def average_bound(intervals: Iterable[Interval]) -> Interval:
    """Interval bounding the arithmetic mean of the underlying exact values."""
    items = _materialise(intervals)
    total = sum_bound(items)
    return total.scale(1.0 / len(items))


def count_below_bound(intervals: Iterable[Interval], threshold: float) -> Interval:
    """Integer interval bounding ``COUNT(value <= threshold)``.

    A value is *certainly* counted when its whole interval lies at or below
    the threshold, and *possibly* counted when its interval merely reaches the
    threshold.
    """
    items = _materialise(intervals)
    certain = sum(1 for interval in items if interval.high <= threshold)
    possible = sum(1 for interval in items if interval.low <= threshold)
    return Interval(float(certain), float(possible))


def aggregate_bound(kind: AggregateKind, intervals: Sequence[Interval]) -> Interval:
    """Dispatch to the bound function for ``kind``."""
    if kind is AggregateKind.SUM:
        return sum_bound(intervals)
    if kind is AggregateKind.MAX:
        return max_bound(intervals)
    if kind is AggregateKind.MIN:
        return min_bound(intervals)
    if kind is AggregateKind.AVG:
        return average_bound(intervals)
    raise ValueError(f"unsupported aggregate kind: {kind!r}")
