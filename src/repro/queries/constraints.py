"""Generation of query precision constraints.

Each query carries a precision constraint ``delta >= 0``, the maximum
acceptable width of its result interval.  The paper's workload samples
constraints uniformly between ``delta_min = delta_avg * (1 - sigma)`` and
``delta_max = delta_avg * (1 + sigma)``, where ``delta_avg`` is the average
constraint and ``sigma`` the constraint variation (Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ConstraintDistribution:
    """The (min, max) range from which constraints are drawn."""

    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError("constraint minimum must be non-negative")
        if self.maximum < self.minimum:
            raise ValueError("constraint maximum must be >= minimum")

    @property
    def average(self) -> float:
        """Midpoint of the range."""
        return (self.minimum + self.maximum) / 2.0


class PrecisionConstraintGenerator:
    """Samples precision constraints uniformly from ``[delta_min, delta_max]``.

    Parameters
    ----------
    average:
        ``delta_avg`` — the average precision constraint.
    variation:
        ``sigma >= 0`` — the relative half-width of the constraint range.
        ``sigma = 0`` makes every query use exactly ``delta_avg``; ``sigma = 1``
        spreads constraints over ``[0, 2 * delta_avg]``.  Values above 1 would
        produce negative lower bounds, which are clamped to zero.
    rng:
        Randomness source (pass a seeded instance for reproducibility).
    """

    def __init__(
        self,
        average: float,
        variation: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if average < 0:
            raise ValueError("average constraint (delta_avg) must be non-negative")
        if variation < 0:
            raise ValueError("constraint variation (sigma) must be non-negative")
        self._average = average
        self._variation = variation
        self._rng = rng if rng is not None else random.Random()
        # The effective range is constant for the generator's lifetime;
        # precompute it once instead of per sample (one sample per query).
        self._minimum = max(average * (1.0 - variation), 0.0)
        self._maximum = average * (1.0 + variation)

    @property
    def distribution(self) -> ConstraintDistribution:
        """The effective ``[delta_min, delta_max]`` range."""
        return ConstraintDistribution(minimum=self._minimum, maximum=self._maximum)

    @property
    def average(self) -> float:
        """The configured ``delta_avg``."""
        return self._average

    @property
    def variation(self) -> float:
        """The configured ``sigma``."""
        return self._variation

    def sample(self) -> float:
        """Draw one precision constraint."""
        minimum = self._minimum
        maximum = self._maximum
        if minimum == maximum:
            return minimum
        return self._rng.uniform(minimum, maximum)

    @classmethod
    def from_bounds(
        cls,
        minimum: float,
        maximum: float,
        rng: Optional[random.Random] = None,
    ) -> "PrecisionConstraintGenerator":
        """Build a generator from explicit ``(delta_min, delta_max)`` bounds.

        Several paper figures specify the range directly (e.g. ``(0, 100K)``
        or ``(50K, 150K)`` in Figure 6); this constructor converts the range
        into the equivalent ``(delta_avg, sigma)`` pair.
        """
        if minimum < 0 or maximum < minimum:
            raise ValueError("require 0 <= minimum <= maximum")
        average = (minimum + maximum) / 2.0
        if average == 0:
            return cls(average=0.0, variation=0.0, rng=rng)
        variation = (maximum - minimum) / (2.0 * average)
        return cls(average=average, variation=variation, rng=rng)
