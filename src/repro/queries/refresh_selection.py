"""Choosing which approximations a query must refresh (OW00-style).

A bounded-aggregate query over cached intervals succeeds immediately when the
width of its result bound is within the query's precision constraint
``delta``.  Otherwise, some of the contributing intervals must be refreshed
(their exact values fetched from the sources, each at cost ``C_qr``) until the
constraint holds.  After a refresh the contributing interval is exact, so its
contribution to the result width vanishes.

Two selection strategies are implemented, matching the paper's SUM and MAX
workloads:

* **SUM** — the result width is the sum of the contributing widths, so the
  cheapest way to meet the constraint is to refresh the widest intervals
  until the remaining total width is within ``delta``.  This choice is static
  (it does not depend on the fetched values), so it can be made up-front.
* **MAX** — the result bound is ``[max L_i, max H_i]``.  Knowing an exact
  value can raise the lower bound and thereby rule out other candidates, so
  refreshes are chosen iteratively: fetch the interval with the largest upper
  endpoint, recompute the bound, and repeat until the constraint holds.  This
  is why cached non-exact intervals remain useful for MAX even when queries
  demand exact answers (Section 4.4).

The functions below work against a ``fetch_exact`` callback supplied by the
simulator; the callback performs the actual query-initiated refresh (cost
accounting, new interval installation) and returns the exact value.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, Generator, Hashable, List, Sequence, Tuple

import numpy as np

from repro.intervals.interval import Interval
from repro.queries.aggregates import AggregateKind, aggregate_bound

FetchExact = Callable[[Hashable], float]

#: Below this fan-out the columnar SUM selector runs its screen and sort in
#: pure Python off one ``tolist()``: numpy's reductions carry a fixed setup
#: cost that only amortises across enough elements (the paper's queries touch
#: 10 values; the columnar batch paths hand in hundreds).
_SCALAR_SELECT_LIMIT = 24


@dataclass
class QueryExecution:
    """Outcome of executing one bounded-aggregate query.

    Attributes
    ----------
    result_bound:
        The final interval bounding the aggregate (width <= the constraint,
        unless the constraint was unsatisfiable, which cannot happen since
        refreshing everything yields a zero-width bound).
    refreshed_keys:
        Keys whose exact values were fetched, in fetch order.
    constraint:
        The precision constraint the query carried.
    """

    result_bound: Interval
    refreshed_keys: List[Hashable]
    constraint: float

    @property
    def refresh_count(self) -> int:
        """Number of query-initiated refreshes this query caused."""
        return len(self.refreshed_keys)

    @property
    def satisfied(self) -> bool:
        """Whether the final bound meets the constraint."""
        return self.result_bound.width <= self.constraint


def select_sum_refreshes(
    intervals: Dict[Hashable, Interval], constraint: float
) -> List[Hashable]:
    """Return the keys a SUM query must refresh, widest first.

    The remaining (unrefreshed) intervals' total width must not exceed the
    constraint; refreshed intervals contribute zero width.
    """
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    # Fast path, O(n) with no sorting: when the total width is already within
    # the constraint the answer is empty.  Float addition is order-sensitive
    # and the exact semantics below sum in descending-width order, so the
    # unordered total is only trusted when it clears the constraint by more
    # than the worst-case reordering error (~n ulps of the total); anything
    # closer falls through to the exact path.  This is the common case for
    # satisfied queries in the simulator.
    isinf = math.isinf
    unbounded_count = 0
    unordered_total = 0.0
    for interval in intervals.values():
        width = interval.width
        if isinf(width):
            unbounded_count += 1
        else:
            unordered_total += width
    if not unbounded_count:
        reorder_margin = 4.0 * len(intervals) * 2.220446049250313e-16 * unordered_total
        if unordered_total + reorder_margin <= constraint:
            return []
    # Exact path: one stable decorated sort, widest first with ties in
    # mapping order.  The remaining total width is tracked as (number of
    # unbounded intervals, finite remainder) so that subtracting an infinite
    # width is well-defined; the finite remainder is accumulated over the
    # descending order — the residue it leaves after the subtraction loop
    # decides whether zero-width stragglers are refreshed under tight
    # constraints, so the summation order must match the sort.
    ordered = sorted(
        [
            (-interval.width, position, key)
            for position, (key, interval) in enumerate(intervals.items())
        ]
    )
    unbounded_remaining = 0
    finite_remaining = 0
    for negated_width, _, _ in ordered:
        if isinf(negated_width):
            unbounded_remaining += 1
        else:
            finite_remaining += -negated_width
    refreshes: List[Hashable] = []
    for negated_width, _, key in ordered:
        remaining = math.inf if unbounded_remaining else finite_remaining
        if remaining <= constraint:
            break
        refreshes.append(key)
        if isinf(negated_width):
            unbounded_remaining -= 1
        else:
            finite_remaining -= -negated_width
    return refreshes


def select_sum_refreshes_columnar(
    keys: Sequence[Hashable], widths: "np.ndarray", constraint: float
) -> List[Hashable]:
    """:func:`select_sum_refreshes` over a columnar width array.

    ``widths[i]`` is the cached interval width for ``keys[i]`` (``inf`` for
    unbounded/missing approximations), exactly the decoration the dict-based
    selector builds per call — here the columnar simulator core hands the
    array straight in.  Returns the identical key list: the fast screen's
    reordering margin covers numpy's pairwise summation as well as the
    sequential sum (either ordering deviates from the exact descending total
    by less than the margin), so a screen disagreement between the two
    implementations can only happen when the exact path returns ``[]``
    anyway, and the exact path below accumulates the same Python floats in
    the same descending-width order (``lexsort`` on ``(-width, position)``
    matches the decorated sort; positions are unique, so the key never
    tie-breaks).
    """
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    count = len(keys)
    if count < _SCALAR_SELECT_LIMIT:
        # Small fan-out: one C-level tolist() and the pure-Python screen/sort
        # beat the numpy reductions' fixed setup cost.  The screen total is
        # accumulated in position order — exactly the dict selector's
        # mapping-order sum — and the decorated sort matches the lexsort
        # below, so the selected keys are identical on every path.
        width_list = widths.tolist()
        isinf = math.isinf
        unbounded_count = 0
        unordered_total = 0.0
        for width in width_list:
            if isinf(width):
                unbounded_count += 1
            else:
                unordered_total += width
        if not unbounded_count:
            reorder_margin = (
                4.0 * count * 2.220446049250313e-16 * unordered_total
            )
            if unordered_total + reorder_margin <= constraint:
                return []
        order = [
            position
            for _, position in sorted(
                (-width_list[position], position) for position in range(count)
            )
        ]
    else:
        finite = np.isfinite(widths)
        if bool(finite.all()):
            unordered_total = float(widths.sum())
            reorder_margin = 4.0 * count * 2.220446049250313e-16 * unordered_total
            if unordered_total + reorder_margin <= constraint:
                return []
        order = np.lexsort((np.arange(count), -widths)).tolist()
        width_list = widths.tolist()
    isinf = math.isinf
    unbounded_remaining = 0
    finite_remaining = 0
    for position in order:
        width = width_list[position]
        if isinf(width):
            unbounded_remaining += 1
        else:
            finite_remaining += width
    refreshes: List[Hashable] = []
    for position in order:
        remaining = math.inf if unbounded_remaining else finite_remaining
        if remaining <= constraint:
            break
        refreshes.append(keys[position])
        width = width_list[position]
        if isinf(width):
            unbounded_remaining -= 1
        else:
            finite_remaining -= width
    return refreshes


def bounded_query_steps(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
) -> "Generator[Hashable, float, QueryExecution]":
    """Generator core of bounded-query execution: the single source of truth.

    Yields each key to refresh in fetch order; the driver sends back the
    fetched exact value, and the generator returns the completed
    :class:`QueryExecution` (result bound, refreshed keys) once the
    constraint holds.  Both the synchronous :func:`execute_bounded_query`
    (blocking ``fetch_exact``) and the serving layer's asynchronous driver
    (:mod:`repro.serving.execution`, awaiting a refresh RPC per step) drive
    this one implementation, so validation, selection, AVG scaling and
    result assembly cannot drift between the offline and online paths.
    """
    if not intervals:
        raise ValueError("a query must touch at least one value")
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    if math.isinf(constraint):
        return QueryExecution(
            result_bound=aggregate_bound(kind, list(intervals.values())),
            refreshed_keys=[],
            constraint=constraint,
        )
    if kind is AggregateKind.AVG:
        # AVG is SUM scaled by 1/n, so a constraint delta on the average
        # equals a constraint n * delta on the sum.
        count = len(intervals)
        scaled = yield from bounded_query_steps(
            AggregateKind.SUM, intervals, constraint * count
        )
        return QueryExecution(
            result_bound=scaled.result_bound.scale(1.0 / count),
            refreshed_keys=scaled.refreshed_keys,
            constraint=constraint,
        )
    if kind is AggregateKind.SUM:
        selected = select_sum_refreshes(intervals, constraint)
        if not selected:
            # Satisfied immediately — no refreshes, so no working copy needed.
            return QueryExecution(
                result_bound=aggregate_bound(
                    AggregateKind.SUM, list(intervals.values())
                ),
                refreshed_keys=[],
                constraint=constraint,
            )
        working = dict(intervals)
        refreshed: List[Hashable] = []
        for key in selected:
            exact = yield key
            working[key] = Interval.exact(exact)
            refreshed.append(key)
        return QueryExecution(
            result_bound=aggregate_bound(AggregateKind.SUM, list(working.values())),
            refreshed_keys=refreshed,
            constraint=constraint,
        )
    if kind in (AggregateKind.MAX, AggregateKind.MIN):
        working, refreshed = yield from extremum_refresh_steps(
            intervals, constraint, kind
        )
        return QueryExecution(
            result_bound=aggregate_bound(kind, list(working.values())),
            refreshed_keys=refreshed,
            constraint=constraint,
        )
    raise ValueError(f"unsupported aggregate kind: {kind!r}")


def extremum_refresh_steps(
    intervals: Dict[Hashable, Interval],
    constraint: float,
    kind: AggregateKind,
) -> "Generator[Hashable, float, Tuple[Dict[Hashable, Interval], List[Hashable]]]":
    """Generator core of the iterative extremum refresh selection.

    Yields each victim key in refresh order; the driver sends back the
    victim's exact value and the generator returns ``(working intervals,
    refreshed keys)`` once the constraint holds.  Factoring the selection
    into a generator lets one copy of the heap logic serve both the
    synchronous simulator (:func:`_extremum_refreshes` drives it with a
    blocking ``fetch_exact``) and the asynchronous serving layer
    (:mod:`repro.serving.execution` awaits each refresh RPC between steps).

    Instead of re-aggregating all n intervals per refresh iteration (O(n^2)
    per query), the two bound endpoints and the victim choice are tracked in
    lazy-invalidation heaps: a refresh pushes the victim's new exact endpoints
    and stale tuples are discarded when they surface, for O(n log n) total.
    The heap tuples carry each key's position in the input mapping so that
    width ties resolve exactly as the naive argmax/argmin over ``working``
    did (first key in mapping order wins).
    """
    working = dict(intervals)
    refreshed: List[Hashable] = []
    # For MAX the bound is [max L_i, max H_i] and the victim is the non-exact
    # interval reaching highest; MIN mirrors it at the low endpoints.  The
    # endpoint heaps hold (sign * endpoint, position, key) so that the heap
    # minimum is the bound endpoint; ``sign`` is -1 for maxima.
    sign = -1.0 if kind is AggregateKind.MAX else 1.0
    low_heap = []
    high_heap = []
    candidate_heap = []
    for position, (key, interval) in enumerate(working.items()):
        low_heap.append((sign * interval.low, position, key))
        high_heap.append((sign * interval.high, position, key))
        if not interval.is_exact:
            # The victim key: largest high for MAX, smallest low for MIN.
            victim_rank = -interval.high if kind is AggregateKind.MAX else interval.low
            candidate_heap.append((victim_rank, position, key))
    heapq.heapify(low_heap)
    heapq.heapify(high_heap)
    heapq.heapify(candidate_heap)

    def bound_endpoint(heap: List, endpoint: str) -> float:
        # Discard tuples whose stored endpoint no longer matches the working
        # interval (the key was refreshed since the tuple was pushed).
        while True:
            value, _, key = heap[0]
            if getattr(working[key], endpoint) == sign * value:
                return sign * value
            heapq.heappop(heap)

    while True:
        width = bound_endpoint(high_heap, "high") - bound_endpoint(low_heap, "low")
        if width <= constraint:
            break
        while candidate_heap and working[candidate_heap[0][2]].is_exact:
            heapq.heappop(candidate_heap)
        if not candidate_heap:
            break
        _, position, victim = heapq.heappop(candidate_heap)
        exact = yield victim
        working[victim] = Interval.exact(exact)
        refreshed.append(victim)
        heapq.heappush(low_heap, (sign * exact, position, victim))
        heapq.heappush(high_heap, (sign * exact, position, victim))
    return working, refreshed


def drive_refresh_steps(steps, fetch_exact: FetchExact):
    """Drive a refresh-step generator with a blocking ``fetch_exact``.

    The one synchronous driver shared by every generator core in this
    module; the serving layer's asynchronous twin lives in
    :mod:`repro.serving.execution` (it awaits a refresh RPC per step).
    """
    try:
        victim = next(steps)
        while True:
            victim = steps.send(fetch_exact(victim))
    except StopIteration as stop:
        return stop.value


def _extremum_refreshes(
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
    kind: AggregateKind,
) -> Tuple[Dict[Hashable, Interval], List[Hashable]]:
    """Drive :func:`extremum_refresh_steps` with a blocking ``fetch_exact``.

    Returns the post-refresh working intervals and the refreshed keys in
    fetch order; building the final result bound is left to the caller so
    the refresh-only path can skip it.
    """
    return drive_refresh_steps(
        extremum_refresh_steps(intervals, constraint, kind), fetch_exact
    )


def execute_bounded_query(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
) -> QueryExecution:
    """Execute a bounded aggregate, refreshing just enough approximations.

    A thin synchronous driver over :func:`bounded_query_steps` (the serving
    layer drives the same generator asynchronously).

    Parameters
    ----------
    kind:
        The aggregate function (SUM, MAX, MIN or AVG).
    intervals:
        Mapping of key to the currently cached interval for every value the
        query touches (missing cache entries should be passed as the
        unbounded interval).
    constraint:
        Maximum acceptable width of the result bound (``math.inf`` disables
        refreshing entirely).
    fetch_exact:
        Callback performing a query-initiated refresh of one key and
        returning the exact value.
    """
    return drive_refresh_steps(
        bounded_query_steps(kind, intervals, constraint), fetch_exact
    )


def run_query_refreshes(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
) -> None:
    """Perform a bounded query's refreshes without building its result bound.

    The simulator's hot loop only cares about a query's *side effects* — the
    query-initiated refreshes ``fetch_exact`` performs — and discards the
    :class:`QueryExecution`.  This entry point runs the exact same selection
    logic as :func:`execute_bounded_query` (identical keys fetched, in the
    same order, so every metric and random draw downstream is unchanged) but
    skips the working-copy and final-aggregate work that only exists to
    report the result bound.  Callers that need the bound must use
    :func:`execute_bounded_query`.
    """
    if not intervals:
        raise ValueError("a query must touch at least one value")
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    if math.isinf(constraint):
        return
    if kind is AggregateKind.SUM:
        for key in select_sum_refreshes(intervals, constraint):
            fetch_exact(key)
        return
    if kind in (AggregateKind.MAX, AggregateKind.MIN):
        _extremum_refreshes(intervals, constraint, fetch_exact, kind)
        return
    if kind is AggregateKind.AVG:
        # AVG is SUM scaled by 1/n: a constraint delta on the average equals
        # a constraint n * delta on the sum (see bounded_query_steps).
        scaled = constraint * len(intervals)
        for key in select_sum_refreshes(intervals, scaled):
            fetch_exact(key)
        return
    raise ValueError(f"unsupported aggregate kind: {kind!r}")
