"""Choosing which approximations a query must refresh (OW00-style).

A bounded-aggregate query over cached intervals succeeds immediately when the
width of its result bound is within the query's precision constraint
``delta``.  Otherwise, some of the contributing intervals must be refreshed
(their exact values fetched from the sources, each at cost ``C_qr``) until the
constraint holds.  After a refresh the contributing interval is exact, so its
contribution to the result width vanishes.

Two selection strategies are implemented, matching the paper's SUM and MAX
workloads:

* **SUM** — the result width is the sum of the contributing widths, so the
  cheapest way to meet the constraint is to refresh the widest intervals
  until the remaining total width is within ``delta``.  This choice is static
  (it does not depend on the fetched values), so it can be made up-front.
* **MAX** — the result bound is ``[max L_i, max H_i]``.  Knowing an exact
  value can raise the lower bound and thereby rule out other candidates, so
  refreshes are chosen iteratively: fetch the interval with the largest upper
  endpoint, recompute the bound, and repeat until the constraint holds.  This
  is why cached non-exact intervals remain useful for MAX even when queries
  demand exact answers (Section 4.4).

The functions below work against a ``fetch_exact`` callback supplied by the
simulator; the callback performs the actual query-initiated refresh (cost
accounting, new interval installation) and returns the exact value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Sequence

from repro.intervals.interval import Interval
from repro.queries.aggregates import AggregateKind, aggregate_bound

FetchExact = Callable[[Hashable], float]


@dataclass
class QueryExecution:
    """Outcome of executing one bounded-aggregate query.

    Attributes
    ----------
    result_bound:
        The final interval bounding the aggregate (width <= the constraint,
        unless the constraint was unsatisfiable, which cannot happen since
        refreshing everything yields a zero-width bound).
    refreshed_keys:
        Keys whose exact values were fetched, in fetch order.
    constraint:
        The precision constraint the query carried.
    """

    result_bound: Interval
    refreshed_keys: List[Hashable]
    constraint: float

    @property
    def refresh_count(self) -> int:
        """Number of query-initiated refreshes this query caused."""
        return len(self.refreshed_keys)

    @property
    def satisfied(self) -> bool:
        """Whether the final bound meets the constraint."""
        return self.result_bound.width <= self.constraint


def select_sum_refreshes(
    intervals: Dict[Hashable, Interval], constraint: float
) -> List[Hashable]:
    """Return the keys a SUM query must refresh, widest first.

    The remaining (unrefreshed) intervals' total width must not exceed the
    constraint; refreshed intervals contribute zero width.
    """
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    ordered = sorted(
        intervals.items(), key=lambda item: item[1].width, reverse=True
    )
    # Track the remaining total width as (number of unbounded intervals,
    # finite remainder) so that subtracting an infinite width is well-defined.
    unbounded_remaining = sum(1 for _, interval in ordered if math.isinf(interval.width))
    finite_remaining = sum(
        interval.width for _, interval in ordered if not math.isinf(interval.width)
    )
    refreshes: List[Hashable] = []
    for key, interval in ordered:
        remaining = math.inf if unbounded_remaining else finite_remaining
        if remaining <= constraint:
            break
        refreshes.append(key)
        if math.isinf(interval.width):
            unbounded_remaining -= 1
        else:
            finite_remaining -= interval.width
    return refreshes


def _execute_sum(
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
) -> QueryExecution:
    working = dict(intervals)
    refreshed: List[Hashable] = []
    for key in select_sum_refreshes(working, constraint):
        exact = fetch_exact(key)
        working[key] = Interval.exact(exact)
        refreshed.append(key)
    return QueryExecution(
        result_bound=aggregate_bound(AggregateKind.SUM, list(working.values())),
        refreshed_keys=refreshed,
        constraint=constraint,
    )


def _execute_extremum(
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
    kind: AggregateKind,
) -> QueryExecution:
    working = dict(intervals)
    refreshed: List[Hashable] = []
    while True:
        bound = aggregate_bound(kind, list(working.values()))
        if bound.width <= constraint:
            break
        candidates = [key for key, interval in working.items() if not interval.is_exact]
        if not candidates:
            break
        if kind is AggregateKind.MAX:
            # The interval reaching highest is the one keeping the bound wide.
            victim = max(candidates, key=lambda key: working[key].high)
        else:
            victim = min(candidates, key=lambda key: working[key].low)
        exact = fetch_exact(victim)
        working[victim] = Interval.exact(exact)
        refreshed.append(victim)
    return QueryExecution(
        result_bound=aggregate_bound(kind, list(working.values())),
        refreshed_keys=refreshed,
        constraint=constraint,
    )


def _execute_average(
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
) -> QueryExecution:
    # AVG is SUM scaled by 1/n, so a constraint delta on the average equals a
    # constraint n * delta on the sum.
    count = len(intervals)
    scaled = _execute_sum(intervals, constraint * count, fetch_exact)
    return QueryExecution(
        result_bound=scaled.result_bound.scale(1.0 / count),
        refreshed_keys=scaled.refreshed_keys,
        constraint=constraint,
    )


def execute_bounded_query(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: FetchExact,
) -> QueryExecution:
    """Execute a bounded aggregate, refreshing just enough approximations.

    Parameters
    ----------
    kind:
        The aggregate function (SUM, MAX, MIN or AVG).
    intervals:
        Mapping of key to the currently cached interval for every value the
        query touches (missing cache entries should be passed as the
        unbounded interval).
    constraint:
        Maximum acceptable width of the result bound (``math.inf`` disables
        refreshing entirely).
    fetch_exact:
        Callback performing a query-initiated refresh of one key and
        returning the exact value.
    """
    if not intervals:
        raise ValueError("a query must touch at least one value")
    if constraint < 0:
        raise ValueError("constraint must be non-negative")
    if math.isinf(constraint):
        return QueryExecution(
            result_bound=aggregate_bound(kind, list(intervals.values())),
            refreshed_keys=[],
            constraint=constraint,
        )
    if kind is AggregateKind.SUM:
        return _execute_sum(intervals, constraint, fetch_exact)
    if kind in (AggregateKind.MAX, AggregateKind.MIN):
        return _execute_extremum(intervals, constraint, fetch_exact, kind)
    if kind is AggregateKind.AVG:
        return _execute_average(intervals, constraint, fetch_exact)
    raise ValueError(f"unsupported aggregate kind: {kind!r}")
