"""Query workload generation.

The paper's simulated workload (Section 4.1 / 4.3) executes one query every
``T_q`` seconds at the cache.  Each query computes either the SUM or the MAX
of the values hosted by a randomly chosen subset of sources (10 of the 50
hosts for the network-monitoring experiments) and carries a precision
constraint drawn from the configured constraint distribution.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.queries.aggregates import AggregateKind
from repro.queries.constraints import PrecisionConstraintGenerator


class Query:
    """One bounded-aggregate query issued at the cache.

    A ``__slots__`` value object (one is created per simulated query tick).
    """

    __slots__ = ("time", "kind", "keys", "constraint")

    def __init__(
        self,
        time: float,
        kind: AggregateKind,
        keys: Tuple[Hashable, ...],
        constraint: float,
    ) -> None:
        if not keys:
            raise ValueError("a query must touch at least one key")
        if constraint < 0:
            raise ValueError("constraint must be non-negative")
        if time < 0:
            raise ValueError("query time must be non-negative")
        self.time = time
        self.kind = kind
        self.keys = keys
        self.constraint = constraint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Query(time={self.time!r}, kind={self.kind!r}, "
            f"keys={self.keys!r}, constraint={self.constraint!r})"
        )


class QueryWorkload:
    """Generates the periodic bounded-aggregate query stream.

    Parameters
    ----------
    keys:
        The population of value identifiers queries can touch.
    period:
        ``T_q`` — seconds between consecutive queries.
    constraint_generator:
        Source of per-query precision constraints.
    query_size:
        Number of distinct values each query touches (10 in the paper's
        network experiments; clamped to the population size).
    aggregates:
        The aggregate kinds to alternate among, chosen uniformly at random
        per query (the paper uses SUM or MAX; single-kind workloads pass a
        one-element sequence).
    rng:
        Randomness source (pass a seeded instance for reproducibility).
    """

    def __init__(
        self,
        keys: Sequence[Hashable],
        period: float,
        constraint_generator: PrecisionConstraintGenerator,
        query_size: int = 10,
        aggregates: Sequence[AggregateKind] = (AggregateKind.SUM,),
        rng: Optional[random.Random] = None,
    ) -> None:
        if not keys:
            raise ValueError("the workload needs at least one key")
        if period <= 0:
            raise ValueError("query period (T_q) must be positive")
        if query_size < 1:
            raise ValueError("query_size must be at least 1")
        if not aggregates:
            raise ValueError("at least one aggregate kind is required")
        self._keys = list(keys)
        self._period = float(period)
        self._constraints = constraint_generator
        self._query_size = min(query_size, len(self._keys))
        self._aggregates = list(aggregates)
        self._rng = rng if rng is not None else random.Random()

    @property
    def period(self) -> float:
        """Seconds between queries (``T_q``)."""
        return self._period

    @property
    def query_size(self) -> int:
        """Number of values each query touches."""
        return self._query_size

    @property
    def constraint_generator(self) -> PrecisionConstraintGenerator:
        """The constraint distribution used by this workload."""
        return self._constraints

    def query_times(self, duration: float) -> List[float]:
        """Return all query instants in ``(0, duration]``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        times = []
        time = self._period
        while time <= duration + 1e-9:
            times.append(round(time, 9))
            time += self._period
        return times

    def generate(self, time: float) -> Query:
        """Generate the query issued at ``time``."""
        keys = tuple(self._rng.sample(self._keys, self._query_size))
        kind = self._rng.choice(self._aggregates)
        constraint = self._constraints.sample()
        return Query(time=time, kind=kind, keys=keys, constraint=constraint)
