"""repro.serving — the online serving layer.

The paper's environment is inherently *online*: caches answer
precision-bounded queries over live-updating sources, pulling exact values
only when a query's constraint cannot be met from cached intervals.  The
simulator replays that environment offline; this package serves it for real:

* :mod:`repro.serving.protocol` — the length-prefixed JSON wire format,
* :mod:`repro.serving.transport` — frame transports over TCP streams or an
  in-process loopback (so tests and CI run server plus clients
  deterministically without sockets),
* :mod:`repro.serving.execution` — asynchronous bounded-query execution
  reusing the offline refresh-selection logic,
* :mod:`repro.serving.server` — the asyncio cache server: ``update`` RPCs
  from source feeders, ``query`` RPCs from clients (refresh RPCs are issued
  back to the owning feeder connection when needed), ``stats``, admission
  control and bounded per-connection write queues,
* :mod:`repro.serving.loadgen` — the trace-replay load harness, with a
  deterministic mode reproducing the offline simulator's refresh counts and
  hit rate exactly, and a concurrent mode measuring latency percentiles and
  throughput.

CLI entry points: ``repro serve`` and ``repro loadgen``; the
``serving_throughput`` experiment sweeps client counts on the loopback
transport.  See ``docs/SERVING.md``.
"""

from repro.serving.loadgen import (
    LoadgenReport,
    replay_trace_concurrent,
    replay_trace_deterministic,
)
from repro.serving.server import CacheServer, ServingStatistics
from repro.serving.transport import (
    LoopbackFrameTransport,
    StreamFrameTransport,
    loopback_pair,
)

__all__ = [
    "CacheServer",
    "ServingStatistics",
    "LoadgenReport",
    "replay_trace_deterministic",
    "replay_trace_concurrent",
    "LoopbackFrameTransport",
    "StreamFrameTransport",
    "loopback_pair",
]
