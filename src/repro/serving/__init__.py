"""repro.serving — the online serving layer.

The paper's environment is inherently *online*: caches answer
precision-bounded queries over live-updating sources, pulling exact values
only when a query's constraint cannot be met from cached intervals.  The
simulator replays that environment offline; this package serves it for real:

* :mod:`repro.serving.protocol` — the length-prefixed JSON wire format and
  the typed request/response dataclasses (wire-format byte-identical to the
  raw dicts they replaced),
* :mod:`repro.serving.transport` — frame transports over TCP streams or an
  in-process loopback (so tests and CI run server plus clients
  deterministically without sockets),
* :mod:`repro.serving.api` — the one typed client (:class:`Client`), target
  dialing (``tcp://``, ``ws://``, loopback) and the :class:`ServeConfig`
  deployment description every ``repro serve`` role is built from,
* :mod:`repro.serving.execution` — asynchronous bounded-query execution
  reusing the offline refresh-selection logic,
* :mod:`repro.serving.server` — the asyncio cache server: ``update`` RPCs
  from source feeders, ``query`` RPCs from clients (refresh RPCs are issued
  back to the owning feeder connection when needed), ``stats``, admission
  control and bounded per-connection write queues,
* :mod:`repro.serving.gateway` — the partitioned front-end: stable-hash key
  routing across N partition servers, feeder tunnelling, global policy-free
  refresh selection (serialized replay is bit-identical to the offline
  simulator at any partition count), partition supervision and resync,
* :mod:`repro.serving.procs` — partition/gateway worker processes
  (:class:`ProcessPartitionPool`, :class:`ServerProcess`),
* :mod:`repro.serving.http` — the stdlib HTTP/1.1 + RFC 6455 WebSocket
  edge (``GET /ws`` carries the full duplex protocol; ``POST /query``,
  ``GET /stats``, ``GET /healthz`` wrap one-shot operations),
* :mod:`repro.serving.loadgen` — the trace-replay load harness:
  deterministic mode reproducing the offline simulator's numbers exactly,
  concurrent mode measuring latency percentiles and throughput, and
  open-loop mode firing seeded arrival schedules (steady/ramp/flash, Zipf
  key popularity) at any dialable target.

CLI entry points: ``repro serve --role {single,gateway,partition}`` and
``repro loadgen``; the ``serving_throughput`` experiment sweeps client
counts on the loopback transport and ``serving_partition_sweep`` sweeps
whole multi-process deployments.  See ``docs/SERVING.md``.
"""

from repro.serving.api import Client, ServeConfig, dial
from repro.serving.gateway import GatewayServer
from repro.serving.http import HttpEdge, connect_websocket
from repro.serving.loadgen import (
    LoadgenReport,
    MultiTargetDialer,
    OpenLoopProfile,
    dialer_for_target,
    replay_trace_concurrent,
    replay_trace_deterministic,
    run_open_loop,
)
from repro.serving.procs import ProcessPartitionPool, ServerProcess
from repro.serving.server import CacheServer, ServingStatistics
from repro.serving.transport import (
    LoopbackFrameTransport,
    StreamFrameTransport,
    loopback_pair,
)

__all__ = [
    "CacheServer",
    "Client",
    "GatewayServer",
    "HttpEdge",
    "LoadgenReport",
    "LoopbackFrameTransport",
    "MultiTargetDialer",
    "OpenLoopProfile",
    "ProcessPartitionPool",
    "ServeConfig",
    "ServerProcess",
    "ServingStatistics",
    "StreamFrameTransport",
    "connect_websocket",
    "dial",
    "dialer_for_target",
    "loopback_pair",
    "replay_trace_concurrent",
    "replay_trace_deterministic",
    "run_open_loop",
]
