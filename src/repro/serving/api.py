"""The one typed client API for the serving fabric.

:class:`Client` is the single front door to every serving deployment shape:

* **loopback** — pass a :class:`~repro.serving.server.CacheServer` or
  :class:`~repro.serving.gateway.GatewayServer` (anything with a
  ``connect()``) and the client dials it in-process;
* **TCP** — pass ``"tcp://host:port"`` (a ``repro serve`` endpoint);
* **WebSocket** — pass ``"ws://host:port/ws"`` (the HTTP edge), and the
  same length-free JSON messages ride RFC 6455 text frames.

One background task reads frames and demultiplexes them: responses resolve
the matching pending request future; requests — the server's ``refresh``
RPCs on feeder connections — are answered by the ``on_refresh`` callback.
Requests and responses are the typed messages of
:mod:`repro.serving.protocol`; :meth:`Client.call` sends any typed request
and the typed helpers (:meth:`query`, :meth:`register`, ...) parse the
reply into its typed response.

The pre-gateway entry point, ``repro.serving.loadgen.ServingClient``, still
works as a thin deprecation shim over this class.

Also here: :class:`ServeConfig`, the one dataclass describing a serving
deployment (role, partitions, ports) that the CLI builds from its flags.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    Hashable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.queries.aggregates import AggregateKind
from repro.serving.durability import DEFAULT_CHECKPOINT_EVERY, FSYNC_POLICIES
from repro.serving.errors import (
    ConnectionLost,
    DeadlineExceeded,
    RequestRejected,
    StaleEpochError,
)
from repro.serving.protocol import (
    BoundedAnswer,
    ProtocolError,
    QueryRequest,
    Refresh,
    RefreshValue,
    RegisterAck,
    RegisterFeeder,
    MetricsRequest,
    Request,
    StatsRequest,
    Update,
    UpdateAck,
    UpdateBatch,
    UpdateBatchAck,
    error_response,
    is_request,
    query_fields,
    update_batch_fields,
)

#: Distinguishes "no per-call deadline given" (use the client default) from
#: an explicit ``deadline=None`` (wait forever).
_UNSET_DEADLINE = object()

#: ``on_refresh``: given a key, return its current exact value (sync or
#: async).  Raise ``KeyError`` for a key the feeder does not own.
RefreshHandler = Callable[[Hashable], Union[float, Awaitable[float]]]


class Client:
    """A typed serving-protocol client over any frame transport.

    Construction goes through :meth:`connect` (dial a server, URL, or
    dialer) or :meth:`from_transport` (wrap an already-connected frame
    transport and start the read loop).
    """

    def __init__(
        self,
        transport: Any,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
        default_deadline: Optional[float] = None,
    ) -> None:
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        self._transport = transport
        self._on_request = on_request
        self._default_deadline = default_deadline
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.Task] = None
        self._request_tasks: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def from_transport(
        cls,
        transport: Any,
        *,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
        on_refresh: Optional[RefreshHandler] = None,
        default_deadline: Optional[float] = None,
    ) -> "Client":
        """Wrap a connected transport and start its read loop.

        ``on_refresh`` is the feeder-role callback answering the server's
        ``refresh`` RPCs; ``on_request`` is the raw frame-level handler for
        callers that need full control (at most one of the two).
        """
        if on_refresh is not None:
            if on_request is not None:
                raise ValueError("pass on_refresh or on_request, not both")
            on_request = _refresh_responder(on_refresh)
        client = cls(transport, on_request, default_deadline)
        client._reader = asyncio.ensure_future(client._read_loop())
        return client

    @classmethod
    async def connect(
        cls,
        target: Any,
        *,
        on_refresh: Optional[RefreshHandler] = None,
        default_deadline: Optional[float] = None,
    ) -> "Client":
        """Dial ``target`` and return a connected client.

        ``target`` may be a server object or dialer (anything with a
        ``connect()`` returning a frame transport, sync or async), a
        ``"tcp://host:port"`` / ``"ws://host:port/path"`` URL, or a
        ``(host, port)`` tuple (TCP).
        """
        transport = await dial(target)
        return await cls.from_transport(
            transport, on_refresh=on_refresh, default_deadline=default_deadline
        )

    # ------------------------------------------------------------------
    # Demultiplexing read loop
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    frame = await self._transport.read_frame()
                except ProtocolError:
                    # A corrupt frame ends the session like an EOF would;
                    # pending and future requests fail instead of hanging.
                    break
                if frame is None:
                    break
                if is_request(frame):
                    # Requests are answered as tasks so this loop keeps
                    # delivering responses while a handler runs.  A gateway
                    # upstream link depends on this: a partition's refresh
                    # RPC (a request) may be in flight on the same link as
                    # an update ack (a response) that the refresh
                    # transitively waits on — answering inline would
                    # deadlock the cycle.
                    task = asyncio.ensure_future(self._answer_request(frame))
                    self._request_tasks.add(task)
                    task.add_done_callback(self._request_tasks.discard)
                else:
                    future = self._pending.pop(frame.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        finally:
            # Whatever ended the loop (EOF, corrupt frame, a failing
            # on_request handler), close the transport so the *server* side
            # observes EOF and tears the connection down — otherwise a
            # zombie feeder would swallow refresh RPCs forever.
            self._transport.close()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionLost("serving connection closed"))
            self._pending.clear()

    async def _answer_request(self, frame: Dict[str, Any]) -> None:
        try:
            if self._on_request is None:
                reply = error_response(frame.get("id"), "client serves no requests")
            else:
                reply = await self._on_request(frame)
                reply.setdefault("id", frame.get("id"))
                reply.setdefault("ok", True)
            await self._transport.write_frame(reply)
        except (ConnectionLost, ConnectionResetError, BrokenPipeError, OSError):
            pass
        except Exception:
            # A failing handler ends the session, exactly as it did when
            # requests were answered inline in the read loop (the closed
            # transport EOFs the read loop, which fails pending requests).
            self._transport.close()

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    async def request(
        self, op: str, deadline: Any = _UNSET_DEADLINE, **fields: Any
    ) -> Dict[str, Any]:
        """Send one raw request and await its decoded response frame.

        ``deadline`` (seconds; default: the client's ``default_deadline``,
        ``None`` = wait forever) bounds the wait for the response; missing
        it raises :class:`~repro.serving.errors.DeadlineExceeded` and drops
        the late response if it ever arrives.  Error replies raise
        :class:`~repro.serving.errors.RequestRejected` (or its
        :class:`~repro.serving.errors.StaleEpochError` refinement); dead
        connections raise :class:`~repro.serving.errors.ConnectionLost`.
        """
        if self._reader is not None and self._reader.done():
            # The read loop is gone (EOF or corrupt frame): nothing can ever
            # resolve a new future, so fail fast instead of hanging.
            raise ConnectionLost("serving connection closed")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._transport.write_frame({"op": op, "id": request_id, **fields})
        except ConnectionLost:
            self._pending.pop(request_id, None)
            raise
        except (ConnectionResetError, BrokenPipeError) as exc:
            self._pending.pop(request_id, None)
            raise ConnectionLost(str(exc)) from exc
        limit = self._default_deadline if deadline is _UNSET_DEADLINE else deadline
        if limit is None:
            response = await future
        else:
            try:
                response = await asyncio.wait_for(future, limit)
            except asyncio.TimeoutError:
                self._pending.pop(request_id, None)
                raise DeadlineExceeded(
                    f"{op} missed its {limit:g}s deadline"
                ) from None
        if not response.get("ok", True) and not response.get("overloaded"):
            error = f"{op} failed: {response.get('error')}"
            if response.get("stale_epoch"):
                raise StaleEpochError(error)
            raise RequestRejected(error)
        return response

    async def call(
        self, message: Request, deadline: Any = _UNSET_DEADLINE
    ) -> Dict[str, Any]:
        """Send one typed request and await its decoded response frame."""
        fields = message.wire_fields()
        return await self.request(message.OP, deadline, **fields)

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    async def query(
        self,
        keys: Sequence[Hashable],
        *,
        aggregate: AggregateKind = AggregateKind.SUM,
        constraint: float = float("inf"),
        time: Optional[float] = None,
        deadline: Any = _UNSET_DEADLINE,
    ) -> BoundedAnswer:
        """One bounded aggregate; raises ``RequestRejected`` on overload."""
        # Hot path: build the wire fields directly (byte-identical to the
        # ``QueryRequest`` codec, pinned in ``tests/test_protocol_typed.py``).
        response = await self.request(
            QueryRequest.OP, deadline, **query_fields(keys, aggregate, constraint, time)
        )
        if response.get("overloaded"):
            raise RequestRejected(f"query rejected: {response.get('error')}")
        return BoundedAnswer.from_wire(response)

    async def register(
        self,
        keys: Sequence[Hashable],
        values: Sequence[float],
        *,
        feeder: Optional[str] = None,
        resync: bool = False,
        time: Optional[float] = None,
        deadline: Any = _UNSET_DEADLINE,
    ) -> RegisterAck:
        """Register (or resync) this connection as the feeder of ``keys``."""
        request = RegisterFeeder(
            keys=tuple(keys),
            values=tuple(values),
            feeder=feeder,
            resync=resync,
            time=time,
        )
        return RegisterAck.from_wire(await self.call(request, deadline))

    async def update(
        self,
        key: Hashable,
        value: float,
        *,
        time: Optional[float] = None,
        deadline: Any = _UNSET_DEADLINE,
    ) -> UpdateAck:
        """Push one source update."""
        request = Update(key=key, value=value, time=time)
        return UpdateAck.from_wire(await self.call(request, deadline))

    async def update_batch(
        self,
        updates: Sequence[Tuple[Hashable, float]],
        *,
        time: Optional[float] = None,
        deadline: Any = _UNSET_DEADLINE,
    ) -> UpdateBatchAck:
        """Push one instant's update batch."""
        response = await self.request(
            UpdateBatch.OP, deadline, **update_batch_fields(updates, time)
        )
        return UpdateBatchAck.from_wire(response)

    async def stats(self, deadline: Any = _UNSET_DEADLINE) -> Dict[str, Any]:
        """The server's statistics snapshot (a plain mapping)."""
        return await self.call(StatsRequest(), deadline)

    async def metrics(self, deadline: Any = _UNSET_DEADLINE) -> Dict[str, Any]:
        """The server's metrics-registry snapshot (``repro.obs`` shape).

        A gateway answers with its own registry merged with every routable
        partition's; a partition answers with its local registry alone.
        The reply is empty (``{"metrics": []}``) when metrics are disabled.
        """
        return await self.call(MetricsRequest(), deadline)

    async def subscribe_stats(
        self, period: float, *, count: Optional[int] = None
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield a stats snapshot every ``period`` seconds (``count`` caps it).

        Polling, not server push — the protocol stays request/response —
        but the generator shape is what a dashboard consumes.  Stops
        cleanly when the connection dies.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        remaining = count
        while remaining is None or remaining > 0:
            try:
                yield await self.stats()
            except ConnectionLost:
                return
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    return
            await asyncio.sleep(period)

    async def close(self) -> None:
        """Close the transport and wait for the read loop to finish.

        A read loop that died on a transport error must not re-raise here:
        close() runs in ``finally`` blocks whose primary error would be
        masked, and every sibling client still deserves its close.
        """
        self._transport.close()
        if self._reader is not None:
            await asyncio.gather(self._reader, return_exceptions=True)
        if self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        await self._transport.wait_closed()


def _refresh_responder(
    on_refresh: RefreshHandler,
) -> Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]:
    """Adapt a value-returning refresh callback into a frame handler."""

    async def respond(frame: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = Refresh.from_wire(frame)
            value = on_refresh(request.key)
            if inspect.isawaitable(value):
                value = await value
        except (KeyError, ProtocolError) as exc:
            return error_response(frame.get("id"), f"unknown key: {exc}")
        return RefreshValue(value=float(value)).to_wire()

    return respond


async def dial(target: Any) -> Any:
    """Resolve ``target`` into one connected frame transport.

    Accepts a server/dialer object (``connect()``, sync or async), a
    ``tcp://`` or ``ws://`` URL, a bare ``"host:port"`` string (TCP), or a
    ``(host, port)`` tuple.
    """
    if isinstance(target, str):
        return await _dial_url(target)
    if isinstance(target, tuple) and len(target) == 2:
        host, port = target
        return await _dial_url(f"tcp://{host}:{port}")
    connect = getattr(target, "connect", None)
    if connect is None:
        raise TypeError(f"cannot dial {target!r}: no connect() and not a URL")
    transport = connect()
    if inspect.isawaitable(transport):
        transport = await transport
    return transport


async def _dial_url(url: str) -> Any:
    from repro.serving.transport import StreamFrameTransport

    if url.startswith("ws://") or url.startswith("wss://"):
        from repro.serving.http import connect_websocket

        return await connect_websocket(url)
    if url.startswith("tcp://"):
        url = url[len("tcp://") :]
    host, _, port = url.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"cannot parse serving target {url!r} as host:port")
    reader, writer = await asyncio.open_connection(host, int(port))
    return StreamFrameTransport(reader, writer)


# ---------------------------------------------------------------------------
# Deployment description
# ---------------------------------------------------------------------------

SERVE_ROLES = ("single", "gateway", "partition")


@dataclass(frozen=True)
class ServeConfig:
    """One serving deployment, as the CLI's ``repro serve`` builds it.

    ``role``:

    * ``single`` — one :class:`CacheServer` on ``host:port`` (the pre-
      gateway behaviour, and the default);
    * ``gateway`` — a :class:`GatewayServer` on ``host:port`` fronting
      ``partitions`` CacheServer processes it spawns and supervises;
    * ``partition`` — one CacheServer meant to sit *behind* a gateway
      (identical wire surface to ``single``; the distinct role keeps
      intent explicit in process listings and scripts).

    ``http_port`` additionally serves the HTTP/WebSocket edge on the same
    backend (``0``/``None`` disables it).

    ``wal_dir`` makes the partition state durable: every state-mutating op
    is appended to a per-partition write-ahead log under that directory and
    periodically folded into a snapshot checkpoint (every
    ``checkpoint_every`` records), so a SIGKILLed partition recovers its
    exact state on restart.  ``wal_fsync`` picks the flush policy
    (``always`` / ``checkpoint`` / ``never`` — see
    :mod:`repro.serving.durability`).

    The observability knobs (:mod:`repro.obs`) — ``metrics`` enables the
    process metrics registry (scrapeable via ``GET /metrics`` on the HTTP
    edge and the ``metrics`` protocol op), ``trace`` the deterministic
    span tracer, ``flightrec_dir`` crash flight-recorder dumps;
    ``log_level``/``log_file`` configure JSON-lines logging.  All reach
    spawned partition processes too (:mod:`repro.serving.procs`).
    """

    role: str = "single"
    host: str = "127.0.0.1"
    port: int = 9200
    http_port: Optional[int] = None
    partitions: int = 1
    shards: int = 1
    capacity: Optional[int] = None
    cost_factor: float = 1.0
    seed: int = 0
    max_inflight: int = 64
    wal_dir: Optional[str] = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    wal_fsync: str = "checkpoint"
    metrics: bool = False
    trace: bool = False
    flightrec_dir: Optional[str] = None
    log_level: Optional[str] = None
    log_file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.role not in SERVE_ROLES:
            raise ValueError(
                f"role must be one of {SERVE_ROLES}, not {self.role!r}"
            )
        if self.partitions < 1:
            raise ValueError("partitions must be at least 1")
        if self.role != "gateway" and self.partitions != 1:
            raise ValueError("--partitions applies to the gateway role only")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.wal_fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"wal_fsync must be one of {FSYNC_POLICIES}, not "
                f"{self.wal_fsync!r}"
            )
        if self.log_level is not None:
            from repro.obs.logging import LOG_LEVELS

            if self.log_level.lower() not in LOG_LEVELS:
                raise ValueError(
                    f"log_level must be one of {sorted(LOG_LEVELS)}, not "
                    f"{self.log_level!r}"
                )


def deprecated_entry_point(old: str, new: str) -> None:
    """Emit the standard migration warning for a pre-gateway entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} (see docs/SERVING.md, API migration)",
        DeprecationWarning,
        stacklevel=3,
    )
