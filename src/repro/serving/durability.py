"""Durable partition state: an append-only WAL plus snapshot checkpoints.

A partition that dies must come back holding the same state an
uninterrupted run would hold — the paper's containment contract ("answers
may widen but never go wrong") is only worth anything if a restart cannot
silently forget published intervals.  :class:`PartitionDurability` gives a
:class:`~repro.serving.server.CacheServer` two files in a WAL directory:

``partition-<i>.wal``
    An append-only log of every state-mutating operation the partition
    applies, in apply order.  Each record is a CRC-framed JSON payload::

        >II header  =  (payload length, zlib.crc32(payload))

    stamped with a monotonic sequence number ``n`` plus the op's resolved
    logical-clock time and feeder epoch, so replaying the records through
    the server's own apply paths reconstructs the partition — sources,
    published intervals, cache, drift model, statistics and the policy's
    RNG stream — exactly.

``partition-<i>.snapshot``
    A periodic checkpoint: the pickled durable state, CRC-framed the same
    way, written scratch-then-:func:`os.replace` (the trace-cache pattern)
    so a crash mid-checkpoint leaves the previous snapshot intact.  The
    snapshot records the WAL sequence it covers; a successful checkpoint
    truncates the log, and recovery skips any WAL record the snapshot
    already contains — so a crash *between* the replace and the truncate
    still recovers exactly once.

**Torn tails.**  A crash can tear the last WAL record (short frame, CRC
mismatch, clipped JSON).  Recovery keeps every intact prefix record,
quarantines the bad tail bytes as ``<wal>.corrupt`` (mirroring the
trace-cache quarantine) and truncates the log at the corruption point, so
the next append continues a valid log.

**Fsync policy.**  ``fsync`` is a durability/latency trade:

* ``"always"`` — fsync after every record: survives power loss, slowest.
* ``"checkpoint"`` — flush every record to the kernel (survives process
  crashes, e.g. SIGKILL) and fsync only at checkpoints: the default.
* ``"never"`` — flush to the kernel only, never fsync: fastest; still
  crash-safe for process death, not for host power loss.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import uuid
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY, SIZE_BUCKETS

#: Framed size of each appended WAL record, in bytes.  A process-registry
#: histogram (one handle shared by every partition in the process; in the
#: pool deployment each partition process labels its own registry), sized
#: by the power-of-two buckets — record frames are tens to hundreds of
#: bytes, checkpoint-bound registration records reach the kilobyte range.
_WAL_RECORD_BYTES = REGISTRY.histogram(
    "repro_wal_record_bytes",
    "Framed size of each WAL record appended.",
    buckets=SIZE_BUCKETS,
)

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "FSYNC_POLICIES",
    "PartitionDurability",
    "WalCorruption",
]

#: Frame header on every WAL record and on the snapshot payload:
#: big-endian (payload length, CRC-32 of the payload bytes).
RECORD_HEADER = struct.Struct(">II")

#: Take a checkpoint after this many WAL records by default.
DEFAULT_CHECKPOINT_EVERY = 256

FSYNC_POLICIES = ("always", "checkpoint", "never")


class WalCorruption(Exception):
    """Internal: the WAL is unreadable past a given byte offset."""

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"WAL corrupt at byte {offset}: {reason}")
        self.offset = offset
        self.reason = reason


def _encode_record(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _quarantine(path: Path, tail: bytes) -> None:
    """Preserve corrupt bytes as ``<name>.corrupt`` (best effort)."""
    try:
        path.with_name(f"{path.name}.corrupt").write_bytes(tail)
    except OSError:  # pragma: no cover - a full/read-only WAL dir
        pass


class PartitionDurability:
    """The WAL + checkpoint pair for one partition.

    The owning server calls :meth:`load` once at construction (recovering
    snapshot and surviving records, truncating any torn tail), replays the
    records through its own apply paths, then :meth:`append`\\ s one record
    per applied op and calls :meth:`checkpoint` whenever
    :attr:`checkpoint_due` says the log has grown past ``checkpoint_every``
    records.
    """

    def __init__(
        self,
        directory: Any,
        partition_index: int = 0,
        *,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        fsync: str = "checkpoint",
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, not {fsync!r}")
        self.directory = Path(directory)
        self.partition_index = partition_index
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.wal_path = self.directory / f"partition-{partition_index}.wal"
        self.snapshot_path = self.directory / f"partition-{partition_index}.snapshot"
        self._file: Optional[Any] = None
        self._sequence = 0  # last assigned/observed record sequence number
        self._records_since_checkpoint = 0
        # Counters surfaced through the server's stats op.
        self.records_appended = 0
        self.bytes_appended = 0
        self.records_replayed = 0
        self.snapshot_restored = False
        self.checkpoints_taken = 0
        self.torn_tails = 0
        self.last_checkpoint_clock: Optional[float] = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[Any], List[Dict[str, Any]]]:
        """Open the WAL directory and return ``(snapshot_state, records)``.

        ``snapshot_state`` is whatever object the last :meth:`checkpoint`
        persisted (``None`` when there is no usable snapshot); ``records``
        are the decoded WAL records *after* the snapshot's sequence, in
        append order.  A torn tail is truncated and quarantined here, and
        leftover checkpoint scratch files from a crash mid-write are
        removed, so the WAL is ready for :meth:`append` when this returns.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        for scratch in self.directory.glob(f"{self.snapshot_path.name}.*.tmp"):
            try:
                scratch.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
        state = self._load_snapshot()
        records = self._load_wal()
        snapshot_seq = self._sequence
        live = [record for record in records if record.get("n", 0) > snapshot_seq]
        if records:
            self._sequence = max(snapshot_seq, records[-1].get("n", 0))
        self._records_since_checkpoint = len(live)
        self.records_replayed = len(live)
        self._file = open(self.wal_path, "ab")
        return state, live

    def _load_snapshot(self) -> Optional[Any]:
        try:
            blob = self.snapshot_path.read_bytes()
        except OSError:
            return None
        try:
            if len(blob) < RECORD_HEADER.size:
                raise ValueError("snapshot shorter than its header")
            length, crc = RECORD_HEADER.unpack_from(blob)
            payload = blob[RECORD_HEADER.size : RECORD_HEADER.size + length]
            if len(payload) != length or zlib.crc32(payload) != crc:
                raise ValueError("snapshot payload fails its CRC")
            envelope = pickle.loads(payload)
            self._sequence = int(envelope["sequence"])
            self.last_checkpoint_clock = envelope.get("clock")
            self.snapshot_restored = True
            return envelope["state"]
        except Exception:
            # A snapshot that reads but does not parse is quarantined like
            # a torn trace-cache file; recovery falls back to the WAL.
            _quarantine(self.snapshot_path, blob)
            try:
                self.snapshot_path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
            return None

    def _load_wal(self) -> List[Dict[str, Any]]:
        try:
            blob = self.wal_path.read_bytes()
        except OSError:
            return []
        records: List[Dict[str, Any]] = []
        offset = 0
        try:
            while offset < len(blob):
                if offset + RECORD_HEADER.size > len(blob):
                    raise WalCorruption(offset, "torn record header")
                length, crc = RECORD_HEADER.unpack_from(blob, offset)
                start = offset + RECORD_HEADER.size
                payload = blob[start : start + length]
                if len(payload) != length:
                    raise WalCorruption(offset, "torn record payload")
                if zlib.crc32(payload) != crc:
                    raise WalCorruption(offset, "record payload fails its CRC")
                try:
                    records.append(json.loads(payload.decode("utf-8")))
                except ValueError as exc:
                    raise WalCorruption(offset, f"undecodable record: {exc}") from None
                offset = start + length
        except WalCorruption:
            self.torn_tails += 1
            _quarantine(self.wal_path, blob[offset:])
            with open(self.wal_path, "r+b") as wal:
                wal.truncate(offset)
        return records

    # ------------------------------------------------------------------
    # The append path
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Write one op record (write-ahead: call *before* applying)."""
        if self._file is None:
            raise RuntimeError("durability not loaded; call load() first")
        self._sequence += 1
        frame = _encode_record({"n": self._sequence, **record})
        self._file.write(frame)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self.records_appended += 1
        self.bytes_appended += len(frame)
        self._records_since_checkpoint += 1
        _WAL_RECORD_BYTES.observe(float(len(frame)))

    @property
    def checkpoint_due(self) -> bool:
        return self._records_since_checkpoint >= self.checkpoint_every

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, state: Any, clock: float) -> None:
        """Atomically persist ``state`` and truncate the log it covers.

        The scratch-then-``os.replace`` write means a crash mid-checkpoint
        leaves the old snapshot; the sequence stamp means a crash *after*
        the replace but *before* the truncate double-applies nothing.
        """
        if self._file is None:
            raise RuntimeError("durability not loaded; call load() first")
        payload = pickle.dumps(
            {"sequence": self._sequence, "clock": clock, "state": state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        scratch = self.snapshot_path.with_name(
            f"{self.snapshot_path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        with open(scratch, "wb") as out:
            out.write(blob)
            if self.fsync in ("always", "checkpoint"):
                out.flush()
                os.fsync(out.fileno())
        os.replace(scratch, self.snapshot_path)
        self._file.truncate(0)
        self._file.seek(0)
        self._records_since_checkpoint = 0
        self.checkpoints_taken += 1
        self.last_checkpoint_clock = clock

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats_fields(self, clock: float) -> Dict[str, Any]:
        """The WAL/checkpoint counters merged into the server's stats op."""
        if self.last_checkpoint_clock is None:
            age: Optional[float] = None
        else:
            age = max(0.0, clock - self.last_checkpoint_clock)
        return {
            "durable": True,
            "wal_records": self.records_appended,
            "wal_bytes": self.bytes_appended,
            "wal_records_replayed": self.records_replayed,
            "wal_torn_tails": self.torn_tails,
            "checkpoints": self.checkpoints_taken,
            "snapshot_restored": self.snapshot_restored,
            "last_checkpoint_age": age,
        }

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
