"""Typed client-side errors of the serving stack.

The resilient client paths (deadlines, retries, reconnect-and-resume) need
to tell failure modes apart: a lost connection is retryable after a
reconnect, a deadline expiry is retryable on the same connection, a
rejected request is not retryable at all, and a stale-epoch rejection means
another session took over the feeder identity.  Each error type *also*
subclasses the stdlib exception the pre-typed code paths raised
(``ConnectionResetError``, ``TimeoutError``, ``RuntimeError``), so existing
handlers — the server's dispatch fallback, tests catching ``RuntimeError``
— keep working unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Dict


class ServingError(Exception):
    """Base class of every typed serving-client error."""


class ConnectionLost(ServingError, ConnectionResetError):
    """The connection died (EOF, reset, corrupt frame, injected drop).

    Retryable after reconnecting; a feeder should re-register with
    ``resync`` so the server mirror catches up on missed updates.
    """


class DeadlineExceeded(ServingError, asyncio.TimeoutError):
    """A request missed its per-operation deadline.

    The response may still arrive later and is then dropped; retrying is
    safe for idempotent operations (queries, stats, resync registration).
    """


class RequestRejected(ServingError, RuntimeError):
    """The server answered with an error reply (``ok: false``)."""


class StaleEpochError(RequestRejected):
    """A newer session holds this feeder identity; this one is fenced off.

    The only recovery is a fresh registration (which mints the next epoch);
    retrying the rejected operation on this session can never succeed.
    """


class SupervisionExhausted(ServingError, RuntimeError):
    """A supervised worker died more times than its restart budget allows.

    Raised by :class:`~repro.serving.procs.ProcessPartitionPool` and the
    shard-worker :class:`~repro.sharding.workers._ExchangeSupervisor` in
    place of the bare ``RuntimeError`` they used to raise (still caught by
    handlers matching ``RuntimeError``).  ``crashes`` maps each worker
    index to its crash count at the moment supervision gave up; ``index``
    is the worker whose death exhausted the budget.  A gateway catching
    this downgrades the partition to permanent-degraded: its keys answer
    from the divergence-widened mirror instead of erroring.
    """

    def __init__(self, message: str, *, index: int, crashes: Dict[int, int]) -> None:
        super().__init__(message)
        self.index = index
        self.crashes = dict(crashes)
