"""Asynchronous bounded-query execution for the serving layer.

The offline simulator executes bounded aggregates with a *blocking*
``fetch_exact`` callback (:mod:`repro.queries.refresh_selection`).  The
server cannot block: a query-initiated refresh is an RPC to the owning
feeder connection, awaited on the event loop while other connections make
progress.  This module is the asynchronous *driver* over the shared
generator core (:func:`~repro.queries.refresh_selection.bounded_query_steps`)
— the selection logic, validation, AVG scaling and result assembly live in
exactly one place, so an online query refreshes exactly the keys — in
exactly the order — the offline simulator would.  That property is what the
deterministic load generator's equivalence test pins.
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, Hashable

from repro.intervals.interval import Interval
from repro.queries.aggregates import AggregateKind
from repro.queries.refresh_selection import QueryExecution, bounded_query_steps

AsyncFetchExact = Callable[[Hashable], Awaitable[float]]


async def execute_bounded_query_async(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: AsyncFetchExact,
) -> QueryExecution:
    """Async twin of :func:`repro.queries.refresh_selection.execute_bounded_query`.

    Same parameters and result; ``fetch_exact`` is awaited per refresh (the
    serving layer's refresh RPC).  Every refresh *choice* is made by the
    shared generator core between awaits.
    """
    steps = bounded_query_steps(kind, intervals, constraint)
    try:
        victim = next(steps)
        while True:
            victim = steps.send(await fetch_exact(victim))
    except StopIteration as stop:
        return stop.value
