"""Asynchronous bounded-query execution for the serving layer.

The offline simulator executes bounded aggregates with a *blocking*
``fetch_exact`` callback (:mod:`repro.queries.refresh_selection`).  The
server cannot block: a query-initiated refresh is an RPC to the owning
feeder connection, awaited on the event loop while other connections make
progress.  This module is the asynchronous *driver* over the shared
generator core (:func:`~repro.queries.refresh_selection.bounded_query_steps`)
— the selection logic, validation, AVG scaling and result assembly live in
exactly one place, so an online query refreshes exactly the keys — in
exactly the order — the offline simulator would.  That property is what the
deterministic load generator's equivalence test pins.
"""

from __future__ import annotations

import math
from typing import Awaitable, Callable, Dict, Hashable, List, Sequence

from repro.intervals.interval import Interval
from repro.queries.aggregates import AggregateKind, aggregate_bound, sum_bound
from repro.queries.refresh_selection import QueryExecution, bounded_query_steps
from repro.sharding.aggregates import merge_aggregate_bounds

AsyncFetchExact = Callable[[Hashable], Awaitable[float]]

#: ``degrade(key, snapshot_interval)`` — the honest widened bound for a key
#: whose owner is down (the server's mirror-drift model; the gateway's
#: partition-reported interval).
DegradeFn = Callable[[Hashable, Interval], Interval]


async def execute_bounded_query_async(
    kind: AggregateKind,
    intervals: Dict[Hashable, Interval],
    constraint: float,
    fetch_exact: AsyncFetchExact,
) -> QueryExecution:
    """Async twin of :func:`repro.queries.refresh_selection.execute_bounded_query`.

    Same parameters and result; ``fetch_exact`` is awaited per refresh (the
    serving layer's refresh RPC).  Every refresh *choice* is made by the
    shared generator core between awaits.
    """
    steps = bounded_query_steps(kind, intervals, constraint)
    try:
        victim = next(steps)
        while True:
            victim = steps.send(await fetch_exact(victim))
    except StopIteration as stop:
        return stop.value


async def execute_partitioned_query(
    kind: AggregateKind,
    keys: Sequence[Hashable],
    intervals: Dict[Hashable, Interval],
    constraint: float,
    degraded: Sequence[Hashable],
    degrade: DegradeFn,
    fetch_exact: AsyncFetchExact,
) -> Interval:
    """One selection pass; degraded keys answer from widened snapshots.

    The shared core of :meth:`CacheServer._execute_query` and the gateway's
    fan-out query path.  The fast path (no degraded keys) is byte-for-byte
    the original single-cache selection, which is what keeps zero-fault
    replays bit-identical to the offline simulator — at the gateway too,
    since the interval dict there is assembled in query key order from the
    partitions' snapshots and this function never reassociates the live
    keys' float arithmetic.  With degraded keys, the refresh selection runs
    over the *live* keys only, against the precision budget left after the
    down keys' fixed widened intervals are accounted for, and the partial
    bounds merge through the same :func:`merge_aggregate_bounds` the
    sharded coordinator uses.  Degraded keys never refresh and never charge
    costs — their intervals are an honest read-only estimate from
    ``degrade``.

    ``fetch_exact`` may raise (the server's ``_FeederLost``; the gateway's
    key-down signal) — the caller catches, extends ``degraded`` and
    re-runs.
    """
    if not degraded:
        execution = await execute_bounded_query_async(
            kind, dict(intervals), constraint, fetch_exact
        )
        return execution.result_bound
    down_set = set(degraded)
    down_intervals: List[Interval] = [
        degrade(key, intervals[key]) for key in keys if key in down_set
    ]
    live = {key: intervals[key] for key in keys if key not in down_set}
    if kind is AggregateKind.AVG:
        down_partial = sum_bound(down_intervals)
    else:
        down_partial = aggregate_bound(kind, down_intervals)
    if not live:
        return merge_aggregate_bounds(
            kind, [down_partial], counts=[len(down_intervals)]
        )
    if kind in (AggregateKind.SUM, AggregateKind.AVG):
        # SUM-space budget: what the live keys may jointly spend after
        # the down keys' width is taken off the top.  An already-blown
        # budget (infinite down width) keeps the original budget rather
        # than refreshing every live key for a constraint that cannot
        # be met anyway.
        budget = constraint if kind is AggregateKind.SUM else constraint * len(keys)
        down_width = down_partial.width
        if math.isinf(down_width):
            live_constraint = budget
        else:
            live_constraint = max(0.0, budget - down_width)
        selection_kind = AggregateKind.SUM
    else:
        # MAX/MIN widths do not add; the live sub-selection keeps the
        # original constraint and the merge can only widen the result.
        live_constraint = constraint
        selection_kind = kind
    execution = await execute_bounded_query_async(
        selection_kind, live, live_constraint, fetch_exact
    )
    return merge_aggregate_bounds(
        kind,
        [execution.result_bound, down_partial],
        counts=[len(live), len(down_intervals)],
    )
