"""Deterministic fault injection for the serving stack.

Chaos runs are only regression-testable if they are replayable: the same
plan must produce the same faults at the same points of the protocol
exchange on every run.  A :class:`FaultPlan` therefore derives every
decision from seeded :mod:`random` streams keyed by *position* — one
:class:`SessionFaults` stream per (role, connection ordinal), one draw per
frame — never from wall-clock time, so a replay with the same seed drops,
delays, truncates and reorders exactly the same frames.

:class:`FaultyTransport` wraps any frame transport (loopback or TCP) and
injects the transport-level faults:

* **drop** — the connection dies instead of carrying a written frame, as a
  reset socket would;
* **truncate** — a corrupt frame reaches the peer and the connection dies;
  the reader's :class:`~repro.serving.protocol.ProtocolError` path ends the
  session, exercising the same teardown a half-written TCP frame causes;
* **delay** — a read frame is delivered late (``delay_seconds``);
* **reorder** — a read frame is held back and delivered after its follower
  (bounded by ``reorder_window`` so a held frame cannot stall a quiet
  connection forever).

Feeder **kills** (``kill_every`` update batches, then ``outage_queries``
queries of downtime before the reconnect-and-resync) are scheduled by the
load generator from the same plan — they are protocol-level events, not
transport ones.  Partition **kills** (``partition_kill_every`` update
batches, SIGKILL of a seeded-random pool partition, at most
``partition_kills`` times) are likewise scheduled by the load generator,
and exercise the WAL/checkpoint recovery path end to end.

The CLI accepts a compact spec (``--fault-plan``)::

    seed=11,drop=0.002,truncate=0.001,delay=0.01,reorder=0.005,kill_every=40,outage=2

``none`` (or an empty string) is the zero plan: every wrapper becomes a
pass-through and a wrapped run stays bit-identical to an unwrapped one.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.obs.metrics import REGISTRY
from repro.serving.errors import ConnectionLost

#: Registry counters for injected faults, one series per fault kind.  They
#: run alongside the per-session ``counters`` dicts (which tests and the
#: loadgen report read back directly) and give chaos runs a scrapeable
#: whole-process total; recording draws nothing, so the seeded fault
#: streams are untouched by the registry's state.
_FAULTS_INJECTED = {
    kind: REGISTRY.counter(
        "repro_faults_injected_total",
        "Transport faults injected by the deterministic fault plan.",
        kind=kind,
    )
    for kind in ("drop", "truncate", "delay", "reorder")
}

#: Default injected delivery delay, seconds.
DEFAULT_DELAY_SECONDS = 0.002

#: Default wait for a follower frame before a held (reordered) frame is
#: delivered anyway, seconds.
DEFAULT_REORDER_WINDOW = 0.02

_SPEC_ALIASES = {
    "seed": "seed",
    "drop": "drop_rate",
    "drop_rate": "drop_rate",
    "truncate": "truncate_rate",
    "truncate_rate": "truncate_rate",
    "trunc": "truncate_rate",
    "delay": "delay_rate",
    "delay_rate": "delay_rate",
    "delay_ms": "delay_ms",
    "delay_seconds": "delay_seconds",
    "reorder": "reorder_rate",
    "reorder_rate": "reorder_rate",
    "reorder_window": "reorder_window",
    "kill_every": "kill_every",
    "kill": "kill_every",
    "outage": "outage_queries",
    "outage_queries": "outage_queries",
    "part_kill_every": "partition_kill_every",
    "partition_kill_every": "partition_kill_every",
    "part_kills": "partition_kills",
    "partition_kills": "partition_kills",
}

_INT_FIELDS = {
    "seed",
    "kill_every",
    "outage_queries",
    "partition_kill_every",
    "partition_kills",
}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable fault schedule (see the module docstring)."""

    seed: int = 0
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = DEFAULT_DELAY_SECONDS
    reorder_rate: float = 0.0
    reorder_window: float = DEFAULT_REORDER_WINDOW
    kill_every: int = 0
    outage_queries: int = 0
    #: SIGKILL a pool partition every N update batches (0 = never), at most
    #: ``partition_kills`` times (0 = unbounded).  The victim partition is
    #: drawn from the plan's own seeded stream, and kills land *between*
    #: awaited protocol ops — seeded frame positions, not wall clock — so a
    #: chaos replay kills the same partitions at the same points every run.
    partition_kill_every: int = 0
    partition_kills: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "truncate_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate!r}")
        if self.drop_rate + self.truncate_rate > 1.0:
            raise ValueError("drop_rate + truncate_rate must not exceed 1")
        if self.delay_seconds < 0 or self.reorder_window <= 0:
            raise ValueError("delay_seconds must be >= 0, reorder_window > 0")
        if self.kill_every < 0 or self.outage_queries < 0:
            raise ValueError("kill_every and outage_queries must be non-negative")
        if self.partition_kill_every < 0 or self.partition_kills < 0:
            raise ValueError(
                "partition_kill_every and partition_kills must be non-negative"
            )

    @property
    def is_zero(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            self.drop_rate == 0.0
            and self.truncate_rate == 0.0
            and self.delay_rate == 0.0
            and self.reorder_rate == 0.0
            and self.kill_every == 0
            and self.partition_kill_every == 0
        )

    def session(self, role: str, index: int) -> "SessionFaults":
        """The fault stream of one connection (``role`` + ordinal ``index``).

        Reconnections take the next ordinal, so a re-dialled connection
        draws a fresh — but still fully determined — fault sequence.
        """
        return SessionFaults(self, role, index)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI's compact ``key=value,...`` spec (see module doc)."""
        spec = text.strip()
        if not spec or spec == "none":
            return cls()
        values: Dict[str, Any] = {}
        for part in spec.split(","):
            name, separator, raw = part.partition("=")
            name = name.strip()
            field_name = _SPEC_ALIASES.get(name)
            if not separator or field_name is None:
                known = ", ".join(sorted(_SPEC_ALIASES))
                raise ValueError(
                    f"bad fault-plan entry {part!r}; expected key=value with "
                    f"a key among: {known}"
                )
            if field_name == "delay_ms":
                values["delay_seconds"] = float(raw) / 1000.0
            elif field_name in _INT_FIELDS:
                values[field_name] = int(raw)
            else:
                values[field_name] = float(raw)
        return cls(**values)

    def describe(self) -> str:
        """The canonical spec string (``none`` for the zero plan)."""
        if self.is_zero:
            return "none"
        parts = []
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            default = spec_field.default
            if value != default or spec_field.name == "seed":
                rendered = value if spec_field.name in _INT_FIELDS else f"{value:g}"
                parts.append(f"{spec_field.name}={rendered}")
        return ",".join(parts)


class SessionFaults:
    """One connection's deterministic fault stream plus injection counters."""

    __slots__ = ("plan", "role", "index", "counters", "_rng")

    def __init__(self, plan: FaultPlan, role: str, index: int) -> None:
        self.plan = plan
        self.role = role
        self.index = index
        self.counters: Dict[str, int] = {
            "drops": 0,
            "truncations": 0,
            "delays": 0,
            "reorders": 0,
        }
        # String seeding hashes through sha512, so the stream is identical
        # across processes and interpreter runs (unlike salted object hashes).
        self._rng = random.Random(f"faults:{plan.seed}:{role}:{index}")

    def next_write_fault(self) -> Optional[str]:
        """Decide this written frame's fate: ``drop``, ``truncate`` or None."""
        plan = self.plan
        if plan.drop_rate == 0.0 and plan.truncate_rate == 0.0:
            return None
        draw = self._rng.random()
        if draw < plan.drop_rate:
            self.counters["drops"] += 1
            _FAULTS_INJECTED["drop"].inc()
            return "drop"
        if draw < plan.drop_rate + plan.truncate_rate:
            self.counters["truncations"] += 1
            _FAULTS_INJECTED["truncate"].inc()
            return "truncate"
        return None

    def read_delay(self) -> float:
        """Seconds to delay this read frame's delivery (0 for on-time)."""
        plan = self.plan
        if plan.delay_rate == 0.0:
            return 0.0
        if self._rng.random() < plan.delay_rate:
            self.counters["delays"] += 1
            _FAULTS_INJECTED["delay"].inc()
            return plan.delay_seconds
        return 0.0

    def should_reorder(self) -> bool:
        """Whether this read frame is held back behind its follower."""
        plan = self.plan
        if plan.reorder_rate == 0.0:
            return False
        return self._rng.random() < plan.reorder_rate


class FaultyTransport:
    """A frame transport that misbehaves on schedule.

    Wraps any object with the transport surface (``read_frame`` /
    ``write_frame`` / ``close`` / ``wait_closed``) and applies one
    :class:`SessionFaults` stream to it.  Injected connection deaths raise
    :class:`~repro.serving.errors.ConnectionLost`, which subclasses
    ``ConnectionResetError`` — exactly what a genuinely reset transport
    raises — so the code under test cannot tell scheduled faults from real
    ones.
    """

    def __init__(self, transport: Any, faults: SessionFaults) -> None:
        self._transport = transport
        self._faults = faults
        self._held: Optional[Dict[str, Any]] = None

    @property
    def faults(self) -> SessionFaults:
        """The fault stream steering this transport."""
        return self._faults

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        if self._held is not None:
            frame, self._held = self._held, None
            return frame
        frame = await self._transport.read_frame()
        if frame is None:
            return None
        faults = self._faults
        delay = faults.read_delay()
        if delay > 0.0:
            await asyncio.sleep(delay)
        if faults.should_reorder():
            # Hold this frame back behind its follower — but only wait a
            # bounded window for one, so a reorder on a quiet connection
            # degrades to an ordinary delay instead of a stall.
            try:
                follower = await asyncio.wait_for(
                    self._transport.read_frame(), faults.plan.reorder_window
                )
            except asyncio.TimeoutError:
                return frame
            if follower is None:
                return frame
            faults.counters["reorders"] += 1
            _FAULTS_INJECTED["reorder"].inc()
            self._held = frame
            return follower
        return frame

    async def write_frame(self, message: Dict[str, Any]) -> None:
        fault = self._faults.next_write_fault()
        if fault == "drop":
            self._transport.close()
            raise ConnectionLost("fault injection: connection dropped mid-write")
        if fault == "truncate":
            corrupt = getattr(self._transport, "write_corrupt_frame", None)
            if corrupt is not None:
                try:
                    await corrupt()
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    pass
            self._transport.close()
            raise ConnectionLost("fault injection: frame truncated mid-write")
        await self._transport.write_frame(message)

    def close(self) -> None:
        self._transport.close()

    async def wait_closed(self) -> None:
        await self._transport.wait_closed()
