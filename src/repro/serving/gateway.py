"""The partitioned serving gateway.

:class:`GatewayServer` fronts N :class:`~repro.serving.server.CacheServer`
partitions behind the same wire protocol a single server speaks, so every
client — the typed :class:`~repro.serving.api.Client`, the load generator,
the HTTP/WebSocket edge — is deployment-shape agnostic.  Keys are routed by
:func:`~repro.sharding.partition.stable_key_hash` (the sharded
coordinator's partitioning, lifted across process boundaries).

**The determinism contract.**  A serialised replay through the gateway is
bit-identical to the offline simulator at *any* partition count, because
the gateway re-creates exactly the single-server query pipeline, only
distributed:

1. *Snapshot* — each partition owning queried keys answers a ``snapshot``
   op: cached intervals, hit counts and the policy's read observers fire
   at the partition exactly as a local query's snapshot phase would.
   The gateway assembles the interval dict **in query key order**, so the
   float arithmetic of the selection never reassociates.
2. *Selection* — the gateway runs the shared refresh-selection core
   (:func:`~repro.serving.execution.execute_partitioned_query`) over the
   assembled snapshot.  Selection is policy-free (it reads intervals and
   the constraint), so running it at the gateway rather than inside one
   cache changes nothing.
3. *Refresh* — each selected key is a ``refresh_key`` op to its owning
   partition, which performs the query-initiated refresh (policy decision,
   cost charge, install) locally, and the refreshes happen in selection
   order, serialised — the order the offline simulator uses.

**Feeder topology.**  A feeder connection F registering keys spanning
partitions gets one *upstream* link per touched partition, registered at
the partition under F's feeder identity.  A partition's refresh RPC rides
the upstream link back to the gateway, which forwards it to F over the
real connection (the base class's refresh-RPC machinery).  When F drops,
its upstream links are closed, and every partition's own PR-6 machinery —
down-key marking, drift-widened degraded answers, epoch fencing on
reconnect — engages exactly as if F had been connected directly.

**Supervision.**  Given a pool (:class:`~repro.serving.procs.`
``ProcessPartitionPool``), :meth:`supervise` polls worker liveness and
replaces dead partitions, replaying the gateway's key/value mirror into
the fresh process: keys with a live feeder re-register under that feeder's
identity (refresh RPCs flow again); orphaned keys are registered and
immediately released so the partition serves them as honest degraded
answers rather than forgetting them.
"""

from __future__ import annotations

import asyncio
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.intervals.interval import Interval
from repro.serving.api import Client, dial
from repro.serving.execution import execute_partitioned_query
from repro.serving.protocol import (
    BoundedAnswer,
    ProtocolError,
    QueryRequest,
    RefreshKey,
    RegisterAck,
    RegisterFeeder,
    Response,
    Snapshot,
    SnapshotReply,
    StatsRequest,
    Update,
    UpdateAck,
    UpdateBatch,
    UpdateBatchAck,
    error_response,
    parse_request,
)
from repro.serving.server import (
    DEFAULT_ADMISSION_QUEUE_LIMIT,
    DEFAULT_MAX_INFLIGHT_QUERIES,
    DEFAULT_REFRESH_TIMEOUT,
    DEFAULT_WRITE_QUEUE_LIMIT,
    BaseFrameServer,
    ServingStatistics,
    _Connection,
)
from repro.sharding.partition import partition_keys, shard_index


class _KeyDown(Exception):
    """Internal: a ``refresh_key`` found the key's feeder down.

    The partition answered with its honest degraded interval; the
    gateway's selection re-runs with the key degraded — the distributed
    twin of the server's ``_FeederLost`` retry loop.
    """

    def __init__(self, key: Hashable) -> None:
        super().__init__(f"feeder down during gateway refresh of {key!r}")
        self.key = key


class GatewayServer(BaseFrameServer):
    """A routing front-end over hash-partitioned cache servers.

    Parameters
    ----------
    targets:
        One dialable target per partition — anything
        :func:`repro.serving.api.dial` accepts: an in-process
        :class:`CacheServer` (tests, the loopback path) or a
        ``tcp://host:port`` URL (the process pool).
    pool:
        Optional supervisor hook (``ProcessPartitionPool``-shaped: the
        object behind ``targets`` owning worker processes).  Only
        :meth:`supervise` uses it.
    max_inflight_queries / admission_queue_limit:
        Gateway-level admission control — the one overload gate of a
        partitioned deployment (snapshot/refresh ops bypass the
        partitions' own gates).
    """

    _TASK_OPS: ClassVar[FrozenSet[str]] = frozenset({"query"})

    def __init__(
        self,
        targets: Sequence[Any],
        *,
        pool: Optional[Any] = None,
        max_inflight_queries: int = DEFAULT_MAX_INFLIGHT_QUERIES,
        admission_queue_limit: int = DEFAULT_ADMISSION_QUEUE_LIMIT,
        write_queue_limit: int = DEFAULT_WRITE_QUEUE_LIMIT,
        refresh_timeout: Optional[float] = DEFAULT_REFRESH_TIMEOUT,
    ) -> None:
        super().__init__(
            write_queue_limit=write_queue_limit, refresh_timeout=refresh_timeout
        )
        if not targets:
            raise ValueError("a gateway needs at least one partition target")
        if max_inflight_queries < 1:
            raise ValueError("max_inflight_queries must be at least 1")
        if admission_queue_limit < 0:
            raise ValueError("admission_queue_limit must be non-negative")
        self._targets: List[Any] = list(targets)
        self._pool = pool
        self._control: List[Optional[Client]] = [None] * len(self._targets)
        # Upstream feeder links: (incoming connection, partition) -> Client.
        self._upstreams: Dict[_Connection, Dict[int, Client]] = {}
        # The gateway's key/value mirror: last exact value seen per key
        # (registration or update), for partition-restart resync.
        self._values: Dict[Hashable, float] = {}
        self._owners: Dict[Hashable, _Connection] = {}
        self._query_gate = asyncio.Semaphore(max_inflight_queries)
        self._admission_queue_limit = admission_queue_limit
        self._admission_waiting = 0
        self._supervisor: Optional[asyncio.Task] = None
        self.statistics = ServingStatistics()

    @property
    def partition_count(self) -> int:
        return len(self._targets)

    def partition_of(self, key: Hashable) -> int:
        """The partition index owning ``key`` (stable hash routing)."""
        return shard_index(key, len(self._targets))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open one control link per partition (query/snapshot/stats path)."""
        for index in range(len(self._targets)):
            await self._connect_control(index)

    async def _connect_control(self, index: int) -> Client:
        link = await Client.from_transport(await dial(self._targets[index]))
        self._control[index] = link
        return link

    def _control_link(self, index: int) -> Client:
        link = self._control[index]
        if link is None:
            raise ConnectionResetError(f"partition {index} has no control link")
        return link

    async def close(self) -> None:
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        await super().close()
        for links in list(self._upstreams.values()):
            for link in links.values():
                await link.close()
        self._upstreams.clear()
        for index, link in enumerate(self._control):
            if link is not None:
                await link.close()
                self._control[index] = None

    # ------------------------------------------------------------------
    # Connection teardown hooks
    # ------------------------------------------------------------------
    async def _connection_lost(self, connection: _Connection) -> None:
        # Closing the upstream links delivers EOF to every partition this
        # feeder touched; the partitions mark its keys down and serve
        # degraded answers — their machinery, not a gateway re-implementation.
        links = self._upstreams.pop(connection, None)
        if links:
            for link in links.values():
                await link.close()

    def _connection_removed(self, connection: _Connection) -> None:
        for key in connection.keys:
            if self._owners.get(key) is connection:
                del self._owners[key]
        connection.keys.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            request = parse_request(frame)
            if request is None:
                reply = error_response(request_id, f"unknown operation {op!r}")
            elif isinstance(request, Update):
                reply = await self._handle_update(connection, request)
            elif isinstance(request, UpdateBatch):
                reply = await self._handle_update_batch(connection, request)
            elif isinstance(request, QueryRequest):
                reply = await self._handle_query(request)
            elif isinstance(request, RegisterFeeder):
                reply = await self._handle_register(connection, request)
            elif isinstance(request, StatsRequest):
                reply = await self._handle_stats()
            else:
                # snapshot / refresh_key / refresh are partition-internal
                # ops; at the gateway's front door they are unknown.
                reply = error_response(request_id, f"unknown operation {op!r}")
        except ConnectionResetError:
            reply = error_response(request_id, "refresh fetch failed: feeder gone")
        except Exception as exc:
            reply = error_response(request_id, f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            if isinstance(reply, Response):
                reply = reply.to_wire()
            reply.setdefault("id", request_id)
            reply.setdefault("ok", True)
            await connection.send(reply)

    # ------------------------------------------------------------------
    # Upstream feeder links
    # ------------------------------------------------------------------
    async def _upstream(self, connection: _Connection, index: int) -> Client:
        links = self._upstreams.setdefault(connection, {})
        link = links.get(index)
        if link is None:
            link = await Client.from_transport(
                await dial(self._targets[index]),
                on_request=self._refresh_forwarder(connection),
            )
            links[index] = link
        return link

    def _refresh_forwarder(self, connection: _Connection):
        """The upstream link's handler: partition refresh RPC -> feeder."""

        async def forward(frame: Dict[str, Any]) -> Dict[str, Any]:
            key = frame.get("key")
            try:
                value = await self._refresh_rpc(connection, key)
            except ConnectionResetError as exc:
                return error_response(frame.get("id"), str(exc))
            return {"value": value}

        return forward

    # ------------------------------------------------------------------
    # Feeder operations
    # ------------------------------------------------------------------
    async def _handle_register(
        self, connection: _Connection, request: RegisterFeeder
    ) -> RegisterAck:
        epoch: Optional[int] = None
        if request.feeder is not None:
            # Gateway-level epoch fencing, same discipline as the server's:
            # a reconnecting feeder identity supersedes its old session.
            epoch = self._feeder_epochs.get(request.feeder, 0) + 1
            self._feeder_epochs[request.feeder] = epoch
            connection.feeder_id = request.feeder
            connection.epoch = epoch
        values = dict(zip(request.keys, request.values))
        refreshes: Optional[int] = 0 if request.resync else None
        for index, keys in partition_keys(request.keys, len(self._targets)).items():
            link = await self._upstream(connection, index)
            ack = await link.register(
                keys,
                [values[key] for key in keys],
                feeder=request.feeder,
                resync=request.resync,
                time=request.time,
            )
            if request.resync and ack.refreshes is not None:
                refreshes += ack.refreshes
        for key, value in values.items():
            self._values[key] = float(value)
            self._owners[key] = connection
            connection.keys.add(key)
        if request.resync:
            self.statistics.feeder_resyncs += 1
        return RegisterAck(
            registered=len(request.keys), epoch=epoch, refreshes=refreshes
        )

    async def _handle_update(self, connection: _Connection, request: Update) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        link = await self._upstream(connection, self.partition_of(request.key))
        ack = await link.update(request.key, request.value, time=request.time)
        self._values[request.key] = float(request.value)
        self._owners.setdefault(request.key, connection)
        connection.keys.add(request.key)
        self.statistics.updates_applied += 1
        return UpdateAck(refresh=ack.refresh)

    async def _handle_update_batch(
        self, connection: _Connection, request: UpdateBatch
    ) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        groups: Dict[int, List[Tuple[Hashable, float]]] = {}
        for key, value in request.updates:
            groups.setdefault(self.partition_of(key), []).append((key, value))
        # Per-key order is preserved inside each forwarded batch, and the
        # refresh counts of disjoint partitions commute — so the forwards
        # can run concurrently without disturbing serialised-replay
        # bit-identity, and a batch costs the slowest partition rather
        # than the sum.
        async def forward(index: int, updates: List[Tuple[Hashable, float]]) -> int:
            link = await self._upstream(connection, index)
            ack = await link.update_batch(updates, time=request.time)
            return ack.refreshes

        refreshes = sum(
            await asyncio.gather(
                *(forward(index, updates) for index, updates in groups.items())
            )
        )
        for key, value in request.updates:
            self._values[key] = float(value)
            self._owners.setdefault(key, connection)
            connection.keys.add(key)
        self.statistics.updates_applied += len(request.updates)
        return UpdateBatchAck(refreshes=refreshes)

    # ------------------------------------------------------------------
    # Query execution (snapshot -> global selection -> routed refreshes)
    # ------------------------------------------------------------------
    async def _handle_query(self, request: QueryRequest) -> Any:
        if self._query_gate.locked():
            if self._admission_waiting >= self._admission_queue_limit:
                self.statistics.queries_rejected += 1
                return {
                    "ok": False,
                    "error": "overloaded: admission queue full",
                    "overloaded": True,
                }
            self._admission_waiting += 1
            try:
                await self._query_gate.acquire()
            finally:
                self._admission_waiting -= 1
        else:
            await self._query_gate.acquire()
        try:
            return await self._execute_query(request)
        finally:
            self._query_gate.release()

    async def _execute_query(self, request: QueryRequest) -> BoundedAnswer:
        keys = list(request.keys)
        if not keys:
            raise ProtocolError("a query must touch at least one key")
        kind = request.aggregate
        constraint = request.constraint
        time = request.time
        groups = partition_keys(keys, len(self._targets))

        async def snapshot(index: int, group: List[Hashable]) -> SnapshotReply:
            link = self._control_link(index)
            response = await link.call(
                Snapshot(keys=tuple(group), constraint=constraint, time=time)
            )
            return SnapshotReply.from_wire(response)

        replies = await asyncio.gather(
            *(snapshot(index, group) for index, group in groups.items())
        )
        intervals: Dict[Hashable, Interval] = {}
        down_bounds: Dict[Hashable, Interval] = {}
        hits = 0
        for (index, group), reply in zip(groups.items(), replies):
            hits += reply.hits
            for key, (low, high) in zip(group, reply.intervals):
                intervals[key] = Interval(low, high)
            for position, (low, high) in zip(reply.down, reply.down_intervals):
                down_bounds[group[position]] = Interval(low, high)
        # Re-key the dict into query order: the selection and its final
        # merge must see the same float-summation order a single server
        # (and the offline simulator) uses.
        intervals = {key: intervals[key] for key in keys}

        refreshed: List[Hashable] = []

        async def fetch_exact(key: Hashable) -> float:
            link = self._control_link(self.partition_of(key))
            response = await link.call(RefreshKey(key=key, time=time))
            if response.get("down"):
                down_bounds[key] = Interval(response["low"], response["high"])
                raise _KeyDown(key)
            value = float(response["value"])
            refreshed.append(key)
            intervals[key] = Interval.exact(value)
            self._values[key] = value
            return value

        while True:
            degraded = [key for key in keys if key in down_bounds]
            try:
                bound = await execute_partitioned_query(
                    kind,
                    keys,
                    intervals,
                    constraint,
                    degraded,
                    lambda key, snapshot: down_bounds[key],
                    fetch_exact,
                )
                break
            except _KeyDown:
                continue
        self.statistics.queries_served += 1
        if degraded:
            self.statistics.queries_degraded += 1
        return BoundedAnswer(
            low=bound.low,
            high=bound.high,
            refreshed=tuple(refreshed),
            hits=hits,
            misses=len(keys) - hits,
            degraded=bool(degraded),
            degraded_keys=tuple(degraded),
        )

    # ------------------------------------------------------------------
    # Stats aggregation
    # ------------------------------------------------------------------
    #: Partition counters that sum meaningfully across the deployment.
    _SUMMED_STATS = (
        "keys",
        "cached_entries",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "updates_applied",
        "updates_ignored",
        "value_refreshes",
        "query_refreshes",
        "refresh_rpcs",
        "refreshes_failed",
        "stale_epoch_rejections",
        "feeder_resyncs",
        "keys_down",
        "total_cost",
        "messages_sent",
        "total_latency",
    )

    async def _handle_stats(self) -> Dict[str, Any]:
        partition_stats = await asyncio.gather(
            *(self._control_link(index).stats() for index in range(len(self._targets)))
        )
        merged: Dict[str, Any] = {name: 0 for name in self._SUMMED_STATS}
        shard_hit_rates: List[float] = []
        clock = 0.0
        for stats in partition_stats:
            for name in self._SUMMED_STATS:
                merged[name] += stats.get(name, 0)
            shard_hit_rates.extend(stats.get("shard_hit_rates", []))
            clock = max(clock, stats.get("clock", 0.0))
        lookups = merged["hits"] + merged["misses"]
        serving = self.statistics
        merged.update(
            {
                "clock": clock,
                "partitions": len(self._targets),
                "partition_restarts": serving.partition_restarts,
                "connections": len(self._connections),
                "hit_rate": (merged["hits"] / lookups) if lookups else 0.0,
                "shard_hit_rates": shard_hit_rates,
                "queries_served": serving.queries_served,
                "queries_rejected": serving.queries_rejected,
                "queries_degraded": serving.queries_degraded,
                "gateway_refresh_rpcs": serving.refresh_rpcs,
                "gateway_stale_epoch_rejections": serving.stale_epoch_rejections,
            }
        )
        return merged

    # ------------------------------------------------------------------
    # Partition supervision (the process pool's restart path)
    # ------------------------------------------------------------------
    def start_supervisor(self, poll_interval: float = 0.25) -> asyncio.Task:
        """Start the background liveness loop (requires a pool)."""
        if self._pool is None:
            raise ValueError("supervision requires a partition pool")
        self._supervisor = asyncio.ensure_future(self.supervise(poll_interval))
        return self._supervisor

    async def supervise(self, poll_interval: float = 0.25) -> None:
        """Poll the pool; restart and resync any dead partition, forever."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(poll_interval)
            for index in range(len(self._targets)):
                if self._pool.is_alive(index):
                    continue
                target = await loop.run_in_executor(None, self._pool.restart, index)
                await self.resync_partition(index, target)

    async def resync_partition(self, index: int, target: Any) -> None:
        """Point partition ``index`` at ``target`` and replay its keys.

        The fresh process is empty; the gateway replays its mirror: keys
        with a live feeder re-register under that feeder's identity over a
        fresh upstream link (refresh RPCs flow again), and orphaned keys —
        their feeder is gone — are registered from the mirror over a
        throwaway link that is closed immediately, so the partition holds
        their last values but serves them as degraded answers, exactly the
        contract a directly-connected server gives keys whose feeder died.
        """
        self._targets[index] = target
        old = self._control[index]
        if old is not None:
            await old.close()
        await self._connect_control(index)
        self.statistics.partition_restarts += 1
        by_connection: Dict[Optional[_Connection], List[Hashable]] = {}
        for key, value in self._values.items():
            if self.partition_of(key) != index:
                continue
            owner = self._owners.get(key)
            if owner is not None and owner.closing:
                owner = None
            by_connection.setdefault(owner, []).append(key)
        for connection, keys in by_connection.items():
            values = [self._values[key] for key in keys]
            if connection is None:
                orphan = await Client.from_transport(await dial(target))
                try:
                    await orphan.register(keys, values)
                finally:
                    await orphan.close()
                continue
            links = self._upstreams.get(connection)
            if links is not None:
                stale = links.pop(index, None)
                if stale is not None:
                    await stale.close()
            link = await self._upstream(connection, index)
            await link.register(
                keys, values, feeder=connection.feeder_id
            )
