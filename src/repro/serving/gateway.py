"""The partitioned serving gateway.

:class:`GatewayServer` fronts N :class:`~repro.serving.server.CacheServer`
partitions behind the same wire protocol a single server speaks, so every
client — the typed :class:`~repro.serving.api.Client`, the load generator,
the HTTP/WebSocket edge — is deployment-shape agnostic.  Keys are routed by
:func:`~repro.sharding.partition.stable_key_hash` (the sharded
coordinator's partitioning, lifted across process boundaries).

**The determinism contract.**  A serialised replay through the gateway is
bit-identical to the offline simulator at *any* partition count, because
the gateway re-creates exactly the single-server query pipeline, only
distributed:

1. *Snapshot* — each partition owning queried keys answers a ``snapshot``
   op: cached intervals, hit counts and the policy's read observers fire
   at the partition exactly as a local query's snapshot phase would.
   The gateway assembles the interval dict **in query key order**, so the
   float arithmetic of the selection never reassociates.
2. *Selection* — the gateway runs the shared refresh-selection core
   (:func:`~repro.serving.execution.execute_partitioned_query`) over the
   assembled snapshot.  Selection is policy-free (it reads intervals and
   the constraint), so running it at the gateway rather than inside one
   cache changes nothing.
3. *Refresh* — each selected key is a ``refresh_key`` op to its owning
   partition, which performs the query-initiated refresh (policy decision,
   cost charge, install) locally, and the refreshes happen in selection
   order, serialised — the order the offline simulator uses.

**Feeder topology.**  A feeder connection F registering keys spanning
partitions gets one *upstream* link per touched partition, registered at
the partition under F's feeder identity.  A partition's refresh RPC rides
the upstream link back to the gateway, which forwards it to F over the
real connection (the base class's refresh-RPC machinery).  When F drops,
its upstream links are closed, and every partition's own PR-6 machinery —
down-key marking, drift-widened degraded answers, epoch fencing on
reconnect — engages exactly as if F had been connected directly.

**Supervision.**  Given a pool (:class:`~repro.serving.procs.`
``ProcessPartitionPool``), :meth:`supervise` polls worker liveness and
replaces dead partitions, replaying the gateway's key/value mirror into
the fresh process: keys with a live feeder re-register under that feeder's
identity (refresh RPCs flow again); orphaned keys are registered and
immediately released so the partition serves them as honest degraded
answers rather than forgetting them.
"""

from __future__ import annotations

import asyncio
import math
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.intervals.interval import Interval
from repro.obs.metrics import (
    REGISTRY,
    SIZE_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.logging import get_logger
from repro.obs.trace import TRACER
from repro.serving.api import Client, dial
from repro.serving.errors import SupervisionExhausted
from repro.serving.execution import execute_partitioned_query
from repro.serving.protocol import (
    BoundedAnswer,
    MetricsRequest,
    ProtocolError,
    QueryRequest,
    Recovered,
    RefreshKey,
    RegisterAck,
    RegisterFeeder,
    Response,
    Snapshot,
    SnapshotReply,
    StatsRequest,
    Update,
    UpdateAck,
    UpdateBatch,
    UpdateBatchAck,
    error_response,
    parse_request,
)
from repro.serving.server import (
    DEFAULT_ADMISSION_QUEUE_LIMIT,
    DEFAULT_DEGRADED_SLACK,
    DEFAULT_MAX_INFLIGHT_QUERIES,
    DEFAULT_REFRESH_TIMEOUT,
    DEFAULT_WRITE_QUEUE_LIMIT,
    _STATS_COUNTER_METRICS,
    BaseFrameServer,
    ServingStatistics,
    _Connection,
    _KeyDrift,
)
from repro.sharding.partition import partition_keys, shard_index

_LOG = get_logger("serving.gateway")

#: How long a query waits for a recovering partition before answering its
#: keys from the gateway's own divergence-widened mirror.  Recovery of a
#: durable partition is typically sub-second, so the default keeps chaos
#: replays bit-identical to uninterrupted runs; tests set 0 to force the
#: mirror-degraded path.
DEFAULT_RECOVERY_GRACE = 30.0

#: Per-partition health states the gateway tracks (see ``health()``):
#: ``ok`` — live, ops route normally; ``recovering`` — the supervisor is
#: restarting it, writes wait and queries wait up to ``recovery_grace``;
#: ``degraded`` — its restart budget is exhausted, its keys answer from
#: the mirror forever; ``down`` — dead with no pool to restart it.
PARTITION_STATES = ("ok", "recovering", "degraded", "down")

#: Connection failures that mean "the partition behind this link is gone".
_LINK_ERRORS = (ConnectionResetError, BrokenPipeError, EOFError, OSError)


class _KeyDown(Exception):
    """Internal: a ``refresh_key`` found the key's feeder down.

    The partition answered with its honest degraded interval; the
    gateway's selection re-runs with the key degraded — the distributed
    twin of the server's ``_FeederLost`` retry loop.
    """

    def __init__(self, key: Hashable) -> None:
        super().__init__(f"feeder down during gateway refresh of {key!r}")
        self.key = key


class GatewayServer(BaseFrameServer):
    """A routing front-end over hash-partitioned cache servers.

    Parameters
    ----------
    targets:
        One dialable target per partition — anything
        :func:`repro.serving.api.dial` accepts: an in-process
        :class:`CacheServer` (tests, the loopback path) or a
        ``tcp://host:port`` URL (the process pool).
    pool:
        Optional supervisor hook (``ProcessPartitionPool``-shaped: the
        object behind ``targets`` owning worker processes).  Only
        :meth:`supervise` uses it.
    max_inflight_queries / admission_queue_limit:
        Gateway-level admission control — the one overload gate of a
        partitioned deployment (snapshot/refresh ops bypass the
        partitions' own gates).
    recovery_grace:
        How long a query waits for a ``recovering`` partition before its
        keys are answered from the gateway's mirror as degraded intervals.
        Writes wait without a deadline (they must not be dropped or
        reordered); a partition that exhausts its restart budget releases
        them to the mirror-only path.
    """

    _TASK_OPS: ClassVar[FrozenSet[str]] = frozenset({"query"})

    def __init__(
        self,
        targets: Sequence[Any],
        *,
        pool: Optional[Any] = None,
        max_inflight_queries: int = DEFAULT_MAX_INFLIGHT_QUERIES,
        admission_queue_limit: int = DEFAULT_ADMISSION_QUEUE_LIMIT,
        write_queue_limit: int = DEFAULT_WRITE_QUEUE_LIMIT,
        refresh_timeout: Optional[float] = DEFAULT_REFRESH_TIMEOUT,
        recovery_grace: float = DEFAULT_RECOVERY_GRACE,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            write_queue_limit=write_queue_limit, refresh_timeout=refresh_timeout
        )
        if not targets:
            raise ValueError("a gateway needs at least one partition target")
        if max_inflight_queries < 1:
            raise ValueError("max_inflight_queries must be at least 1")
        if admission_queue_limit < 0:
            raise ValueError("admission_queue_limit must be non-negative")
        if recovery_grace < 0:
            raise ValueError("recovery_grace must be non-negative")
        self._targets: List[Any] = list(targets)
        self._pool = pool
        self._control: List[Optional[Client]] = [None] * len(self._targets)
        # Upstream feeder links: (incoming connection, partition) -> Client.
        self._upstreams: Dict[_Connection, Dict[int, Client]] = {}
        # The gateway's key/value mirror: last exact value seen per key
        # (registration or update), for partition-restart resync.
        self._values: Dict[Hashable, float] = {}
        self._owners: Dict[Hashable, _Connection] = {}
        self._query_gate = asyncio.Semaphore(max_inflight_queries)
        self._admission_queue_limit = admission_queue_limit
        self._admission_waiting = 0
        self._supervisor: Optional[asyncio.Task] = None
        self.statistics = ServingStatistics()
        # Per-partition recovery state: health string, a "routable" event
        # ops wait on (set except while recovering), and the gateway clock
        # at which the partition last went unroutable (degraded widths).
        self._recovery_grace = recovery_grace
        self._health: List[str] = ["ok"] * len(self._targets)
        self._routable: List[asyncio.Event] = []
        for _ in self._targets:
            event = asyncio.Event()
            event.set()
            self._routable.append(event)
        self._partition_down_since: Dict[int, float] = {}
        # The gateway's own drift envelope per key — the same empirical
        # widening model the partitions keep, so mirror-degraded answers
        # honour the containment contract even with the partition gone.
        self._drift: Dict[Hashable, _KeyDrift] = {}
        self._last_update_time: Dict[Hashable, float] = {}
        self._degraded_slack = DEFAULT_DEGRADED_SLACK
        self._clock = 0.0
        self._registry = REGISTRY if registry is None else registry
        self._register_metrics()

    @property
    def partition_count(self) -> int:
        return len(self._targets)

    def partition_of(self, key: Hashable) -> int:
        """The partition index owning ``key`` (stable hash routing)."""
        return shard_index(key, len(self._targets))

    # ------------------------------------------------------------------
    # Metrics (repro.obs): gateway-local handles plus partition aggregation
    # ------------------------------------------------------------------
    #: The slice of the shared counter catalog the gateway itself maintains
    #: (its registry's ``role`` label keeps these series distinct from the
    #: partitions' identically named ones).
    _GATEWAY_COUNTER_FIELDS = frozenset(
        {
            "updates_applied",
            "updates_ignored",
            "queries_served",
            "queries_rejected",
            "queries_degraded",
            "refresh_rpcs",
            "refreshes_failed",
            "stale_epoch_rejections",
            "feeder_resyncs",
            "connections_opened",
            "connections_closed",
            "partition_restarts",
        }
    )

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this gateway publishes into."""
        return self._registry

    def _register_metrics(self) -> None:
        registry = self._registry
        self._metric_counters = {
            field: registry.counter(name, help_text)
            for field, name, help_text in _STATS_COUNTER_METRICS
            if field in self._GATEWAY_COUNTER_FIELDS
        }
        self._metric_connections = registry.gauge(
            "repro_connections", "Connections currently open."
        )
        self._metric_clock = registry.gauge(
            "repro_logical_clock", "The server's logical clock."
        )
        self._metric_partitions = registry.gauge(
            "repro_gateway_partitions", "Partitions behind this gateway."
        )
        self._metric_unroutable = registry.gauge(
            "repro_gateway_partitions_unroutable",
            "Partitions currently not in the ok state.",
        )
        self._fanout_histogram = registry.histogram(
            "repro_gateway_fanout_partitions",
            "Partitions touched per routed query.",
            buckets=SIZE_BUCKETS,
        )
        registry.collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Scrape-time: mirror gateway-local totals into registry handles.

        Deliberately partition-RPC-free (collectors are synchronous); the
        cross-partition view is assembled by :meth:`_handle_metrics`, which
        fetches and merges per-partition snapshots over the control links.
        """
        serving = self.statistics
        for field, counter in self._metric_counters.items():
            counter.set_total(float(getattr(serving, field)))
        self._metric_connections.set(float(len(self._connections)))
        self._metric_clock.set(self._clock)
        self._metric_partitions.set(float(len(self._targets)))
        self._metric_unroutable.set(
            float(sum(1 for state in self._health if state != "ok"))
        )

    async def _handle_metrics(self) -> Dict[str, Any]:
        """The gateway's registry merged with every reachable partition's.

        A partition sharing this process's registry object (the in-process
        loopback shape) is already present in the gateway's own snapshot
        and is skipped, so nothing is counted twice.
        """

        async def fetch(index: int) -> Optional[Dict[str, Any]]:
            target = self._targets[index]
            if not isinstance(target, str) and (
                getattr(target, "registry", None) is self._registry
            ):
                return None
            if not self._partition_routable(index):
                return None
            try:
                return await self._control_link(index).metrics()
            except _LINK_ERRORS:
                self._note_partition_failure(index)
                return None

        fetched = await asyncio.gather(
            *(fetch(index) for index in range(len(self._targets)))
        )
        snapshots = [self._registry.snapshot()]
        snapshots.extend(snapshot for snapshot in fetched if snapshot)
        return merge_snapshots(snapshots)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open one control link per partition (query/snapshot/stats path)."""
        for index in range(len(self._targets)):
            await self._connect_control(index)

    async def _connect_control(self, index: int) -> Client:
        link = await Client.from_transport(await dial(self._targets[index]))
        self._control[index] = link
        return link

    def _control_link(self, index: int) -> Client:
        link = self._control[index]
        if link is None:
            raise ConnectionResetError(f"partition {index} has no control link")
        return link

    # ------------------------------------------------------------------
    # Partition health (the recovery state machine)
    # ------------------------------------------------------------------
    def partition_state(self, index: int) -> str:
        """This partition's health: one of :data:`PARTITION_STATES`."""
        return self._health[index]

    def _note_partition_failure(self, index: int) -> None:
        """An op (or the supervisor) found partition ``index`` unreachable.

        With a pool the partition becomes ``recovering`` — ops queue on its
        routable event until the supervisor brings it back (or gives up,
        downgrading it to ``degraded``).  Without a pool nobody will ever
        restart it, so it goes straight to terminal ``down``.
        """
        if self._health[index] != "ok":
            return
        if TRACER.enabled:
            # SIGKILL leaves the dead partition nothing to dump, so the
            # survivor's recent spans are the crash's flight record: the
            # last frames the gateway exchanged before noticing the death.
            TRACER.dump(
                f"partition{index}-unreachable",
                reason=f"partition {index} unreachable at clock {self._clock:g}",
            )
        self._partition_down_since.setdefault(index, self._clock)
        if self._pool is not None:
            self._health[index] = "recovering"
            self._routable[index].clear()
        else:
            self._health[index] = "down"
        _LOG.warning(
            "partition unreachable",
            extra={
                "fields": {
                    "partition": index,
                    "state": self._health[index],
                    "clock": self._clock,
                }
            },
        )

    def _mark_partition_ok(self, index: int) -> None:
        if self._health[index] != "ok":
            _LOG.info(
                "partition routable again",
                extra={"fields": {"partition": index, "clock": self._clock}},
            )
        self._health[index] = "ok"
        self._partition_down_since.pop(index, None)
        self._routable[index].set()

    def _mark_partition_degraded(self, index: int) -> None:
        """Terminal: restart budget exhausted; release queued ops to the
        mirror-only path."""
        self._health[index] = "degraded"
        self._partition_down_since.setdefault(index, self._clock)
        self._routable[index].set()
        _LOG.error(
            "partition degraded (restart budget exhausted)",
            extra={"fields": {"partition": index, "clock": self._clock}},
        )

    def _partition_routable(self, index: int) -> bool:
        """Whether ops may currently be forwarded to partition ``index``."""
        return self._health[index] == "ok"

    async def _await_partition(
        self, index: int, timeout: Optional[float] = None
    ) -> bool:
        """Wait for ``index`` to become routable; False means answer from
        the mirror (terminal state, or the recovery grace ran out)."""
        if self._health[index] == "ok":
            return True
        if self._health[index] in ("degraded", "down"):
            return False
        if timeout is not None and timeout <= 0:
            return False
        try:
            await asyncio.wait_for(
                asyncio.shield(self._routable[index].wait()), timeout
            )
        except asyncio.TimeoutError:
            pass
        return self._health[index] == "ok"

    async def _drop_upstream(self, connection: _Connection, index: int) -> None:
        """Forget a dead upstream link so the retry dials the new target."""
        links = self._upstreams.get(connection)
        if links is not None:
            stale = links.pop(index, None)
            if stale is not None:
                await stale.close()

    # ------------------------------------------------------------------
    # The mirror's drift model (mirror-degraded answers)
    # ------------------------------------------------------------------
    def _advance_clock(self, time: Optional[float]) -> None:
        if time is not None and time > self._clock:
            self._clock = time

    def _observe_value(
        self, key: Hashable, value: float, time: Optional[float]
    ) -> None:
        """Fold one exact value into the mirror and its drift envelope."""
        old = self._values.get(key)
        if old is not None and value != old:
            drift = self._drift.get(key)
            if drift is None:
                drift = self._drift[key] = _KeyDrift()
            last = self._last_update_time.get(key)
            gap = time - last if (time is not None and last is not None) else None
            drift.observe(abs(value - old), gap)
        self._values[key] = float(value)
        if time is not None:
            self._last_update_time[key] = time

    def _mirror_degraded_interval(
        self, key: Hashable, time: Optional[float]
    ) -> Interval:
        """The honest bound for a key whose partition is unreachable.

        The partition-side :meth:`CacheServer._degraded_interval` widening
        model, run from the gateway's own mirror: last exact value padded
        by (largest observed step × potentially missed updates ×
        ``degraded_slack``).  A key the mirror never saw is unbounded —
        the same honesty a single server gives an unknown key.
        """
        value = self._values.get(key)
        if value is None:
            return Interval(-math.inf, math.inf)
        down_at = self._partition_down_since.get(self.partition_of(key))
        now = time if time is not None else self._clock
        drift = self._drift.get(key)
        if down_at is None or drift is None or drift.max_step <= 0.0:
            return Interval.exact(value)
        elapsed = now - down_at
        if elapsed <= 0.0:
            return Interval.exact(value)
        gap = drift.min_gap if math.isfinite(drift.min_gap) else 1.0
        missed = math.ceil(elapsed / gap)
        allowance = self._degraded_slack * missed * drift.max_step
        return Interval(value - allowance, value + allowance)

    async def close(self) -> None:
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        await super().close()
        for links in list(self._upstreams.values()):
            for link in links.values():
                await link.close()
        self._upstreams.clear()
        for index, link in enumerate(self._control):
            if link is not None:
                await link.close()
                self._control[index] = None
        self._registry.remove_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Connection teardown hooks
    # ------------------------------------------------------------------
    async def _connection_lost(self, connection: _Connection) -> None:
        # Closing the upstream links delivers EOF to every partition this
        # feeder touched; the partitions mark its keys down and serve
        # degraded answers — their machinery, not a gateway re-implementation.
        links = self._upstreams.pop(connection, None)
        if links:
            for link in links.values():
                await link.close()

    def _connection_removed(self, connection: _Connection) -> None:
        for key in connection.keys:
            if self._owners.get(key) is connection:
                del self._owners[key]
        connection.keys.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            request = parse_request(frame)
            if request is None:
                reply = error_response(request_id, f"unknown operation {op!r}")
            elif isinstance(request, Update):
                reply = await self._handle_update(connection, request)
            elif isinstance(request, UpdateBatch):
                reply = await self._handle_update_batch(connection, request)
            elif isinstance(request, QueryRequest):
                reply = await self._handle_query(request)
            elif isinstance(request, RegisterFeeder):
                reply = await self._handle_register(connection, request)
            elif isinstance(request, StatsRequest):
                reply = await self._handle_stats()
            elif isinstance(request, MetricsRequest):
                reply = await self._handle_metrics()
            else:
                # snapshot / refresh_key / refresh are partition-internal
                # ops; at the gateway's front door they are unknown.
                reply = error_response(request_id, f"unknown operation {op!r}")
        except ConnectionResetError:
            reply = error_response(request_id, "refresh fetch failed: feeder gone")
        except Exception as exc:
            reply = error_response(request_id, f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            if isinstance(reply, Response):
                reply = reply.to_wire()
            reply.setdefault("id", request_id)
            reply.setdefault("ok", True)
            await connection.send(reply)

    # ------------------------------------------------------------------
    # Upstream feeder links
    # ------------------------------------------------------------------
    async def _upstream(self, connection: _Connection, index: int) -> Client:
        links = self._upstreams.setdefault(connection, {})
        link = links.get(index)
        if link is None:
            link = await Client.from_transport(
                await dial(self._targets[index]),
                on_request=self._refresh_forwarder(connection),
            )
            links[index] = link
        return link

    def _refresh_forwarder(self, connection: _Connection):
        """The upstream link's handler: partition refresh RPC -> feeder."""

        async def forward(frame: Dict[str, Any]) -> Dict[str, Any]:
            key = frame.get("key")
            try:
                value = await self._refresh_rpc(connection, key)
            except ConnectionResetError as exc:
                return error_response(frame.get("id"), str(exc))
            return {"value": value}

        return forward

    # ------------------------------------------------------------------
    # Feeder operations
    # ------------------------------------------------------------------
    async def _handle_register(
        self, connection: _Connection, request: RegisterFeeder
    ) -> RegisterAck:
        epoch: Optional[int] = None
        if request.feeder is not None:
            # Gateway-level epoch fencing, same discipline as the server's:
            # a reconnecting feeder identity supersedes its old session.
            epoch = self._feeder_epochs.get(request.feeder, 0) + 1
            self._feeder_epochs[request.feeder] = epoch
            connection.feeder_id = request.feeder
            connection.epoch = epoch
        values = dict(zip(request.keys, request.values))
        refreshes: Optional[int] = 0 if request.resync else None
        self._advance_clock(request.time)
        for index, keys in partition_keys(request.keys, len(self._targets)).items():
            # A recovering partition blocks the registration (like writes);
            # a terminal one is mirror-only, the registration still
            # succeeds against the gateway state below.
            while await self._await_partition(index):
                try:
                    link = await self._upstream(connection, index)
                    ack = await link.register(
                        keys,
                        [values[key] for key in keys],
                        feeder=request.feeder,
                        resync=request.resync,
                        time=request.time,
                    )
                except _LINK_ERRORS:
                    await self._drop_upstream(connection, index)
                    self._note_partition_failure(index)
                    continue
                if request.resync and ack.refreshes is not None:
                    refreshes += ack.refreshes
                break
        for key, value in values.items():
            self._observe_value(key, float(value), request.time)
            self._owners[key] = connection
            connection.keys.add(key)
        if request.resync:
            self.statistics.feeder_resyncs += 1
        return RegisterAck(
            registered=len(request.keys), epoch=epoch, refreshes=refreshes
        )

    async def _handle_update(self, connection: _Connection, request: Update) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        self._advance_clock(request.time)
        index = self.partition_of(request.key)
        refresh = False
        # Writes wait out a recovery (re-sent updates fold idempotently:
        # the recovered partition already replayed any it had applied);
        # a terminal partition takes them into the mirror only.
        while await self._await_partition(index):
            try:
                link = await self._upstream(connection, index)
                ack = await link.update(request.key, request.value, time=request.time)
            except _LINK_ERRORS:
                await self._drop_upstream(connection, index)
                self._note_partition_failure(index)
                continue
            refresh = ack.refresh
            break
        self._observe_value(request.key, float(request.value), request.time)
        self._owners.setdefault(request.key, connection)
        connection.keys.add(request.key)
        self.statistics.updates_applied += 1
        return UpdateAck(refresh=refresh)

    async def _handle_update_batch(
        self, connection: _Connection, request: UpdateBatch
    ) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        groups: Dict[int, List[Tuple[Hashable, float]]] = {}
        for key, value in request.updates:
            groups.setdefault(self.partition_of(key), []).append((key, value))
        self._advance_clock(request.time)

        # Per-key order is preserved inside each forwarded batch, and the
        # refresh counts of disjoint partitions commute — so the forwards
        # can run concurrently without disturbing serialised-replay
        # bit-identity, and a batch costs the slowest partition rather
        # than the sum.  The retry wraps each partition's forward, never
        # the gather: siblings that already applied must not be re-sent
        # (re-sends would fold idempotently anyway, but why churn).
        async def forward(index: int, updates: List[Tuple[Hashable, float]]) -> int:
            while await self._await_partition(index):
                try:
                    link = await self._upstream(connection, index)
                    ack = await link.update_batch(updates, time=request.time)
                except _LINK_ERRORS:
                    await self._drop_upstream(connection, index)
                    self._note_partition_failure(index)
                    continue
                return ack.refreshes
            return 0  # terminal partition: mirror-only

        refreshes = sum(
            await asyncio.gather(
                *(forward(index, updates) for index, updates in groups.items())
            )
        )
        for key, value in request.updates:
            self._observe_value(key, float(value), request.time)
            self._owners.setdefault(key, connection)
            connection.keys.add(key)
        self.statistics.updates_applied += len(request.updates)
        return UpdateBatchAck(refreshes=refreshes)

    # ------------------------------------------------------------------
    # Query execution (snapshot -> global selection -> routed refreshes)
    # ------------------------------------------------------------------
    async def _handle_query(self, request: QueryRequest) -> Any:
        if self._query_gate.locked():
            if self._admission_waiting >= self._admission_queue_limit:
                self.statistics.queries_rejected += 1
                return {
                    "ok": False,
                    "error": "overloaded: admission queue full",
                    "overloaded": True,
                }
            self._admission_waiting += 1
            try:
                await self._query_gate.acquire()
            finally:
                self._admission_waiting -= 1
        else:
            await self._query_gate.acquire()
        try:
            return await self._execute_query(request)
        finally:
            self._query_gate.release()

    async def _execute_query(self, request: QueryRequest) -> BoundedAnswer:
        keys = list(request.keys)
        if not keys:
            raise ProtocolError("a query must touch at least one key")
        kind = request.aggregate
        constraint = request.constraint
        time = request.time
        groups = partition_keys(keys, len(self._targets))
        self._fanout_histogram.observe(float(len(groups)))

        self._advance_clock(time)

        async def snapshot(
            index: int, group: List[Hashable]
        ) -> Optional[SnapshotReply]:
            # None means "answer this partition's keys from the mirror":
            # it is terminally degraded/down, or still recovering after
            # ``recovery_grace``.  A transient failure flips it to
            # recovering and retries — when recovery wins the race the
            # answer is exactly the uninterrupted one.
            while await self._await_partition(index, self._recovery_grace):
                link = self._control_link(index)
                try:
                    response = await link.call(
                        Snapshot(keys=tuple(group), constraint=constraint, time=time)
                    )
                except _LINK_ERRORS:
                    self._note_partition_failure(index)
                    continue
                return SnapshotReply.from_wire(response)
            return None

        replies = await asyncio.gather(
            *(snapshot(index, group) for index, group in groups.items())
        )
        intervals: Dict[Hashable, Interval] = {}
        down_bounds: Dict[Hashable, Interval] = {}
        hits = 0
        for (index, group), reply in zip(groups.items(), replies):
            if reply is None:
                for key in group:
                    bound = self._mirror_degraded_interval(key, time)
                    intervals[key] = bound
                    down_bounds[key] = bound
                continue
            hits += reply.hits
            for key, (low, high) in zip(group, reply.intervals):
                intervals[key] = Interval(low, high)
            for position, (low, high) in zip(reply.down, reply.down_intervals):
                down_bounds[group[position]] = Interval(low, high)
        # Re-key the dict into query order: the selection and its final
        # merge must see the same float-summation order a single server
        # (and the offline simulator) uses.
        intervals = {key: intervals[key] for key in keys}

        refreshed: List[Hashable] = []

        async def fetch_exact(key: Hashable) -> float:
            index = self.partition_of(key)
            while await self._await_partition(index, self._recovery_grace):
                link = self._control_link(index)
                try:
                    response = await link.call(RefreshKey(key=key, time=time))
                except _LINK_ERRORS:
                    self._note_partition_failure(index)
                    continue
                if response.get("down"):
                    down_bounds[key] = Interval(response["low"], response["high"])
                    raise _KeyDown(key)
                value = float(response["value"])
                refreshed.append(key)
                intervals[key] = Interval.exact(value)
                self._values[key] = value
                return value
            # The partition went unroutable under this query's feet.
            down_bounds[key] = self._mirror_degraded_interval(key, time)
            raise _KeyDown(key)

        while True:
            degraded = [key for key in keys if key in down_bounds]
            try:
                bound = await execute_partitioned_query(
                    kind,
                    keys,
                    intervals,
                    constraint,
                    degraded,
                    lambda key, snapshot: down_bounds[key],
                    fetch_exact,
                )
                break
            except _KeyDown:
                continue
        self.statistics.queries_served += 1
        if degraded:
            self.statistics.queries_degraded += 1
        return BoundedAnswer(
            low=bound.low,
            high=bound.high,
            refreshed=tuple(refreshed),
            hits=hits,
            misses=len(keys) - hits,
            degraded=bool(degraded),
            degraded_keys=tuple(degraded),
        )

    # ------------------------------------------------------------------
    # Stats aggregation
    # ------------------------------------------------------------------
    #: Partition counters that sum meaningfully across the deployment.
    _SUMMED_STATS = (
        "keys",
        "cached_entries",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "updates_applied",
        "updates_ignored",
        "value_refreshes",
        "query_refreshes",
        "refresh_rpcs",
        "refreshes_failed",
        "stale_epoch_rejections",
        "feeder_resyncs",
        "keys_down",
        "total_cost",
        "messages_sent",
        "total_latency",
    )

    #: Durability counters summed across partitions into the merged stats.
    _SUMMED_WAL_STATS = (
        "wal_records",
        "wal_bytes",
        "wal_records_replayed",
        "wal_torn_tails",
        "checkpoints",
    )

    async def _handle_stats(self) -> Dict[str, Any]:
        async def partition(index: int) -> Dict[str, Any]:
            # An unroutable partition contributes nothing rather than
            # failing the whole stats op.
            if not self._partition_routable(index):
                return {}
            try:
                return await self._control_link(index).stats()
            except _LINK_ERRORS:
                self._note_partition_failure(index)
                return {}

        partition_stats = await asyncio.gather(
            *(partition(index) for index in range(len(self._targets)))
        )
        merged: Dict[str, Any] = {name: 0 for name in self._SUMMED_STATS}
        merged.update({name: 0 for name in self._SUMMED_WAL_STATS})
        shard_hit_rates: List[float] = []
        clock = 0.0
        durable = False
        checkpoint_age: Optional[float] = None
        for stats in partition_stats:
            for name in self._SUMMED_STATS:
                merged[name] += stats.get(name, 0)
            for name in self._SUMMED_WAL_STATS:
                merged[name] += stats.get(name, 0)
            shard_hit_rates.extend(stats.get("shard_hit_rates", []))
            clock = max(clock, stats.get("clock", 0.0))
            durable = durable or bool(stats.get("durable"))
            age = stats.get("last_checkpoint_age")
            if age is not None:
                checkpoint_age = age if checkpoint_age is None else max(
                    checkpoint_age, age
                )
        lookups = merged["hits"] + merged["misses"]
        serving = self.statistics
        merged.update(
            {
                "clock": clock,
                "partitions": len(self._targets),
                "partition_restarts": serving.partition_restarts,
                "partition_health": list(self._health),
                "durable": durable,
                "last_checkpoint_age": checkpoint_age,
                "connections": len(self._connections),
                "hit_rate": (merged["hits"] / lookups) if lookups else 0.0,
                "shard_hit_rates": shard_hit_rates,
                "queries_served": serving.queries_served,
                "queries_rejected": serving.queries_rejected,
                "queries_degraded": serving.queries_degraded,
                "gateway_refresh_rpcs": serving.refresh_rpcs,
                "gateway_stale_epoch_rejections": serving.stale_epoch_rejections,
                # Gateway-local connection churn and the count of partitions
                # that contributed nothing above — without these a merged
                # snapshot with unreachable partitions silently under-counts.
                "gateway_connections_opened": serving.connections_opened,
                "gateway_connections_closed": serving.connections_closed,
                "partitions_unreachable": sum(
                    1 for state in self._health if state != "ok"
                ),
            }
        )
        return merged

    def health(self) -> Dict[str, Any]:
        """Per-partition liveness/recovery state for ``GET /healthz``."""
        partitions: List[Dict[str, Any]] = []
        for index in range(len(self._targets)):
            entry: Dict[str, Any] = {
                "index": index,
                "state": self._health[index],
                "restarts": 0,
            }
            if self._pool is not None:
                restarts = getattr(self._pool, "worker_restarts", None)
                if restarts is not None:
                    entry["restarts"] = restarts(index)
            partitions.append(entry)
        return {
            "ok": all(entry["state"] == "ok" for entry in partitions),
            "role": "gateway",
            "partitions": partitions,
            "partition_restarts": self.statistics.partition_restarts,
        }

    # ------------------------------------------------------------------
    # Partition supervision (the process pool's restart path)
    # ------------------------------------------------------------------
    def start_supervisor(self, poll_interval: float = 0.25) -> asyncio.Task:
        """Start the background liveness loop (requires a pool)."""
        if self._pool is None:
            raise ValueError("supervision requires a partition pool")
        self._supervisor = asyncio.ensure_future(self.supervise(poll_interval))
        return self._supervisor

    async def supervise(self, poll_interval: float = 0.25) -> None:
        """Poll the pool; restart and resync any dead partition, forever.

        A partition that burns through its restart budget
        (:class:`~repro.serving.errors.SupervisionExhausted`) is downgraded
        to terminal ``degraded`` — its keys answer from the gateway mirror
        forever, its siblings stay supervised, and the client contract
        ("answers widen, never err") holds throughout.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(poll_interval)
            for index in range(len(self._targets)):
                if self._health[index] == "degraded":
                    continue
                if self._pool.is_alive(index) and self._health[index] == "ok":
                    continue
                self._note_partition_failure(index)
                try:
                    target = await loop.run_in_executor(
                        None, self._pool.restart, index
                    )
                except SupervisionExhausted:
                    self._mark_partition_degraded(index)
                    continue
                await self.resync_partition(index, target)

    async def resync_partition(self, index: int, target: Any) -> None:
        """Point partition ``index`` at ``target``, resync it, mark it ok.

        Two shapes of fresh process:

        * **Durable restart** — the partition replayed its snapshot+WAL in
          its constructor and already holds every key, interval, counter
          and down-stamp.  The gateway only re-registers live feeders'
          keys over fresh upstream links (``resync`` registration: equal
          values fold as no-ops, refresh RPCs flow again); orphaned keys
          are left exactly as recovery rebuilt them.  A final
          ``recovered`` handshake makes the partition checkpoint its
          recovered state before live routing resumes.
        * **Blank restart** (no WAL) — the gateway replays its mirror:
          keys with a live feeder re-register under that feeder's
          identity, and orphaned keys are registered over a throwaway
          link that is closed immediately, so the partition holds their
          last values but serves them as honest degraded answers.
        """
        self._targets[index] = target
        old = self._control[index]
        if old is not None:
            await old.close()
        await self._connect_control(index)
        self.statistics.partition_restarts += 1
        stats = await self._control_link(index).stats()
        durable = bool(stats.get("durable")) and stats.get("keys", 0) > 0
        by_connection: Dict[Optional[_Connection], List[Hashable]] = {}
        for key, value in self._values.items():
            if self.partition_of(key) != index:
                continue
            owner = self._owners.get(key)
            if owner is not None and owner.closing:
                owner = None
            by_connection.setdefault(owner, []).append(key)
        for connection, keys in by_connection.items():
            values = [self._values[key] for key in keys]
            if connection is None:
                if durable:
                    # Recovery already rebuilt orphaned keys — with their
                    # real intervals, drift envelopes and (wider, safer)
                    # original down-stamps.  A mirror replay would only
                    # clobber that with a fresh-registration lifecycle.
                    continue
                orphan = await Client.from_transport(await dial(target))
                try:
                    await orphan.register(keys, values)
                finally:
                    await orphan.close()
                continue
            links = self._upstreams.get(connection)
            if links is not None:
                stale = links.pop(index, None)
                if stale is not None:
                    await stale.close()
            link = await self._upstream(connection, index)
            await link.register(
                keys, values, feeder=connection.feeder_id, resync=durable
            )
        if durable:
            await self._control_link(index).call(Recovered())
        self._mark_partition_ok(index)
