"""The HTTP/WebSocket edge: the serving protocol over web-native transports.

Stdlib-only (asyncio + ``hashlib``/``base64``): a deliberately minimal
HTTP/1.1 server and an RFC 6455 WebSocket implementation, just enough for

* ``GET /ws`` — upgrade to a WebSocket speaking the *same* JSON messages
  as the framed TCP protocol, one message per text frame (the 4-byte
  length prefix disappears; WebSocket frames carry their own length).
  A connection upgraded here is served by the same
  ``BaseFrameServer.serve_transport`` loop as a TCP connection — feeders,
  queries, server-initiated refresh RPCs, everything works over it.
* ``POST /query`` — one bounded aggregate per request for curl-grade
  clients: the JSON body is the ``query`` operation's fields, the JSON
  response is the answer frame.
* ``GET /metrics`` — the backend's metrics registry as Prometheus text
  (a gateway merges every reachable partition's registry into the scrape).
* ``GET /stats`` and ``GET /healthz`` — the legacy dict snapshot (see the
  deprecation note in ``docs/SERVING.md``) and the cheap liveness probe.

The JSON dialect is the wire protocol's: floats round-trip through
``repr`` and non-finite values use the ``Infinity`` extension, so the
edge never perturbs a value the precision machinery depends on.

:func:`connect_websocket` is the client side; ``Client.connect("ws://…")``
uses it, which is how the load generator targets an edge.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    parse_request,
)

#: RFC 6455's fixed handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Opcode nibbles (no fragmentation: every data frame is FIN).
_OP_TEXT = 0x1
_OP_BINARY = 0x2
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = MAX_FRAME_BYTES


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake ``key``."""
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


class WebSocketFrameTransport:
    """The serving protocol's frame transport over one WebSocket.

    Same surface as :class:`~repro.serving.transport.StreamFrameTransport`
    (``read_frame`` / ``write_frame`` / ``close`` / ``wait_closed``), so a
    WebSocket connection plugs into ``serve_transport`` and
    :class:`~repro.serving.api.Client` unchanged.  Client-role transports
    mask their writes, as the RFC requires; control frames (ping/close)
    are handled inside ``read_frame``.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        mask_writes: bool,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._mask_writes = mask_writes
        # Pings are answered from inside ``read_frame`` while other tasks
        # may be mid-``write_frame``; the lock keeps frames whole.
        self._write_lock = asyncio.Lock()

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        """Read one JSON message; ``None`` on close or EOF."""
        while True:
            try:
                header = await self._reader.readexactly(2)
                length = header[1] & 0x7F
                if length == 126:
                    length = int.from_bytes(await self._reader.readexactly(2), "big")
                elif length == 127:
                    length = int.from_bytes(await self._reader.readexactly(8), "big")
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"websocket frame of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES} limit"
                    )
                mask = (
                    await self._reader.readexactly(4)
                    if header[1] & 0x80
                    else None
                )
                payload = (
                    await self._reader.readexactly(length) if length else b""
                )
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                return None
            if mask is not None:
                payload = bytes(
                    byte ^ mask[index % 4] for index, byte in enumerate(payload)
                )
            opcode = header[0] & 0x0F
            if opcode == _OP_CLOSE:
                try:
                    await self._send(_OP_CLOSE, b"")
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    pass
                return None
            if opcode == _OP_PING:
                await self._send(_OP_PONG, payload)
                continue
            if opcode == _OP_PONG:
                continue
            if opcode not in (_OP_TEXT, _OP_BINARY) or not header[0] & 0x80:
                raise ProtocolError(
                    f"unsupported websocket frame (opcode {opcode}, "
                    f"fin {bool(header[0] & 0x80)})"
                )
            return decode_payload(payload)

    async def write_frame(self, message: Dict[str, Any]) -> None:
        """Write one message as a single text frame."""
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES} limit"
            )
        await self._send(_OP_TEXT, payload)

    async def _send(self, opcode: int, payload: bytes) -> None:
        head = bytearray([0x80 | opcode])
        mask_bit = 0x80 if self._mask_writes else 0x00
        length = len(payload)
        if length < 126:
            head.append(mask_bit | length)
        elif length < 1 << 16:
            head.append(mask_bit | 126)
            head += length.to_bytes(2, "big")
        else:
            head.append(mask_bit | 127)
            head += length.to_bytes(8, "big")
        if self._mask_writes:
            mask = os.urandom(4)
            head += mask
            payload = bytes(
                byte ^ mask[index % 4] for index, byte in enumerate(payload)
            )
        async with self._write_lock:
            self._writer.write(bytes(head) + payload)
            await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------


class HttpEdge:
    """A minimal HTTP/1.1 front door over any frame server.

    ``backend`` is anything with ``connect()`` (loopback dial) and
    ``serve_transport()`` — a :class:`~repro.serving.server.CacheServer`
    or a :class:`~repro.serving.gateway.GatewayServer` — so the edge is
    deployment-shape agnostic like every other client surface.
    """

    def __init__(self, backend: Any) -> None:
        self._backend = backend
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_http_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            if path == "/ws" and method == "GET":
                await self._upgrade(reader, writer, headers)
                return
            if path == "/query" and method == "POST":
                await self._respond_json(writer, 200, await self._query(body))
            elif path == "/stats" and method == "GET":
                await self._respond_json(writer, 200, await self._op({"op": "stats"}))
            elif path == "/metrics" and method == "GET":
                await self._respond_metrics(writer)
            elif path == "/healthz" and method == "GET":
                await self._respond_json(writer, 200, self._health())
            else:
                await self._respond_json(
                    writer,
                    404,
                    {"ok": False, "error": f"no route {method} {path}"},
                )
        except ProtocolError as exc:
            await self._respond_json(writer, 400, {"ok": False, "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _health(self) -> Dict[str, Any]:
        """Liveness: the backend's ``health()`` surface when it has one.

        A gateway reports per-partition ``ok``/``recovering``/``degraded``/
        ``down`` with restart counts; a single server reports its keys,
        down-keys and durability counters.  Backends without a ``health``
        method keep the bare liveness probe.
        """
        health = getattr(self._backend, "health", None)
        if health is None:
            return {"ok": True}
        return health()

    async def _respond_metrics(self, writer: asyncio.StreamWriter) -> None:
        """``GET /metrics``: the backend's registry as Prometheus text.

        The snapshot rides the ``metrics`` protocol op, so a gateway
        backend answers with its registry merged with every reachable
        partition's — the scrape sees the whole deployment.
        """
        from repro.obs.prom import render_snapshot

        snapshot = await self._op({"op": "metrics"})
        body = render_snapshot(snapshot).encode("utf-8")
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()

    async def _query(self, body: bytes) -> Dict[str, Any]:
        frame = dict(decode_payload(body))
        frame["op"] = "query"
        if parse_request(frame) is None:  # pragma: no cover - op is forced
            raise ProtocolError("not a query")
        return await self._op(frame)

    async def _op(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip over a throwaway loopback link."""
        from repro.serving.api import Client

        client = await Client.from_transport(self._backend.connect())
        try:
            fields = {
                name: value
                for name, value in frame.items()
                if name not in ("op", "id")
            }
            return await client.request(frame["op"], **fields)
        finally:
            await client.close()

    async def _upgrade(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if (
            key is None
            or "websocket" not in headers.get("upgrade", "").lower()
        ):
            await self._respond_json(
                writer, 400, {"ok": False, "error": "not a websocket upgrade"}
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
                "\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        transport = WebSocketFrameTransport(reader, writer, mask_writes=False)
        await self._backend.serve_transport(transport)

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request: (method, path, lower-cased headers, body)."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return None
    if not request_line:
        return None
    try:
        method, path, _version = request_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from exc
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError("request headers exceed the size limit")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise ProtocolError("request body exceeds the size limit")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------


async def connect_websocket(url: str) -> WebSocketFrameTransport:
    """Dial a ``ws://host:port/path`` URL and complete the RFC 6455 handshake."""
    host, port, path = _parse_ws_url(url)
    reader, writer = await asyncio.open_connection(host, port)
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("ascii")
    )
    await writer.drain()
    status_line = await reader.readline()
    if b"101" not in status_line.split(b" ", 2)[1:2]:
        writer.close()
        raise ProtocolError(
            f"websocket upgrade refused: {status_line.decode(errors='replace').strip()}"
        )
    accept = None
    total = len(status_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            writer.close()
            raise ProtocolError("handshake headers exceed the size limit")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != websocket_accept(key):
        writer.close()
        raise ProtocolError("websocket handshake accept mismatch")
    return WebSocketFrameTransport(reader, writer, mask_writes=True)


def _parse_ws_url(url: str) -> Tuple[str, int, str]:
    if url.startswith("ws://"):
        rest = url[len("ws://") :]
    elif url.startswith("wss://"):
        raise ProtocolError("wss:// is not supported (no TLS in this edge)")
    else:
        raise ProtocolError(f"not a websocket URL: {url!r}")
    location, slash, path = rest.partition("/")
    host, _, port = location.rpartition(":")
    if not host or not port.isdigit():
        raise ProtocolError(f"cannot parse websocket host:port in {url!r}")
    return host, int(port), (slash + path) or "/"
