"""The trace-replay load harness for the serving layer.

Two replay modes drive a :class:`~repro.serving.server.CacheServer` with the
same workload artefacts the offline experiments use (a
:class:`~repro.data.trace.Trace`, a
:class:`~repro.simulation.config.SimulationConfig`), so the offline and
online paths share every generator:

* :func:`replay_trace_deterministic` — one feeder plus one query client
  replay the *exact* offline event sequence: updates walk the merged
  timelines (:class:`~repro.simulation.kernel.MergedEventWalk`, the batch
  kernel's ordering), queries come from
  :meth:`SimulationConfig.build_workload` (the simulator's RNG chain), and
  every RPC is awaited before the next event (serialised query order).  The
  server then reproduces the offline simulator's total refresh count and hit
  rate bit for bit — asserted by ``tests/test_serving_equivalence.py`` and
  the CI serving smoke.
* :func:`replay_trace_concurrent` — N client connections issue queries
  concurrently (optionally paced to a target rate) while feeder connections
  replay the update timelines, measuring what the deterministic mode cannot:
  p50/p99 query latency, throughput, and admission-control rejections under
  real interleaving.

Both return a :class:`LoadgenReport`; the ``serving_throughput`` experiment
(:mod:`repro.experiments.serving_throughput`) tabulates concurrent runs
across client counts.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
import time as wall_time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Optional, Tuple

from repro.data.merged import merge_timelines
from repro.data.streams import TraceStream
from repro.data.trace import Trace
from repro.serving.protocol import ProtocolError, error_response, is_request
from repro.serving.transport import StreamFrameTransport
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import HORIZON_TOLERANCE
from repro.simulation.kernel import MergedEventWalk


class TcpDialer:
    """Dial adapter for load-generating against a remote ``repro serve``.

    Presents the same ``connect()`` surface as
    :meth:`repro.serving.server.CacheServer.connect` (the loopback path), so
    both replay modes accept either a local server or a ``TcpDialer``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def connect(self) -> StreamFrameTransport:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        return StreamFrameTransport(reader, writer)


async def _dial(target: Any) -> Any:
    """Open one connection on a server or dialer (sync or async connect)."""
    transport = target.connect()
    if inspect.isawaitable(transport):
        transport = await transport
    return transport


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(int(fraction * len(sorted_values) + 0.5), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class LoadgenReport:
    """What one load-generation run observed (client side plus server stats)."""

    mode: str
    clients: int
    queries: int
    updates_sent: int
    hits: int
    misses: int
    value_refreshes: int
    query_refreshes: int
    queries_rejected: int
    total_cost: float
    omega: float
    wall_seconds: float
    throughput_qps: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    server_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of per-key workload lookups served from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    @property
    def refresh_count(self) -> int:
        """Total refreshes of both kinds the run caused."""
        return self.value_refreshes + self.query_refreshes

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI's output)."""
        return "\n".join(
            [
                f"mode={self.mode} clients={self.clients}",
                f"queries={self.queries} rejected={self.queries_rejected} "
                f"updates={self.updates_sent}",
                f"hit_rate={self.hit_rate:.4f} (hits={self.hits} "
                f"misses={self.misses})",
                f"refreshes: value={self.value_refreshes} "
                f"query={self.query_refreshes}",
                f"Omega={self.omega:.4f} (total_cost={self.total_cost:g})",
                f"latency_ms: p50={self.p50_latency_ms:.3f} "
                f"p99={self.p99_latency_ms:.3f} max={self.max_latency_ms:.3f}",
                f"throughput={self.throughput_qps:.1f} q/s "
                f"wall={self.wall_seconds:.2f}s",
            ]
        )


class ServingClient:
    """A protocol client: request/response plus server-initiated RPC serving.

    One background task reads frames and demultiplexes them: responses
    resolve the matching pending request future; requests (the server's
    ``refresh`` RPCs on feeder connections) are answered by ``on_request``.
    """

    def __init__(
        self,
        transport: Any,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
    ) -> None:
        self._transport = transport
        self._on_request = on_request
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.Task] = None

    @classmethod
    async def open(
        cls,
        transport: Any,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
    ) -> "ServingClient":
        """Wrap a connected transport and start its read loop."""
        client = cls(transport, on_request)
        client._reader = asyncio.ensure_future(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    frame = await self._transport.read_frame()
                except ProtocolError:
                    # A corrupt frame ends the session like an EOF would;
                    # pending and future requests fail instead of hanging.
                    break
                if frame is None:
                    break
                if is_request(frame):
                    if self._on_request is None:
                        reply = error_response(
                            frame.get("id"), "client serves no requests"
                        )
                    else:
                        reply = await self._on_request(frame)
                        reply.setdefault("id", frame.get("id"))
                        reply.setdefault("ok", True)
                    await self._transport.write_frame(reply)
                else:
                    future = self._pending.pop(frame.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        finally:
            # Whatever ended the loop (EOF, corrupt frame, a failing
            # on_request handler), close the transport so the *server* side
            # observes EOF and tears the connection down — otherwise a
            # zombie feeder would swallow refresh RPCs forever.
            self._transport.close()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionResetError("serving connection closed")
                    )
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its response (raises on error replies)."""
        if self._reader is not None and self._reader.done():
            # The read loop is gone (EOF or corrupt frame): nothing can ever
            # resolve a new future, so fail fast instead of hanging.
            raise ConnectionResetError("serving connection closed")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        await self._transport.write_frame({"op": op, "id": request_id, **fields})
        response = await future
        if not response.get("ok", True) and not response.get("overloaded"):
            raise RuntimeError(f"{op} failed: {response.get('error')}")
        return response

    async def close(self) -> None:
        """Close the transport and wait for the read loop to finish.

        A read loop that died on a transport error must not re-raise here:
        close() runs in ``finally`` blocks whose primary error would be
        masked, and every sibling client still deserves its close.
        """
        self._transport.close()
        if self._reader is not None:
            await asyncio.gather(self._reader, return_exceptions=True)
        await self._transport.wait_closed()


def _trace_replay_parts(
    trace: Trace, config: SimulationConfig
) -> Tuple[List[Hashable], Dict[Hashable, float], MergedEventWalk]:
    """Build the shared replay artefacts: keys, initial values, event walk."""
    streams = {key: TraceStream(trace, key) for key in trace.keys}
    initials = {key: stream.initial_value for key, stream in streams.items()}
    timelines = {
        key: stream.schedule(config.duration) for key, stream in streams.items()
    }
    merged = merge_timelines(timelines, engine=config.stream_engine())
    walk = MergedEventWalk(merged, config.duration + HORIZON_TOLERANCE)
    return list(trace.keys), initials, walk


def _batch_by_instant(
    events: List[Tuple[Hashable, float, float]],
) -> List[Tuple[float, List[Tuple[Hashable, float]]]]:
    """Group a time-ordered event list into per-instant update batches."""
    batches: List[Tuple[float, List[Tuple[Hashable, float]]]] = []
    for key, time, value in events:
        if not batches or batches[-1][0] != time:
            batches.append((time, []))
        batches[-1][1].append((key, value))
    return batches


async def replay_trace_deterministic(
    server: Any,
    trace: Trace,
    config: SimulationConfig,
) -> LoadgenReport:
    """Replay the offline event sequence through a server, serialised.

    ``server`` is a :class:`~repro.serving.server.CacheServer` (dialled over
    its loopback transport).  Every update batch and every query is awaited
    before the next event, so the server observes exactly the interleaving
    the offline simulator executes; with the same policy and config
    (``warmup = 0`` offline, since the server has no warm-up notion) the
    refresh counts and hit rate match bit for bit.
    """
    keys, values, walk = _trace_replay_parts(trace, config)
    workload = config.build_workload(keys)
    feeder = await ServingClient.open(
        await _dial(server),
        on_request=lambda frame: _answer_refresh(values, frame),
    )
    querier = await ServingClient.open(await _dial(server))
    started = wall_time.perf_counter()
    latencies: List[float] = []
    queries = updates_sent = hits = misses = rejected = 0
    try:
        # Snapshot the server's all-time counters so the report describes
        # *this* run even against a persistent server.
        baseline = await querier.request("stats")
        await feeder.request(
            "register", keys=keys, values=[values[key] for key in keys]
        )
        horizon = config.duration + HORIZON_TOLERANCE
        period = config.query_period
        query_time = period
        pending: List[Tuple[Hashable, float, float]] = []
        collect = pending.append

        async def flush_updates(until: float) -> None:
            nonlocal updates_sent
            walk.advance(until, lambda key, time, value: collect((key, time, value)))
            for time, updates in _batch_by_instant(pending):
                # The feeder's own view advances as it sends, so a refresh
                # RPC arriving mid-replay answers with the replayed value.
                for key, value in updates:
                    values[key] = value
                await feeder.request("update_batch", updates=updates, time=time)
                updates_sent += len(updates)
            pending.clear()

        while query_time <= horizon:
            await flush_updates(query_time)
            query = workload.generate(query_time)
            begin = wall_time.perf_counter()
            response = await querier.request(
                "query",
                keys=list(query.keys),
                aggregate=query.kind.name,
                constraint=query.constraint,
                time=query_time,
            )
            latencies.append(wall_time.perf_counter() - begin)
            queries += 1
            if response.get("overloaded"):
                rejected += 1
            else:
                hits += response["hits"]
                misses += response["misses"]
            query_time += period
        await flush_updates(horizon)
        stats = await querier.request("stats")
    finally:
        await feeder.close()
        await querier.close()
    return _build_report(
        mode="deterministic",
        baseline=baseline,
        clients=1,
        config=config,
        latencies=latencies,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        rejected=rejected,
        stats=stats,
        wall_seconds=wall_time.perf_counter() - started,
    )


async def _answer_refresh(
    values: Dict[Hashable, float], frame: Dict[str, Any]
) -> Dict[str, Any]:
    """A feeder's handler for the server's ``refresh`` RPC."""
    key = frame.get("key")
    if key not in values:
        return error_response(frame.get("id"), f"unknown key {key!r}")
    return {"value": values[key]}


async def replay_trace_concurrent(
    server: Any,
    trace: Trace,
    config: SimulationConfig,
    *,
    clients: int = 4,
    queries_per_client: int = 100,
    rate: float = 0.0,
    feeders: int = 1,
) -> LoadgenReport:
    """Drive a server with concurrent clients while feeders replay updates.

    ``clients`` query connections each issue ``queries_per_client`` bounded
    aggregates (drawn from per-client seeded workloads), optionally paced to
    ``rate`` queries/second per client (``0`` = as fast as responses
    return).  ``feeders`` connections split the key space and replay the
    update timelines concurrently.  Latency percentiles are measured on the
    client side; admission-control rejections are counted, not raised.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if feeders < 1:
        raise ValueError("feeders must be at least 1")
    keys, values, walk = _trace_replay_parts(trace, config)
    started = wall_time.perf_counter()
    events: List[Tuple[Hashable, float, float]] = []
    walk.advance(
        config.duration + HORIZON_TOLERANCE,
        lambda key, time, value: events.append((key, time, value)),
    )
    key_of_feeder = {key: index % feeders for index, key in enumerate(keys)}
    feeder_clients: List[ServingClient] = []
    for index in range(feeders):
        owned = [key for key in keys if key_of_feeder[key] == index]
        feeder = await ServingClient.open(
            await _dial(server),
            on_request=lambda frame: _answer_refresh(values, frame),
        )
        await feeder.request(
            "register", keys=owned, values=[values[key] for key in owned]
        )
        feeder_clients.append(feeder)

    updates_sent = 0

    async def run_feeder(index: int) -> None:
        nonlocal updates_sent
        feeder = feeder_clients[index]
        owned_events = [
            (key, time, value)
            for key, time, value in events
            if key_of_feeder[key] == index
        ]
        for time, updates in _batch_by_instant(owned_events):
            for key, value in updates:
                values[key] = value
            await feeder.request("update_batch", updates=updates, time=time)
            updates_sent += len(updates)

    latencies: List[float] = []
    queries = hits = misses = rejected = 0

    async def run_client(index: int) -> None:
        nonlocal queries, hits, misses, rejected
        workload = config.with_changes(seed=config.seed + 101 * (index + 1))
        generator = workload.build_workload(keys)
        client = await ServingClient.open(await _dial(server))
        try:
            for step in range(queries_per_client):
                query = generator.generate((step + 1) * config.query_period)
                begin = wall_time.perf_counter()
                response = await client.request(
                    "query",
                    keys=list(query.keys),
                    aggregate=query.kind.name,
                    constraint=query.constraint,
                )
                elapsed = wall_time.perf_counter() - begin
                latencies.append(elapsed)
                queries += 1
                if response.get("overloaded"):
                    rejected += 1
                else:
                    hits += response["hits"]
                    misses += response["misses"]
                if rate > 0:
                    pace = 1.0 / rate
                    if elapsed < pace:
                        await asyncio.sleep(pace - elapsed)
        finally:
            await client.close()

    probe = await ServingClient.open(await _dial(server))
    try:
        baseline = await probe.request("stats")
    finally:
        await probe.close()
    feeder_tasks = [asyncio.ensure_future(run_feeder(i)) for i in range(feeders)]
    client_tasks = [asyncio.ensure_future(run_client(i)) for i in range(clients)]
    try:
        await asyncio.gather(*client_tasks)
        await asyncio.gather(*feeder_tasks)
        probe = await ServingClient.open(await _dial(server))
        try:
            stats = await probe.request("stats")
        finally:
            await probe.close()
    finally:
        # A failed task must not strand its siblings: cancel whatever is
        # still running and await everything before closing the feeder
        # connections out from under them.
        for task in feeder_tasks + client_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*feeder_tasks, *client_tasks, return_exceptions=True)
        for feeder in feeder_clients:
            await feeder.close()
    return _build_report(
        mode="concurrent",
        baseline=baseline,
        clients=clients,
        config=config,
        latencies=latencies,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        rejected=rejected,
        stats=stats,
        wall_seconds=wall_time.perf_counter() - started,
    )


def _build_report(
    *,
    mode: str,
    clients: int,
    config: SimulationConfig,
    latencies: List[float],
    queries: int,
    updates_sent: int,
    hits: int,
    misses: int,
    rejected: int,
    stats: Dict[str, Any],
    wall_seconds: float,
    baseline: Optional[Dict[str, Any]] = None,
) -> LoadgenReport:
    ordered = sorted(latencies)

    def counted(field_name: str) -> float:
        # The server's counters are all-time totals; subtracting the
        # baseline snapshot makes the report describe this run alone (a
        # persistent server may have served earlier replays).
        before = float(baseline.get(field_name, 0.0)) if baseline else 0.0
        return float(stats.get(field_name, 0.0)) - before

    total_cost = counted("total_cost")
    return LoadgenReport(
        mode=mode,
        clients=clients,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        value_refreshes=int(counted("value_refreshes")),
        query_refreshes=int(counted("query_refreshes")),
        queries_rejected=rejected,
        total_cost=total_cost,
        # Omega-style cost rate over the replayed (simulated) duration; the
        # server has no warm-up notion, so this is the all-time rate.
        omega=total_cost / config.duration,
        wall_seconds=wall_seconds,
        throughput_qps=(queries / wall_seconds) if wall_seconds > 0 else 0.0,
        p50_latency_ms=percentile(ordered, 0.50) * 1000.0,
        p99_latency_ms=percentile(ordered, 0.99) * 1000.0,
        max_latency_ms=(ordered[-1] * 1000.0) if ordered else 0.0,
        server_stats=dict(stats),
    )
