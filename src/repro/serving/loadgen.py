"""The trace-replay load harness for the serving layer.

Two replay modes drive a :class:`~repro.serving.server.CacheServer` with the
same workload artefacts the offline experiments use (a
:class:`~repro.data.trace.Trace`, a
:class:`~repro.simulation.config.SimulationConfig`), so the offline and
online paths share every generator:

* :func:`replay_trace_deterministic` — one feeder plus one query client
  replay the *exact* offline event sequence: updates walk the merged
  timelines (:class:`~repro.simulation.kernel.MergedEventWalk`, the batch
  kernel's ordering), queries come from
  :meth:`SimulationConfig.build_workload` (the simulator's RNG chain), and
  every RPC is awaited before the next event (serialised query order).  The
  server then reproduces the offline simulator's total refresh count and hit
  rate bit for bit — asserted by ``tests/test_serving_equivalence.py`` and
  the CI serving smoke.
* :func:`replay_trace_concurrent` — N client connections issue queries
  concurrently (optionally paced to a target rate) while feeder connections
  replay the update timelines, measuring what the deterministic mode cannot:
  p50/p99 query latency, throughput, and admission-control rejections under
  real interleaving.

Both return a :class:`LoadgenReport`; the ``serving_throughput`` experiment
(:mod:`repro.experiments.serving_throughput`) tabulates concurrent runs
across client counts.

Both modes also accept a :class:`~repro.serving.faults.FaultPlan`: every
dialled connection is wrapped in a
:class:`~repro.serving.faults.FaultyTransport` drawing from the plan's
seeded streams, feeders ride a reconnect-and-resync loop, queriers retry
with seeded exponential backoff (:class:`RetryPolicy`), and — in the
deterministic mode — ``check_invariant`` verifies the paper's containment
guarantee against the replay's own ground truth on every answer: the
returned interval must contain the true aggregate, degraded or not.
"""

from __future__ import annotations

import asyncio
import math
import random
import time as wall_time
from dataclasses import dataclass, field
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.merged import merge_timelines
from repro.data.streams import TraceStream
from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, REGISTRY
from repro.data.trace import Trace
from repro.queries.aggregates import AggregateKind
from repro.serving.api import Client, deprecated_entry_point, dial
from repro.serving.errors import (
    ConnectionLost,
    DeadlineExceeded,
    RequestRejected,
    StaleEpochError,
)
from repro.serving.faults import FaultPlan, FaultyTransport, SessionFaults
from repro.serving.protocol import (
    BoundedAnswer,
    QueryRequest,
    RegisterAck,
    Request,
)
from repro.serving.transport import StreamFrameTransport
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import HORIZON_TOLERANCE
from repro.simulation.kernel import MergedEventWalk


class TcpDialer:
    """Dial adapter for load-generating against a remote ``repro serve``.

    Presents the same ``connect()`` surface as
    :meth:`repro.serving.server.CacheServer.connect` (the loopback path), so
    both replay modes accept either a local server or a ``TcpDialer``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def connect(self) -> StreamFrameTransport:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        return StreamFrameTransport(reader, writer)


class WsDialer:
    """Dial adapter for load-generating against the HTTP/WebSocket edge."""

    def __init__(self, url: str) -> None:
        self.url = url

    async def connect(self) -> Any:
        from repro.serving.http import connect_websocket

        return await connect_websocket(self.url)


class MultiTargetDialer:
    """Round-robin dial adapter over several serving targets.

    The scaled-edge topology runs N stateless gateway processes over one
    shared partition pool; spreading the load generator's connections
    across the gateways exercises it the way a fleet load balancer
    would.  Each ``connect()`` dials the next target in rotation.
    """

    def __init__(self, targets: Sequence[str]) -> None:
        if not targets:
            raise ValueError("MultiTargetDialer needs at least one target")
        self._dialers = [dialer_for_target(target) for target in targets]
        self._next = 0

    async def connect(self) -> Any:
        dialer = self._dialers[self._next % len(self._dialers)]
        self._next += 1
        return await dialer.connect()


def dialer_for_target(target: str) -> Any:
    """A dialer for a ``tcp://host:port`` or ``ws://host:port/path`` URL."""
    if target.startswith("ws://") or target.startswith("wss://"):
        return WsDialer(target)
    if target.startswith("tcp://"):
        target = target[len("tcp://") :]
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"cannot parse loadgen target {target!r} as host:port")
    return TcpDialer(host, int(port))


async def _dial(target: Any) -> Any:
    """Open one connection on a server, dialer, or URL (see ``api.dial``)."""
    return await dial(target)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(int(fraction * len(sorted_values) + 0.5), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


class RetryPolicy:
    """Exponential backoff with seeded jitter (deterministic per run).

    ``delay(attempt)`` doubles from ``base_delay`` up to ``max_delay`` and
    multiplies by a jitter factor in ``[0.5, 1.5)`` drawn from a stream
    seeded by ``seed`` — replays of the same chaos run back off
    identically, so retry timing never makes a seeded run flaky.
    """

    def __init__(
        self,
        attempts: int = 5,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(f"retry:{seed}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered."""
        exponential = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return exponential * (0.5 + self._rng.random())


def _new_resilience_counters() -> Dict[str, int]:
    """The shared client-side counter block a load-generation run fills in."""
    return {
        "retries": 0,
        "reconnects": 0,
        "degraded_answers": 0,
        "deadline_failures": 0,
        "invariant_checks": 0,
        "invariant_violations": 0,
    }


@dataclass
class LoadgenReport:
    """What one load-generation run observed (client side plus server stats)."""

    mode: str
    clients: int
    queries: int
    updates_sent: int
    hits: int
    misses: int
    value_refreshes: int
    query_refreshes: int
    queries_rejected: int
    total_cost: float
    omega: float
    wall_seconds: float
    throughput_qps: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    retries: int = 0
    reconnects: int = 0
    degraded_answers: int = 0
    deadline_failures: int = 0
    invariant_checks: int = 0
    invariant_violations: int = 0
    partition_kills: int = 0
    fault_plan: str = "none"
    faults_injected: Dict[str, int] = field(default_factory=dict)
    server_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of per-key workload lookups served from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    @property
    def refresh_count(self) -> int:
        """Total refreshes of both kinds the run caused."""
        return self.value_refreshes + self.query_refreshes

    def deterministic_summary(self) -> Dict[str, Any]:
        """The wall-clock-free report fields, byte-comparable across runs.

        A seeded chaos replay that recovers correctly must reproduce
        exactly these fields from an uninterrupted run of the same seed —
        the recovery-equivalence tests diff this dict.  Wall time,
        latency percentiles and throughput are excluded (nondeterministic
        by nature), as are the raw server stats (connection-era counters
        like ``connections`` and ``feeder_resyncs`` legitimately differ
        across a crash).
        """
        return {
            "mode": self.mode,
            "clients": self.clients,
            "queries": self.queries,
            "updates_sent": self.updates_sent,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "value_refreshes": self.value_refreshes,
            "query_refreshes": self.query_refreshes,
            "queries_rejected": self.queries_rejected,
            "total_cost": self.total_cost,
            "omega": self.omega,
            "degraded_answers": self.degraded_answers,
            "invariant_checks": self.invariant_checks,
            "invariant_violations": self.invariant_violations,
        }

    def publish(self, registry: Any = None) -> None:
        """Publish this report's headline numbers into a metrics registry.

        Gauges under ``repro_loadgen_*``, labelled by replay ``mode`` — a
        finished run is a point-in-time outcome.  Purely write-only: the
        registry never feeds back into the replay, so the deterministic
        summary stays byte-identical with metrics on or off.  With the
        registry disabled (the default) this is a no-op.
        """
        registry = REGISTRY if registry is None else registry
        for name, help_text, value in (
            ("repro_loadgen_queries", "Queries the run issued.", self.queries),
            ("repro_loadgen_queries_rejected", "Admission-control rejections observed.", self.queries_rejected),
            ("repro_loadgen_updates_sent", "Source updates the feeders delivered.", self.updates_sent),
            ("repro_loadgen_hit_rate", "Client-observed workload hit rate.", self.hit_rate),
            ("repro_loadgen_omega", "Cost per simulated time unit (Omega).", self.omega),
            ("repro_loadgen_throughput_qps", "Queries per wall second.", self.throughput_qps),
            ("repro_loadgen_p50_latency_ms", "Median answered-query latency.", self.p50_latency_ms),
            ("repro_loadgen_p99_latency_ms", "99th-percentile answered-query latency.", self.p99_latency_ms),
            ("repro_loadgen_degraded_answers", "Answers served degraded from the mirror.", self.degraded_answers),
            ("repro_loadgen_invariant_violations", "Containment-check failures.", self.invariant_violations),
        ):
            registry.gauge(name, help_text, mode=self.mode).set(float(value))

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI's output)."""
        lines = [
            f"mode={self.mode} clients={self.clients}",
            f"queries={self.queries} rejected={self.queries_rejected} "
            f"updates={self.updates_sent}",
            f"hit_rate={self.hit_rate:.4f} (hits={self.hits} "
            f"misses={self.misses})",
            f"refreshes: value={self.value_refreshes} "
            f"query={self.query_refreshes}",
            f"Omega={self.omega:.4f} (total_cost={self.total_cost:g})",
            f"latency_ms: p50={self.p50_latency_ms:.3f} "
            f"p99={self.p99_latency_ms:.3f} max={self.max_latency_ms:.3f}",
            f"throughput={self.throughput_qps:.1f} q/s "
            f"wall={self.wall_seconds:.2f}s",
        ]
        if self.fault_plan != "none" or any(
            (self.retries, self.reconnects, self.degraded_answers,
             self.deadline_failures)
        ):
            injected = ",".join(
                f"{name}={count}"
                for name, count in sorted(self.faults_injected.items())
                if count
            )
            lines.append(
                f"faults: plan={self.fault_plan} injected=[{injected or 'none'}]"
            )
            lines.append(
                f"resilience: retries={self.retries} reconnects={self.reconnects} "
                f"degraded={self.degraded_answers} "
                f"deadline_failures={self.deadline_failures}"
            )
        if self.partition_kills:
            lines.append(f"partition_kills={self.partition_kills}")
        if self.invariant_checks:
            lines.append(
                f"invariant: violations={self.invariant_violations} "
                f"of {self.invariant_checks} checked answers"
            )
        return "\n".join(lines)


class ServingClient(Client):
    """Deprecated: the pre-gateway name of :class:`repro.serving.api.Client`.

    A thin shim kept for callers written against PR-5/6: same constructor,
    same ``open()`` classmethod, same behaviour — every call goes straight
    to :class:`Client`.  Constructing one emits a :class:`DeprecationWarning`
    naming the replacement (asserted in ``tests/test_api_client.py``).
    """

    def __init__(
        self,
        transport: Any,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
        default_deadline: Optional[float] = None,
    ) -> None:
        deprecated_entry_point(
            "repro.serving.loadgen.ServingClient", "repro.serving.api.Client"
        )
        super().__init__(transport, on_request, default_deadline)

    @classmethod
    async def open(
        cls,
        transport: Any,
        on_request: Optional[
            Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]
        ] = None,
        default_deadline: Optional[float] = None,
    ) -> "ServingClient":
        """Wrap a connected transport and start its read loop (deprecated)."""
        client = cls(transport, on_request, default_deadline)
        client._reader = asyncio.ensure_future(client._read_loop())
        return client


def _trace_replay_parts(
    trace: Trace, config: SimulationConfig
) -> Tuple[List[Hashable], Dict[Hashable, float], MergedEventWalk]:
    """Build the shared replay artefacts: keys, initial values, event walk."""
    streams = {key: TraceStream(trace, key) for key in trace.keys}
    initials = {key: stream.initial_value for key, stream in streams.items()}
    timelines = {
        key: stream.schedule(config.duration) for key, stream in streams.items()
    }
    merged = merge_timelines(timelines, engine=config.stream_engine())
    walk = MergedEventWalk(merged, config.duration + HORIZON_TOLERANCE)
    return list(trace.keys), initials, walk


def _batch_by_instant(
    events: List[Tuple[Hashable, float, float]],
) -> List[Tuple[float, List[Tuple[Hashable, float]]]]:
    """Group a time-ordered event list into per-instant update batches."""
    batches: List[Tuple[float, List[Tuple[Hashable, float]]]] = []
    for key, time, value in events:
        if not batches or batches[-1][0] != time:
            batches.append((time, []))
        batches[-1][1].append((key, value))
    return batches


async def replay_trace_deterministic(
    server: Any,
    trace: Trace,
    config: SimulationConfig,
    *,
    fault_plan: Optional[FaultPlan] = None,
    check_invariant: bool = False,
    deadline: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    partition_pool: Optional[Any] = None,
) -> LoadgenReport:
    """Replay the offline event sequence through a server, serialised.

    ``server`` is a :class:`~repro.serving.server.CacheServer` (dialled over
    its loopback transport).  Every update batch and every query is awaited
    before the next event, so the server observes exactly the interleaving
    the offline simulator executes; with the same policy and config
    (``warmup = 0`` offline, since the server has no warm-up notion) the
    refresh counts and hit rate match bit for bit.

    Under a ``fault_plan`` the replay stays serialised but stops being
    gentle: transports misbehave on the plan's seeded schedule, the feeder
    is killed every ``kill_every`` sent batches and stays down for
    ``outage_queries`` queries (answered degraded from the mirror, its
    updates lost) before reconnecting and resyncing.  The replay's own
    ``values`` dict keeps advancing while the feeder is down, so with
    ``check_invariant`` every answer is audited against the true aggregate
    — the paper's containment guarantee, under fire.  A kill+reconnect
    with ``outage_queries=0`` loses nothing and resyncs to an unchanged
    mirror, which keeps even that replay bit-identical to the offline run.

    With a ``partition_pool`` (the :class:`~repro.serving.procs.`
    ``ProcessPartitionPool`` behind a supervised gateway ``server``), the
    plan's ``partition_kill_every`` schedule SIGKILLs a seeded-random
    partition between awaited ops.  Durable partitions (``wal_dir``)
    replay their snapshot+WAL on restart and the gateway blocks the
    replay's ops until the resync handshake completes, so even *this*
    replay reproduces the no-crash run's :meth:`LoadgenReport.
    deterministic_summary` byte for byte.
    """
    plan = fault_plan if fault_plan is not None else FaultPlan()
    retry = retry if retry is not None else RetryPolicy(seed=plan.seed)
    dialer = _FaultDialer(server, plan)
    counters = _new_resilience_counters()
    keys, values, walk = _trace_replay_parts(trace, config)
    workload = config.build_workload(keys)
    feeder = _ResilientFeeder(
        lambda: dialer.dial("feeder"),
        keys,
        values,
        feeder_id="feeder-0",
        retry=retry,
        counters=counters,
        deadline=deadline,
    )
    querier = _ResilientQuerier(
        lambda: dialer.dial("client"),
        retry=retry,
        counters=counters,
        deadline=deadline,
    )
    started = wall_time.perf_counter()
    latencies: List[float] = []
    queries = updates_sent = hits = misses = rejected = 0
    batches_sent = kills_done = outage_remaining = 0
    partition_kills_done = 0
    # The victim sequence is its own seeded stream, so adding partition
    # kills to a plan never shifts the transport-fault draws.
    partition_kill_rng = random.Random(f"faults:{plan.seed}:partition-kills")
    last_flush = 0.0
    try:
        await querier.start()
        # Snapshot the server's all-time counters so the report describes
        # *this* run even against a persistent server.
        baseline = await querier.request("stats")
        await feeder.start()
        horizon = config.duration + HORIZON_TOLERANCE
        period = config.query_period
        query_time = period
        pending: List[Tuple[Hashable, float, float]] = []
        collect = pending.append

        async def flush_updates(until: float) -> None:
            nonlocal updates_sent, batches_sent, last_flush
            walk.advance(until, lambda key, time, value: collect((key, time, value)))
            for time, updates in _batch_by_instant(pending):
                # The feeder's own view advances as it sends — and also
                # while it is down: ``values`` is the replay's ground
                # truth, which the server's degraded answers must still
                # contain.
                for key, value in updates:
                    values[key] = value
                if await feeder.send_batch(updates, time):
                    updates_sent += len(updates)
                    batches_sent += 1
            pending.clear()
            last_flush = until

        while query_time <= horizon:
            if feeder.is_down:
                if outage_remaining > 0:
                    outage_remaining -= 1
                else:
                    # Resync at the last flushed instant, not the upcoming
                    # query time: folded-in catch-up values must not stamp
                    # the mirror ahead of update batches still to come.
                    await feeder.reconnect(last_flush)
            await flush_updates(query_time)
            query = workload.generate(query_time)
            begin = wall_time.perf_counter()
            response = await querier.call(
                QueryRequest(
                    keys=tuple(query.keys),
                    aggregate=query.kind,
                    constraint=query.constraint,
                    time=query_time,
                )
            )
            elapsed = wall_time.perf_counter() - begin
            queries += 1
            if response.get("overloaded"):
                # Rejected queries carry no answer and did no work; their
                # (near-zero) turnaround must not drag the latency
                # percentiles down.
                rejected += 1
            else:
                latencies.append(elapsed)
                answer = BoundedAnswer.from_wire(response)
                hits += answer.hits
                misses += answer.misses
                if answer.degraded:
                    counters["degraded_answers"] += 1
                if check_invariant:
                    counters["invariant_checks"] += 1
                    truth = _true_aggregate(query.kind, query.keys, values)
                    if not _interval_contains(answer.low, answer.high, truth):
                        counters["invariant_violations"] += 1
            if (
                plan.kill_every > 0
                and not feeder.is_down
                and batches_sent // plan.kill_every > kills_done
            ):
                # Scheduled crash: lands after a query, so the preceding
                # answer was served live; the next ``outage_queries``
                # answers are degraded.
                kills_done += 1
                await feeder.kill()
                outage_remaining = plan.outage_queries
            if (
                partition_pool is not None
                and plan.partition_kill_every > 0
                and (
                    plan.partition_kills == 0
                    or partition_kills_done < plan.partition_kills
                )
                and batches_sent // plan.partition_kill_every
                > partition_kills_done
            ):
                # SIGKILL a seeded-random partition *between* awaited ops:
                # no frame is in flight, so the WAL replay plus the
                # gateway's blocking recovery keep the run's answers
                # identical to an uninterrupted one (see the docstring).
                partition_kills_done += 1
                victim = partition_kill_rng.randrange(
                    partition_pool.partition_count
                )
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, partition_pool.kill, victim)
            query_time += period
        if feeder.is_down:
            await feeder.reconnect(last_flush)
        await flush_updates(horizon)
        stats = await querier.request("stats")
    finally:
        await feeder.close()
        await querier.close()
    return _build_report(
        mode="deterministic",
        baseline=baseline,
        clients=1,
        config=config,
        latencies=latencies,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        rejected=rejected,
        stats=stats,
        wall_seconds=wall_time.perf_counter() - started,
        counters=counters,
        plan=plan,
        faults_injected=dialer.injected(),
        partition_kills=partition_kills_done,
    )


class _FaultDialer:
    """Dials connections, wrapping each in its plan-assigned fault stream.

    Connection ordinals are per role (``feeder`` / ``client``), so adding a
    querier does not shift the feeders' fault streams — the property that
    keeps a committed chaos seed stable as the harness evolves.  With the
    zero plan every dial returns the bare transport, untouched.
    """

    def __init__(self, target: Any, plan: FaultPlan) -> None:
        self._target = target
        self._plan = plan
        self._ordinals: Dict[str, int] = {}
        self.sessions: List[SessionFaults] = []

    async def dial(self, role: str) -> Any:
        transport = await _dial(self._target)
        if self._plan.is_zero:
            return transport
        index = self._ordinals.get(role, 0)
        self._ordinals[role] = index + 1
        session = self._plan.session(role, index)
        self.sessions.append(session)
        return FaultyTransport(transport, session)

    def injected(self) -> Dict[str, int]:
        """Total injected faults across every connection this run dialled."""
        totals: Dict[str, int] = {}
        for session in self.sessions:
            for name, count in session.counters.items():
                totals[name] = totals.get(name, 0) + count
        return totals


class _ResilientFeeder:
    """A feeder that survives connection loss: reconnect, resync, resume.

    On any connection-level failure the in-flight batch is *skipped*, not
    resent: the resync registration ships every owned key's current value
    — exactly the state the lost batch would have produced — and resending
    old values with old timestamps would trip the server's update
    time-order check.  ``kill``/``reconnect`` expose the same machinery to
    the fault plan's scheduled feeder crashes.
    """

    def __init__(
        self,
        dial: Callable[[], Awaitable[Any]],
        keys: List[Hashable],
        values: Dict[Hashable, float],
        *,
        feeder_id: str,
        retry: RetryPolicy,
        counters: Dict[str, int],
        deadline: Optional[float] = None,
    ) -> None:
        self._dial = dial
        self._keys = keys
        self._values = values
        self._feeder_id = feeder_id
        self._retry = retry
        self._counters = counters
        self._deadline = deadline
        self._client: Optional[Client] = None
        self.epoch = 0

    @property
    def is_down(self) -> bool:
        return self._client is None

    def _refresh_value(self, key: Hashable) -> float:
        # The server's ``refresh`` RPC handler; KeyError (a key this feeder
        # does not own) turns into the protocol's error reply in the client.
        return self._values[key]

    async def start(self) -> None:
        """Dial and register the owned keys (a fresh lifecycle)."""
        await self._connect(resync=False, time=None)

    async def reconnect(self, time: float) -> None:
        """Dial anew and resync the owned keys against the server mirror."""
        await self._connect(resync=True, time=time)
        self._counters["reconnects"] += 1

    async def _connect(self, *, resync: bool, time: Optional[float]) -> None:
        attempt = 0
        while True:
            client = None
            try:
                client = await Client.from_transport(
                    await self._dial(),
                    on_refresh=self._refresh_value,
                    default_deadline=self._deadline,
                )
                reply: RegisterAck = await client.register(
                    self._keys,
                    [self._values[key] for key in self._keys],
                    feeder=self._feeder_id,
                    resync=resync,
                    time=time if resync else None,
                )
            except (ConnectionLost, DeadlineExceeded):
                if client is not None:
                    await client.close()
                attempt += 1
                if attempt > self._retry.attempts:
                    raise
                self._counters["retries"] += 1
                await asyncio.sleep(self._retry.delay(attempt))
                continue
            self._client = client
            self.epoch = reply.epoch or 0
            return

    async def send_batch(
        self, updates: List[Tuple[Hashable, float]], time: float
    ) -> bool:
        """Send one update batch; ``False`` when it was skipped.

        Skips happen while the feeder is (scheduled) down, and when the
        connection dies mid-send — the reconnect's resync then covers the
        lost batch.
        """
        if self._client is None:
            return False
        try:
            await self._client.update_batch(updates, time=time)
            return True
        except (ConnectionLost, DeadlineExceeded, StaleEpochError):
            await self.kill()
            await self.reconnect(time)
            return False

    async def kill(self) -> None:
        """Drop the connection with no goodbye (a simulated feeder crash)."""
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()


class _ResilientQuerier:
    """A query client with per-op deadlines, backoff and reconnects.

    Queries are idempotent from the client's point of view (the answer,
    not the side effects, is what the caller consumes), so a lost
    connection or a missed deadline retries after a seeded backoff — up to
    ``retry.attempts`` times, then the last error surfaces typed.
    """

    def __init__(
        self,
        dial: Callable[[], Awaitable[Any]],
        *,
        retry: RetryPolicy,
        counters: Dict[str, int],
        deadline: Optional[float] = None,
    ) -> None:
        self._dial = dial
        self._retry = retry
        self._counters = counters
        self._deadline = deadline
        self._client: Optional[Client] = None

    async def start(self) -> None:
        self._client = await Client.from_transport(
            await self._dial(), default_deadline=self._deadline
        )

    async def call(self, message: Request) -> Dict[str, Any]:
        """Send one typed request with the querier's retry envelope."""
        return await self.request(message.OP, **message.wire_fields())

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                assert self._client is not None
                return await self._client.request(op, **fields)
            except DeadlineExceeded:
                self._counters["deadline_failures"] += 1
                attempt += 1
                if attempt > self._retry.attempts:
                    raise
                self._counters["retries"] += 1
                await asyncio.sleep(self._retry.delay(attempt))
            except ConnectionLost:
                attempt += 1
                if attempt > self._retry.attempts:
                    raise
                self._counters["retries"] += 1
                await asyncio.sleep(self._retry.delay(attempt))
                await self._reconnect()

    async def _reconnect(self) -> None:
        if self._client is not None:
            await self._client.close()
        await self.start()
        self._counters["reconnects"] += 1

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()


#: Relative slop for the containment check: the server sums interval
#: endpoints in its own order, so the true aggregate can differ from the
#: replay's by float-rounding only.
_INVARIANT_TOLERANCE = 1e-9


def _true_aggregate(
    kind: AggregateKind, keys: Any, values: Dict[Hashable, float]
) -> float:
    """The exact aggregate over the replay's ground-truth values."""
    sample = [values[key] for key in keys]
    if kind is AggregateKind.SUM:
        return sum(sample)
    if kind is AggregateKind.MAX:
        return max(sample)
    if kind is AggregateKind.MIN:
        return min(sample)
    if kind is AggregateKind.AVG:
        return sum(sample) / len(sample)
    raise ValueError(f"no ground-truth evaluation for {kind!r}")


def _interval_contains(low: float, high: float, value: float) -> bool:
    pad = _INVARIANT_TOLERANCE * max(1.0, abs(value))
    return low - pad <= value <= high + pad


async def replay_trace_concurrent(
    server: Any,
    trace: Trace,
    config: SimulationConfig,
    *,
    clients: int = 4,
    queries_per_client: int = 100,
    rate: float = 0.0,
    feeders: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    deadline: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> LoadgenReport:
    """Drive a server with concurrent clients while feeders replay updates.

    ``clients`` query connections each issue ``queries_per_client`` bounded
    aggregates (drawn from per-client seeded workloads), optionally paced to
    ``rate`` queries/second per client (``0`` = as fast as responses
    return).  ``feeders`` connections split the key space and replay the
    update timelines concurrently.  Latency percentiles are measured on the
    client side; admission-control rejections are counted, not raised.

    A ``fault_plan`` injects transport faults on every feeder and client
    connection; feeders reconnect-and-resync, clients retry with backoff.
    Containment is not audited here — concurrent interleaving has no
    single ground-truth instant per query; use the deterministic mode's
    ``check_invariant`` for that.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if feeders < 1:
        raise ValueError("feeders must be at least 1")
    plan = fault_plan if fault_plan is not None else FaultPlan()
    retry = retry if retry is not None else RetryPolicy(seed=plan.seed)
    dialer = _FaultDialer(server, plan)
    counters = _new_resilience_counters()
    keys, values, walk = _trace_replay_parts(trace, config)
    started = wall_time.perf_counter()
    events: List[Tuple[Hashable, float, float]] = []
    walk.advance(
        config.duration + HORIZON_TOLERANCE,
        lambda key, time, value: events.append((key, time, value)),
    )
    key_of_feeder = {key: index % feeders for index, key in enumerate(keys)}
    feeder_handles: List[_ResilientFeeder] = []
    for index in range(feeders):
        owned = [key for key in keys if key_of_feeder[key] == index]
        feeder = _ResilientFeeder(
            lambda: dialer.dial("feeder"),
            owned,
            values,
            feeder_id=f"feeder-{index}",
            retry=retry,
            counters=counters,
            deadline=deadline,
        )
        await feeder.start()
        feeder_handles.append(feeder)

    updates_sent = 0

    async def run_feeder(index: int) -> None:
        nonlocal updates_sent
        feeder = feeder_handles[index]
        owned_events = [
            (key, time, value)
            for key, time, value in events
            if key_of_feeder[key] == index
        ]
        for time, updates in _batch_by_instant(owned_events):
            for key, value in updates:
                values[key] = value
            if await feeder.send_batch(updates, time):
                updates_sent += len(updates)

    latencies: List[float] = []
    queries = hits = misses = rejected = 0

    async def run_client(index: int) -> None:
        nonlocal queries, hits, misses, rejected
        workload = config.with_changes(seed=config.seed + 101 * (index + 1))
        generator = workload.build_workload(keys)
        client = _ResilientQuerier(
            lambda: dialer.dial("client"),
            retry=retry,
            counters=counters,
            deadline=deadline,
        )
        await client.start()
        try:
            for step in range(queries_per_client):
                query = generator.generate((step + 1) * config.query_period)
                begin = wall_time.perf_counter()
                response = await client.call(
                    QueryRequest(
                        keys=tuple(query.keys),
                        aggregate=query.kind,
                        constraint=query.constraint,
                    )
                )
                elapsed = wall_time.perf_counter() - begin
                queries += 1
                if response.get("overloaded"):
                    # Rejections are counted, not timed (see the
                    # deterministic loop): percentiles describe answers.
                    rejected += 1
                else:
                    latencies.append(elapsed)
                    answer = BoundedAnswer.from_wire(response)
                    hits += answer.hits
                    misses += answer.misses
                    if answer.degraded:
                        counters["degraded_answers"] += 1
                if rate > 0:
                    pace = 1.0 / rate
                    if elapsed < pace:
                        await asyncio.sleep(pace - elapsed)
        finally:
            await client.close()

    probe = await Client.from_transport(await _dial(server))
    try:
        baseline = await probe.stats()
    finally:
        await probe.close()
    feeder_tasks = [asyncio.ensure_future(run_feeder(i)) for i in range(feeders)]
    client_tasks = [asyncio.ensure_future(run_client(i)) for i in range(clients)]
    try:
        await asyncio.gather(*client_tasks)
        await asyncio.gather(*feeder_tasks)
        probe = await Client.from_transport(await _dial(server))
        try:
            stats = await probe.stats()
        finally:
            await probe.close()
    finally:
        # A failed task must not strand its siblings: cancel whatever is
        # still running and await everything before closing the feeder
        # connections out from under them.
        for task in feeder_tasks + client_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*feeder_tasks, *client_tasks, return_exceptions=True)
        for feeder in feeder_handles:
            await feeder.close()
    return _build_report(
        mode="concurrent",
        baseline=baseline,
        clients=clients,
        config=config,
        latencies=latencies,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        rejected=rejected,
        stats=stats,
        wall_seconds=wall_time.perf_counter() - started,
        counters=counters,
        plan=plan,
        faults_injected=dialer.injected(),
    )


#: Open-loop arrival shapes: how the offered rate moves over the run.
ARRIVAL_SHAPES = ("steady", "ramp", "flash")


@dataclass(frozen=True)
class OpenLoopProfile:
    """An open-loop workload: arrivals fire on schedule, never waiting.

    Closed-loop clients (``replay_trace_concurrent``) cannot overload a
    server — each connection waits for its answer, so the offered rate
    self-throttles exactly when the server slows down.  Open loop is the
    honest stress model: ``base_rate`` arrivals per wall second are drawn
    from a seeded Poisson process (thinned where the shape varies the
    rate), issued whether or not earlier queries have answered.

    * ``steady`` — constant ``base_rate``;
    * ``ramp`` — linear climb from ``base_rate`` to ``peak_rate`` across
      the run (finds the knee of the latency curve);
    * ``flash`` — ``base_rate`` with a flash crowd at ``peak_rate``
      through the middle fifth of the run (finds recovery behaviour).

    Key popularity is Zipf(``zipf_s``) over the trace's key order — the
    skew every caching paper assumes — so partitions see realistically
    unequal load.
    """

    duration_s: float = 2.0
    base_rate: float = 200.0
    peak_rate: float = 0.0
    shape: str = "steady"
    zipf_s: float = 1.1
    keys_per_query: int = 4
    aggregate: AggregateKind = AggregateKind.SUM
    constraint: float = math.inf
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"shape must be one of {ARRIVAL_SHAPES}, not {self.shape!r}"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.keys_per_query < 1:
            raise ValueError("keys_per_query must be at least 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")

    def rate_at(self, t: float) -> float:
        """Offered arrival rate (queries/second) at wall offset ``t``."""
        peak = max(self.peak_rate, self.base_rate)
        if self.shape == "ramp":
            return self.base_rate + (peak - self.base_rate) * (
                t / self.duration_s
            )
        if self.shape == "flash":
            inside = 0.4 * self.duration_s <= t < 0.6 * self.duration_s
            return peak if inside else self.base_rate
        return self.base_rate

    def arrival_times(self) -> List[float]:
        """The seeded arrival schedule (wall offsets, ascending).

        A Poisson process at the shape's peak rate, thinned down to the
        instantaneous rate — the standard exact simulation of an
        inhomogeneous Poisson process, deterministic per seed.
        """
        rng = random.Random(f"arrivals:{self.seed}")
        peak = max(self.peak_rate, self.base_rate)
        times: List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= self.duration_s:
                return times
            if rng.random() < self.rate_at(t) / peak:
                times.append(t)

    def pick_keys(self, keys: List[Hashable], rng: random.Random) -> List[Hashable]:
        """Draw ``keys_per_query`` distinct keys, Zipf-weighted by rank."""
        count = min(self.keys_per_query, len(keys))
        weights = [1.0 / (rank + 1) ** self.zipf_s for rank in range(len(keys))]
        chosen: List[Hashable] = []
        taken = set()
        while len(chosen) < count:
            (key,) = rng.choices(keys, weights=weights, k=1)
            if key not in taken:
                taken.add(key)
                chosen.append(key)
        return chosen


async def run_open_loop(
    server: Any,
    trace: Trace,
    config: SimulationConfig,
    *,
    profile: OpenLoopProfile,
    connections: int = 4,
    replay_updates: bool = True,
    deadline: Optional[float] = 2.0,
    fault_plan: Optional[FaultPlan] = None,
) -> LoadgenReport:
    """Fire the profile's arrival schedule at a server, open loop.

    Queries are issued at their scheduled instants as concurrent tasks
    round-robined over ``connections`` client connections — a slow answer
    never delays the next arrival, so offered load is what the profile
    says, not what the server permits.  Rejections (admission control) and
    deadline misses are counted; latency percentiles cover answered
    queries only.  One feeder registers the trace's keys and (with
    ``replay_updates``) replays the update timelines alongside the
    arrivals, so refreshes compete with queries for the server like they
    would in production.
    """
    if connections < 1:
        raise ValueError("connections must be at least 1")
    plan = fault_plan if fault_plan is not None else FaultPlan()
    retry = RetryPolicy(seed=plan.seed)
    dialer = _FaultDialer(server, plan)
    counters = _new_resilience_counters()
    keys, values, walk = _trace_replay_parts(trace, config)
    feeder = _ResilientFeeder(
        lambda: dialer.dial("feeder"),
        keys,
        values,
        feeder_id="feeder-0",
        retry=retry,
        counters=counters,
        deadline=deadline,
    )
    await feeder.start()
    pool: List[Client] = []
    for _ in range(connections):
        pool.append(
            await Client.from_transport(
                await dialer.dial("client"), default_deadline=deadline
            )
        )
    rng = random.Random(f"open-loop-keys:{profile.seed}")
    schedule = [
        (offset, profile.pick_keys(keys, rng))
        for offset in profile.arrival_times()
    ]
    latencies: List[float] = []
    queries = updates_sent = hits = misses = rejected = 0

    async def replay_feed() -> None:
        nonlocal updates_sent
        events: List[Tuple[Hashable, float, float]] = []
        walk.advance(
            config.duration + HORIZON_TOLERANCE,
            lambda key, time, value: events.append((key, time, value)),
        )
        for time, updates in _batch_by_instant(events):
            for key, value in updates:
                values[key] = value
            if await feeder.send_batch(updates, time):
                updates_sent += len(updates)

    async def issue(client: Client, query_keys: List[Hashable]) -> None:
        nonlocal queries, hits, misses, rejected
        queries += 1
        begin = wall_time.perf_counter()
        try:
            response = await client.call(
                QueryRequest(
                    keys=tuple(query_keys),
                    aggregate=profile.aggregate,
                    constraint=profile.constraint,
                )
            )
        except DeadlineExceeded:
            counters["deadline_failures"] += 1
            return
        except (ConnectionLost, RequestRejected):
            rejected += 1
            return
        if response.get("overloaded"):
            rejected += 1
            return
        latencies.append(wall_time.perf_counter() - begin)
        answer = BoundedAnswer.from_wire(response)
        hits += answer.hits
        misses += answer.misses
        if answer.degraded:
            counters["degraded_answers"] += 1

    baseline = await pool[0].stats()
    started = wall_time.perf_counter()
    feed_task = (
        asyncio.ensure_future(replay_feed()) if replay_updates else None
    )
    tasks: List[asyncio.Task] = []
    try:
        for index, (offset, query_keys) in enumerate(schedule):
            now = wall_time.perf_counter() - started
            if offset > now:
                await asyncio.sleep(offset - now)
            tasks.append(
                asyncio.ensure_future(
                    issue(pool[index % len(pool)], query_keys)
                )
            )
        await asyncio.gather(*tasks)
        if feed_task is not None:
            await feed_task
        wall_seconds = wall_time.perf_counter() - started
        stats = await pool[0].stats()
    finally:
        for task in tasks:
            if not task.done():
                task.cancel()
        if feed_task is not None and not feed_task.done():
            feed_task.cancel()
        await asyncio.gather(
            *tasks,
            *([feed_task] if feed_task is not None else []),
            return_exceptions=True,
        )
        for client in pool:
            await client.close()
        await feeder.close()
    return _build_report(
        mode=f"open-loop/{profile.shape}",
        baseline=baseline,
        clients=connections,
        config=config,
        latencies=latencies,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        rejected=rejected,
        stats=stats,
        wall_seconds=wall_seconds,
        counters=counters,
        plan=plan,
        faults_injected=dialer.injected(),
    )


def _build_report(
    *,
    mode: str,
    clients: int,
    config: SimulationConfig,
    latencies: List[float],
    queries: int,
    updates_sent: int,
    hits: int,
    misses: int,
    rejected: int,
    stats: Dict[str, Any],
    wall_seconds: float,
    baseline: Optional[Dict[str, Any]] = None,
    counters: Optional[Dict[str, int]] = None,
    plan: Optional[FaultPlan] = None,
    faults_injected: Optional[Dict[str, int]] = None,
    partition_kills: int = 0,
) -> LoadgenReport:
    ordered = sorted(latencies)
    counters = counters if counters is not None else _new_resilience_counters()
    if REGISTRY.enabled:
        # Fill the client-side latency distribution once per run, after the
        # replay loop finished — never on the query hot path, and never in
        # a way the replay could read back.
        histogram = REGISTRY.histogram(
            "repro_loadgen_latency_seconds",
            "Client-observed latency of answered queries.",
            buckets=LATENCY_BUCKETS_SECONDS,
            mode=mode,
        )
        for value in latencies:
            histogram.observe(value)

    def counted(field_name: str) -> float:
        # The server's counters are all-time totals; subtracting the
        # baseline snapshot makes the report describe this run alone (a
        # persistent server may have served earlier replays).
        before = float(baseline.get(field_name, 0.0)) if baseline else 0.0
        return float(stats.get(field_name, 0.0)) - before

    total_cost = counted("total_cost")
    return LoadgenReport(
        mode=mode,
        clients=clients,
        queries=queries,
        updates_sent=updates_sent,
        hits=hits,
        misses=misses,
        value_refreshes=int(counted("value_refreshes")),
        query_refreshes=int(counted("query_refreshes")),
        queries_rejected=rejected,
        total_cost=total_cost,
        # Omega-style cost rate over the replayed (simulated) duration; the
        # server has no warm-up notion, so this is the all-time rate.
        omega=total_cost / config.duration,
        wall_seconds=wall_seconds,
        throughput_qps=(queries / wall_seconds) if wall_seconds > 0 else 0.0,
        p50_latency_ms=percentile(ordered, 0.50) * 1000.0,
        p99_latency_ms=percentile(ordered, 0.99) * 1000.0,
        max_latency_ms=(ordered[-1] * 1000.0) if ordered else 0.0,
        retries=counters["retries"],
        reconnects=counters["reconnects"],
        degraded_answers=counters["degraded_answers"],
        deadline_failures=counters["deadline_failures"],
        invariant_checks=counters["invariant_checks"],
        invariant_violations=counters["invariant_violations"],
        partition_kills=partition_kills,
        fault_plan=plan.describe() if plan is not None else "none",
        faults_injected=dict(faults_injected or {}),
        server_stats=dict(stats),
    )
