"""Partition processes: CacheServers spawned and supervised as workers.

:class:`ProcessPartitionPool` runs one :class:`~repro.serving.server.
CacheServer` per partition in its own OS process, using the same
:class:`~repro.experiments.runner.WorkerHandle` process management the
parallel experiment runner uses (spawn, duplex pipe, join → terminate →
kill escalation).  Each worker binds an ephemeral TCP port and reports it
over the pipe; the pool exposes ``tcp://`` targets the gateway dials.

The pool is deliberately dumb: it owns *processes*, not protocol state.
Restart replaces a dead worker with a fresh empty server on a new port —
re-populating it (the key/value mirror replay, feeder re-registration) is
the gateway's job (:meth:`GatewayServer.resync_partition`), mirroring how
``run_concurrent_shards`` leaves resync to its caller.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.experiments.runner import WorkerHandle
from repro.serving.errors import SupervisionExhausted

DEFAULT_START_TIMEOUT = 30.0

#: Per-worker restart budget before the pool gives up on a partition.
DEFAULT_MAX_RESTARTS = 16


def _configure_observability(
    spec: Dict[str, Any], role: str, partition: Optional[int] = None
) -> None:
    """Arm the child process's observability from its (picklable) spec.

    Spec keys — all optional, all off by default so a bare spec behaves
    exactly as before:

    * ``metrics`` — enable the process metrics registry, stamped with
      ``role`` (and ``partition``) constant labels so the gateway's merged
      snapshot keeps each process's series distinct.
    * ``trace`` / ``flightrec_dir`` — enable the deterministic tracer; with
      a directory, crashes dump the span ring as ``*.flightrec.json``.
    * ``log_level`` / ``log_file`` — JSON-lines logging carrying the run
      seed and this process's identity.  Partitions write per-partition
      files (``run.log`` → ``run.partition2.log``) so concurrent writers
      never interleave.
    """
    if spec.get("metrics"):
        from repro.obs.metrics import REGISTRY

        REGISTRY.enable()
        if partition is None:
            REGISTRY.set_constant_labels(role=role)
        else:
            REGISTRY.set_constant_labels(role=role, partition=str(partition))
    if spec.get("trace") or spec.get("flightrec_dir"):
        from repro.obs.trace import configure_tracer

        configure_tracer(
            role=role if partition is None else f"{role}{partition}",
            enabled=True,
            flightrec_dir=spec.get("flightrec_dir"),
        )
    if spec.get("log_level") or spec.get("log_file"):
        from pathlib import Path

        from repro.obs.logging import configure_logging

        log_file = spec.get("log_file")
        if log_file and partition is not None:
            path = Path(log_file)
            log_file = str(
                path.with_name(f"{path.stem}.{role}{partition}{path.suffix}")
            )
        configure_logging(
            spec.get("log_level") or "warning",
            log_file,
            seed=spec.get("seed"),
            role=role,
            partition=partition,
        )


def partition_worker(connection: Any, spec: Dict[str, Any]) -> None:
    """Child-process entry: serve one partition until the pipe says stop.

    ``spec`` carries only picklable primitives; the policy is rebuilt
    in-process from the shared :func:`~repro.experiments.workloads.
    serving_policy` construction, so a partition behind a gateway runs
    exactly the policy a single ``repro serve`` would.
    """
    import asyncio

    asyncio.run(_serve_partition(connection, spec))


def gateway_worker(connection: Any, spec: Dict[str, Any]) -> None:
    """Child-process entry: a gateway fronting its own partition pool.

    This is the whole ``repro serve --role gateway`` deployment in one
    child process — the gateway spawns ``spec["partitions"]`` partition
    grandchildren, supervises them, and reports its public TCP port over
    the pipe.  The serving-throughput sweep uses it so the deployment
    competes on its own cores instead of sharing the load generator's
    interpreter.
    """
    import asyncio
    import multiprocessing

    # WorkerHandle spawns daemonic children, and daemonic processes may
    # not have children of their own — clear the flag so this deployment
    # can spawn its partition pool.
    multiprocessing.current_process().daemon = False
    asyncio.run(_serve_gateway(connection, spec))


async def _serve_gateway(connection: Any, spec: Dict[str, Any]) -> None:
    import asyncio

    from repro.serving.gateway import GatewayServer

    _configure_observability(spec, "gateway")
    # With explicit ``targets`` the gateway fronts partitions somebody
    # else owns — the scaled-edge topology, where several stateless
    # gateway processes share one partition pool.  Without them it
    # spawns (and supervises) a private pool: the self-contained
    # ``repro serve --role gateway`` deployment.
    targets = spec.get("targets")
    pool = None if targets else ProcessPartitionPool(spec.get("partitions", 1), spec)
    loop = asyncio.get_running_loop()
    try:
        if pool is not None:
            targets = await loop.run_in_executor(None, pool.start)
        gateway = GatewayServer(
            targets,
            pool=pool,
            max_inflight_queries=spec.get("max_inflight", 64),
        )
        await gateway.start()
        tcp = await gateway.start_tcp(spec.get("host", "127.0.0.1"), 0)
        if pool is not None:
            gateway.start_supervisor()
        connection.send({"port": tcp.sockets[0].getsockname()[1]})
        try:
            await loop.run_in_executor(None, connection.recv)
        except (EOFError, OSError):
            pass
        await gateway.close()
    finally:
        if pool is not None:
            await loop.run_in_executor(None, pool.stop)


def _spec_durability(spec: Dict[str, Any]) -> Optional[Any]:
    """Build the partition's durability layer from its spec, when asked.

    ``wal_dir`` switches durability on; ``checkpoint_every`` and
    ``wal_fsync`` tune it.  The WAL files are keyed by ``partition_index``
    so a pool's partitions share one directory.
    """
    wal_dir = spec.get("wal_dir")
    if not wal_dir:
        return None
    from repro.serving.durability import (
        DEFAULT_CHECKPOINT_EVERY,
        PartitionDurability,
    )

    return PartitionDurability(
        wal_dir,
        spec.get("partition_index", 0),
        checkpoint_every=spec.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY),
        fsync=spec.get("wal_fsync", "checkpoint"),
    )


async def _serve_partition(connection: Any, spec: Dict[str, Any]) -> None:
    from repro.experiments.workloads import serving_policy
    from repro.obs.trace import crash_dump_scope
    from repro.serving.server import CacheServer

    _configure_observability(
        spec, "partition", partition=spec.get("partition_index", 0)
    )
    policy = serving_policy(
        cost_factor=spec.get("cost_factor", 1.0), seed=spec.get("seed", 0)
    )
    # The whole serve lifetime sits inside the crash-dump scope: an
    # exception escaping the partition leaves its span ring behind as a
    # ``*.flightrec.json`` (no-op unless the spec set ``flightrec_dir``).
    with crash_dump_scope("crash"):
        # Recovery happens inside the constructor: a restarted partition
        # replays its snapshot+WAL through the live apply paths *before*
        # the port report below, so the gateway never dials a
        # half-recovered server.
        server = CacheServer(
            policy,
            shards=spec.get("shards", 1),
            capacity=spec.get("capacity"),
            max_inflight_queries=spec.get("max_inflight", 64),
            durability=_spec_durability(spec),
        )
        tcp = await server.start_tcp(spec.get("host", "127.0.0.1"), 0)
        port = tcp.sockets[0].getsockname()[1]
        from repro.obs.logging import get_logger

        get_logger("serving.procs").info(
            "partition serving",
            extra={"fields": {"port": port, "wal": bool(spec.get("wal_dir"))}},
        )
        connection.send({"port": port})
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            # Any message — or EOF/reset when the parent dies — is the
            # stop signal.
            await loop.run_in_executor(None, connection.recv)
        except (EOFError, OSError):
            pass
        await server.close()


class ProcessPartitionPool:
    """N partition CacheServer processes behind ``tcp://`` targets.

    ``start()`` spawns every worker and blocks until each has reported its
    listening port; ``restart(index)`` replaces one worker (fresh process,
    fresh port) and returns the new target.  Use as a context manager so
    no partition outlives its pool.
    """

    def __init__(
        self,
        partitions: int,
        spec: Optional[Dict[str, Any]] = None,
        *,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be at least 1")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self._max_restarts = max_restarts
        self._spec = dict(spec or {})
        self._workers: List[WorkerHandle] = [
            WorkerHandle(index, partition_worker, (self._make_spec(index),))
            for index in range(partitions)
        ]
        self._ports: List[Optional[int]] = [None] * partitions
        self._start_timeout = start_timeout

    def _make_spec(self, index: int) -> Dict[str, Any]:
        spec = dict(self._spec)
        # Partition servers must make identical policy decisions for a key
        # wherever it lands, so every partition shares the pool's seed.
        spec.setdefault("seed", 0)
        spec["partition_index"] = index
        return spec

    @property
    def partition_count(self) -> int:
        return len(self._workers)

    def __enter__(self) -> "ProcessPartitionPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> List[str]:
        """Spawn every worker; return their ``tcp://`` targets."""
        for worker in self._workers:
            worker.start()
        for index, worker in enumerate(self._workers):
            self._ports[index] = self._await_port(worker)
        return self.targets()

    def _await_port(self, worker: WorkerHandle) -> int:
        if worker.connection is not None and not worker.connection.poll(
            self._start_timeout
        ):
            raise TimeoutError(
                f"partition {worker.index} did not report its port within "
                f"{self._start_timeout:g}s"
            )
        return int(worker.recv()["port"])

    def target(self, index: int) -> str:
        port = self._ports[index]
        if port is None:
            raise RuntimeError(f"partition {index} is not started")
        return f"tcp://{self._spec.get('host', '127.0.0.1')}:{port}"

    def targets(self) -> List[str]:
        return [self.target(index) for index in range(len(self._workers))]

    def is_alive(self, index: int) -> bool:
        return self._workers[index].is_alive()

    def restart(self, index: int, grace: float = 5.0) -> str:
        """Replace worker ``index`` with a fresh process; return its target.

        Safe to call from an executor thread (the gateway's supervisor
        does): it only touches this worker's handle and port slot.  Raises
        :class:`~repro.serving.errors.SupervisionExhausted` once the
        worker has burned through its restart budget — the caller (the
        gateway) then downgrades the partition to permanent-degraded
        instead of restarting it forever.
        """
        worker = self._workers[index]
        if worker.restarts >= self._max_restarts:
            raise SupervisionExhausted(
                f"partition {index} died {worker.restarts + 1} times; "
                f"restart budget ({self._max_restarts}) exhausted, giving up",
                index=index,
                crashes=self.crash_history(),
            )
        worker.restart(grace=grace)
        self._ports[index] = self._await_port(worker)
        return self.target(index)

    @property
    def restarts(self) -> int:
        return sum(worker.restarts for worker in self._workers)

    def crash_history(self) -> Dict[int, int]:
        """Restart count per worker index (the supervision audit trail)."""
        return {worker.index: worker.restarts for worker in self._workers}

    def worker_restarts(self, index: int) -> int:
        return self._workers[index].restarts

    def kill(self, index: int) -> None:
        """Hard-kill one worker (tests simulate partition crashes with this)."""
        worker = self._workers[index]
        if worker.process is not None:
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def stop(self, grace: float = 5.0) -> None:
        """Stop every worker: close pipes (EOF = stop), then escalate."""
        for worker in self._workers:
            worker.close_connection()
        for worker in self._workers:
            worker.stop(grace=grace)


class ServerProcess:
    """A whole serving deployment in one child process, behind a target.

    ``role="single"`` runs one :class:`CacheServer`; ``role="gateway"``
    runs a :class:`GatewayServer` that spawns its own partition pool
    (``spec["partitions"]`` grandchildren).  Either way ``start()`` blocks
    until the deployment reports its public port and returns a ``tcp://``
    target, so benchmarks can dial single-server and partitioned
    deployments through the identical client path.
    """

    def __init__(
        self,
        role: str = "single",
        spec: Optional[Dict[str, Any]] = None,
        *,
        start_timeout: float = DEFAULT_START_TIMEOUT,
    ) -> None:
        if role not in ("single", "gateway"):
            raise ValueError(f"role must be 'single' or 'gateway', not {role!r}")
        entry = partition_worker if role == "single" else gateway_worker
        self._spec = dict(spec or {})
        self._spec.setdefault("seed", 0)
        self._worker = WorkerHandle(0, entry, (self._spec,))
        self._start_timeout = start_timeout
        self._port: Optional[int] = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> str:
        self._worker.start()
        if self._worker.connection is not None and not self._worker.connection.poll(
            self._start_timeout
        ):
            raise TimeoutError(
                f"serving deployment did not report its port within "
                f"{self._start_timeout:g}s"
            )
        self._port = int(self._worker.recv()["port"])
        return self.target()

    def target(self) -> str:
        if self._port is None:
            raise RuntimeError("deployment is not started")
        return f"tcp://{self._spec.get('host', '127.0.0.1')}:{self._port}"

    def is_alive(self) -> bool:
        return self._worker.is_alive()

    def stop(self, grace: float = 10.0) -> None:
        self._worker.close_connection()
        self._worker.stop(grace=grace)
