"""The serving wire format: length-prefixed JSON frames.

Every message on a serving connection is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON encoding a single
object.  JSON keeps the protocol debuggable (``nc`` plus a hex dump reads
it) and — because Python's ``json`` round-trips floats through ``repr`` —
*exact* for the float values the precision machinery depends on, which is
what lets the deterministic load generator reproduce the offline simulator's
numbers bit for bit.  Non-finite floats (unbounded intervals, infinite
constraints) use the ``json`` module's default ``Infinity``/``-Infinity``
extension.

Frames are either **requests** (they carry an ``op`` key) or **responses**
(no ``op``; matched to the request by ``id``).  Both directions use the same
rule: the server answers client requests, and also *originates* requests on
feeder connections (``refresh``), which the feeder answers.  Request ids are
scoped per direction per connection, so a client's and the server's ids
never collide.

Operations (see ``docs/SERVING.md`` for the full schemas):

``register``
    Feeder announces the keys it owns and their initial exact values.
``update``
    One source value changed; ``update_batch`` carries many at one instant.
``query``
    Bounded aggregate over ``keys`` with a precision ``constraint``.
``stats``
    Server statistics snapshot.
``refresh``
    Server-to-feeder: fetch the current exact value of one owned key.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict

#: Frame header: one network-order unsigned 32-bit payload length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON payload.  Generously above anything
#: the protocol produces (the largest frames are update batches of one trace
#: instant); a violation means a corrupt or hostile peer, not a big request.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame or an operation violating the protocol."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame's JSON payload into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("a frame must encode a JSON object")
    return message


def decode_length(header: bytes) -> int:
    """Parse and validate a frame header, returning the payload length."""
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES} limit"
        )
    return length


def error_response(request_id: Any, message: str) -> Dict[str, Any]:
    """Build the standard error response for a failed request."""
    return {"id": request_id, "ok": False, "error": message}


def is_request(message: Dict[str, Any]) -> bool:
    """Whether a decoded frame is a request (carries ``op``) or a response."""
    return "op" in message
