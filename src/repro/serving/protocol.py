"""The serving wire format: length-prefixed JSON frames.

Every message on a serving connection is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON encoding a single
object.  JSON keeps the protocol debuggable (``nc`` plus a hex dump reads
it) and — because Python's ``json`` round-trips floats through ``repr`` —
*exact* for the float values the precision machinery depends on, which is
what lets the deterministic load generator reproduce the offline simulator's
numbers bit for bit.  Non-finite floats (unbounded intervals, infinite
constraints) use the ``json`` module's default ``Infinity``/``-Infinity``
extension.

Frames are either **requests** (they carry an ``op`` key) or **responses**
(no ``op``; matched to the request by ``id``).  Both directions use the same
rule: the server answers client requests, and also *originates* requests on
feeder connections (``refresh``), which the feeder answers.  Request ids are
scoped per direction per connection, so a client's and the server's ids
never collide.

Operations (see ``docs/SERVING.md`` for the full schemas):

``register``
    Feeder announces the keys it owns and their initial exact values.
``update``
    One source value changed; ``update_batch`` carries many at one instant.
``query``
    Bounded aggregate over ``keys`` with a precision ``constraint``.
``stats``
    Server statistics snapshot.
``metrics``
    Metrics-registry snapshot (``repro.obs``); the gateway merges the
    per-partition snapshots it fetches with this op into its own.
``refresh``
    Server-to-feeder: fetch the current exact value of one owned key.
``snapshot`` / ``refresh_key``
    Gateway-to-partition internals: read a partition's cached intervals
    for a query (counting hits exactly as a local query would) and
    perform one query-initiated refresh on the owning partition, so the
    *gateway* can run the global refresh selection over partitioned keys.

Every operation has a **typed message class** (frozen dataclasses below)
with ``to_wire()`` / ``from_wire()`` codecs.  The dataclasses are the API;
the dicts are the wire.  The codecs reproduce the historical dict layouts
*byte for byte* — field order, conditional omission, and all — which is
pinned by the golden-frame test (``tests/test_protocol_typed.py``) so the
typed redesign cannot silently change what goes on the wire.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Hashable, Optional, Tuple, Type

from repro.queries.aggregates import AggregateKind

#: Frame header: one network-order unsigned 32-bit payload length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON payload.  Generously above anything
#: the protocol produces (the largest frames are update batches of one trace
#: instant); a violation means a corrupt or hostile peer, not a big request.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame or an operation violating the protocol."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame's JSON payload into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("a frame must encode a JSON object")
    return message


def decode_length(header: bytes) -> int:
    """Parse and validate a frame header, returning the payload length."""
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES} limit"
        )
    return length


def error_response(request_id: Any, message: str) -> Dict[str, Any]:
    """Build the standard error response for a failed request."""
    return {"id": request_id, "ok": False, "error": message}


def is_request(message: Dict[str, Any]) -> bool:
    """Whether a decoded frame is a request (carries ``op``) or a response."""
    return "op" in message


# ---------------------------------------------------------------------------
# Typed messages
# ---------------------------------------------------------------------------
#
# Requests serialise as ``{"op": OP, "id": <id>, **wire_fields()}`` and
# responses as ``wire_fields()`` alone — the dispatcher appends ``id`` and
# ``ok`` after the payload, which is where they always sat.  ``from_wire``
# tolerates the envelope keys (``op``/``id``/``ok``) so a decoded frame can
# be parsed directly.


@dataclass(frozen=True)
class Request:
    """Base of all typed requests (messages that carry an ``op``)."""

    OP: ClassVar[str] = ""

    def wire_fields(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_wire(self, request_id: Optional[int] = None) -> Dict[str, Any]:
        """The wire dict, byte-identical to the historical hand-built one."""
        message: Dict[str, Any] = {"op": self.OP}
        if request_id is not None:
            message["id"] = request_id
        message.update(self.wire_fields())
        return message


@dataclass(frozen=True)
class Response:
    """Base of all typed responses (matched to a request by ``id``)."""

    def wire_fields(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_wire(self) -> Dict[str, Any]:
        """The response payload; the dispatcher appends ``id`` and ``ok``."""
        return self.wire_fields()


@dataclass(frozen=True)
class RegisterFeeder(Request):
    """A feeder announces (or, with ``resync``, re-adopts) its keys."""

    OP: ClassVar[str] = "register"

    keys: Tuple[Hashable, ...]
    values: Tuple[float, ...]
    feeder: Optional[str] = None
    resync: bool = False
    time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        object.__setattr__(self, "values", tuple(self.values))
        if len(self.keys) != len(self.values):
            raise ProtocolError("register needs one value per key")
        if self.resync and self.feeder is None:
            raise ProtocolError("a resync registration needs a feeder identity")

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "keys": list(self.keys),
            "values": list(self.values),
        }
        if self.feeder is not None:
            fields["feeder"] = self.feeder
        if self.resync:
            fields["resync"] = True
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "RegisterFeeder":
        try:
            keys = frame["keys"]
            values = frame["values"]
        except KeyError as exc:
            raise ProtocolError(f"register frame missing {exc}") from None
        feeder = frame.get("feeder")
        return cls(
            keys=tuple(keys),
            values=tuple(values),
            feeder=None if feeder is None else str(feeder),
            resync=bool(frame.get("resync")),
            time=frame.get("time"),
        )


@dataclass(frozen=True)
class Update(Request):
    """One source value changed."""

    OP: ClassVar[str] = "update"

    key: Hashable
    value: float
    time: Optional[float] = None

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"key": self.key, "value": self.value}
        if self.time is not None:
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Update":
        try:
            key = frame["key"]
            value = frame["value"]
        except KeyError as exc:
            raise ProtocolError(f"update frame missing {exc}") from None
        return cls(key=key, value=float(value), time=frame.get("time"))


@dataclass(frozen=True)
class UpdateBatch(Request):
    """Many source values changed at one trace instant."""

    OP: ClassVar[str] = "update_batch"

    updates: Tuple[Tuple[Hashable, float], ...]
    time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "updates", tuple((key, float(value)) for key, value in self.updates)
        )

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "updates": [[key, value] for key, value in self.updates]
        }
        if self.time is not None:
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "UpdateBatch":
        try:
            updates = frame["updates"]
        except KeyError as exc:
            raise ProtocolError(f"update_batch frame missing {exc}") from None
        return cls(
            updates=tuple((key, value) for key, value in updates),
            time=frame.get("time"),
        )


@dataclass(frozen=True)
class QueryRequest(Request):
    """A bounded aggregate over ``keys`` under a precision ``constraint``."""

    OP: ClassVar[str] = "query"

    keys: Tuple[Hashable, ...]
    aggregate: AggregateKind = AggregateKind.SUM
    constraint: float = math.inf
    time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "keys": list(self.keys),
            "aggregate": self.aggregate.name,
            "constraint": self.constraint,
        }
        if self.time is not None:
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "QueryRequest":
        try:
            keys = frame["keys"]
        except KeyError as exc:
            raise ProtocolError(f"query frame missing {exc}") from None
        try:
            aggregate = AggregateKind[str(frame.get("aggregate", "SUM")).upper()]
        except KeyError:
            raise ProtocolError(
                f"unknown aggregate {frame.get('aggregate')!r}"
            ) from None
        return cls(
            keys=tuple(keys),
            aggregate=aggregate,
            constraint=float(frame.get("constraint", "inf")),
            time=frame.get("time"),
        )


@dataclass(frozen=True)
class StatsRequest(Request):
    """Ask for the server's statistics snapshot (a plain mapping reply)."""

    OP: ClassVar[str] = "stats"

    def wire_fields(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "StatsRequest":
        return cls()


@dataclass(frozen=True)
class MetricsRequest(Request):
    """Ask for the server's metrics-registry snapshot (JSON-able mapping)."""

    OP: ClassVar[str] = "metrics"

    def wire_fields(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "MetricsRequest":
        return cls()


@dataclass(frozen=True)
class Refresh(Request):
    """Server-to-feeder: fetch the current exact value of one owned key."""

    OP: ClassVar[str] = "refresh"

    key: Hashable

    def wire_fields(self) -> Dict[str, Any]:
        return {"key": self.key}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Refresh":
        try:
            return cls(key=frame["key"])
        except KeyError as exc:
            raise ProtocolError(f"refresh frame missing {exc}") from None


@dataclass(frozen=True)
class Snapshot(Request):
    """Gateway-to-partition: read cached intervals for a query's keys.

    Counts cache hits/misses and feeds the policy's read observers exactly
    as the local-query snapshot phase does — the gateway then runs the
    *global* refresh selection over the union of partition snapshots.
    """

    OP: ClassVar[str] = "snapshot"

    keys: Tuple[Hashable, ...]
    constraint: float = math.inf
    time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "keys": list(self.keys),
            "constraint": self.constraint,
        }
        if self.time is not None:
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Snapshot":
        try:
            keys = frame["keys"]
        except KeyError as exc:
            raise ProtocolError(f"snapshot frame missing {exc}") from None
        return cls(
            keys=tuple(keys),
            constraint=float(frame.get("constraint", "inf")),
            time=frame.get("time"),
        )


@dataclass(frozen=True)
class RefreshKey(Request):
    """Gateway-to-partition: one query-initiated refresh of an owned key."""

    OP: ClassVar[str] = "refresh_key"

    key: Hashable
    time: Optional[float] = None

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"key": self.key}
        if self.time is not None:
            fields["time"] = self.time
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "RefreshKey":
        try:
            return cls(key=frame["key"], time=frame.get("time"))
        except KeyError as exc:
            raise ProtocolError(f"refresh_key frame missing {exc}") from None


@dataclass(frozen=True)
class Recovered(Request):
    """Gateway-to-partition: crash recovery and resync are complete.

    The partition acknowledges by taking a checkpoint — folding the
    replayed WAL and the resync registrations into its snapshot, so the
    next crash replays from here — and reports its recovery counters.
    The gateway cuts the partition back to live routing on this ack.
    """

    OP: ClassVar[str] = "recovered"

    def wire_fields(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Recovered":
        return cls()


@dataclass(frozen=True)
class RegisterAck(Response):
    """Reply to ``register``: count adopted, session epoch, resync refreshes."""

    registered: int
    epoch: Optional[int] = None
    refreshes: Optional[int] = None

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"registered": self.registered}
        if self.epoch is not None:
            fields["epoch"] = self.epoch
        if self.refreshes is not None:
            fields["refreshes"] = self.refreshes
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "RegisterAck":
        return cls(
            registered=int(frame.get("registered", 0)),
            epoch=frame.get("epoch"),
            refreshes=frame.get("refreshes"),
        )


@dataclass(frozen=True)
class UpdateAck(Response):
    """Reply to ``update``: whether it fired a value-initiated refresh."""

    refresh: bool

    def wire_fields(self) -> Dict[str, Any]:
        return {"refresh": self.refresh}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "UpdateAck":
        return cls(refresh=bool(frame.get("refresh")))


@dataclass(frozen=True)
class UpdateBatchAck(Response):
    """Reply to ``update_batch``: value-initiated refreshes fired."""

    refreshes: int

    def wire_fields(self) -> Dict[str, Any]:
        return {"refreshes": self.refreshes}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "UpdateBatchAck":
        return cls(refreshes=int(frame.get("refreshes", 0)))


@dataclass(frozen=True)
class BoundedAnswer(Response):
    """Reply to ``query``: the bounded aggregate plus per-query accounting."""

    low: float
    high: float
    refreshed: Tuple[Hashable, ...] = ()
    hits: int = 0
    misses: int = 0
    degraded: bool = False
    degraded_keys: Tuple[Hashable, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "refreshed", tuple(self.refreshed))
        object.__setattr__(self, "degraded_keys", tuple(self.degraded_keys))

    @property
    def width(self) -> float:
        return self.high - self.low

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "low": self.low,
            "high": self.high,
            "refreshed": list(self.refreshed),
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.degraded:
            fields["degraded"] = True
            fields["degraded_keys"] = list(self.degraded_keys)
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "BoundedAnswer":
        try:
            low = frame["low"]
            high = frame["high"]
        except KeyError as exc:
            raise ProtocolError(f"query reply missing {exc}") from None
        return cls(
            low=float(low),
            high=float(high),
            refreshed=tuple(frame.get("refreshed", ())),
            hits=int(frame.get("hits", 0)),
            misses=int(frame.get("misses", 0)),
            degraded=bool(frame.get("degraded")),
            degraded_keys=tuple(frame.get("degraded_keys", ())),
        )


@dataclass(frozen=True)
class RefreshValue(Response):
    """A feeder's reply to ``refresh``: the current exact value."""

    value: float

    def wire_fields(self) -> Dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "RefreshValue":
        try:
            return cls(value=float(frame["value"]))
        except KeyError as exc:
            raise ProtocolError(f"refresh reply missing {exc}") from None


@dataclass(frozen=True)
class SnapshotReply(Response):
    """Reply to ``snapshot``: cached intervals plus down-key annotations.

    ``intervals`` aligns with the request's keys.  ``down`` lists indices
    (into the request's keys) whose owner is currently down, and
    ``down_intervals`` their honest degraded bounds — both omitted on the
    wire when every key is live, which is the bit-identical fast path.
    """

    intervals: Tuple[Tuple[float, float], ...]
    hits: int = 0
    down: Tuple[int, ...] = ()
    down_intervals: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "intervals", tuple((low, high) for low, high in self.intervals)
        )
        object.__setattr__(self, "down", tuple(self.down))
        object.__setattr__(
            self,
            "down_intervals",
            tuple((low, high) for low, high in self.down_intervals),
        )

    def wire_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "intervals": [[low, high] for low, high in self.intervals],
            "hits": self.hits,
        }
        if self.down:
            fields["down"] = list(self.down)
            fields["down_intervals"] = [
                [low, high] for low, high in self.down_intervals
            ]
        return fields

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "SnapshotReply":
        try:
            intervals = frame["intervals"]
        except KeyError as exc:
            raise ProtocolError(f"snapshot reply missing {exc}") from None
        return cls(
            intervals=tuple((low, high) for low, high in intervals),
            hits=int(frame.get("hits", 0)),
            down=tuple(frame.get("down", ())),
            down_intervals=tuple(
                (low, high) for low, high in frame.get("down_intervals", ())
            ),
        )


#: Request classes by wire operation name (the dispatch registry).
REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.OP: cls
    for cls in (
        RegisterFeeder,
        Update,
        UpdateBatch,
        QueryRequest,
        StatsRequest,
        MetricsRequest,
        Refresh,
        Snapshot,
        RefreshKey,
        Recovered,
    )
}


def parse_request(frame: Dict[str, Any]) -> Optional[Request]:
    """Parse a decoded request frame into its typed message.

    Returns ``None`` for an unknown operation (the dispatcher's error reply
    carries the op name); raises :class:`ProtocolError` for a frame whose
    shape violates the operation's schema.
    """
    request_type = REQUEST_TYPES.get(frame.get("op"))
    if request_type is None:
        return None
    return request_type.from_wire(frame)


# ---------------------------------------------------------------------------
# Hot-path codecs
# ---------------------------------------------------------------------------
#
# ``query`` and ``update_batch`` dominate a trace replay (every other op is
# per-connection setup or diagnostics).  Their generic path validates twice:
# ``from_wire`` coerces the fields, then the dataclass ``__init__`` runs
# ``__post_init__`` and re-coerces the same tuples.  The helpers below do the
# coercion exactly once — the decoder builds the frozen instances through
# ``__new__`` after checking the frame has the canonical client-emitted
# shape, and the encoders build the ``wire_fields()`` dicts without
# constructing a dataclass at all.  Any frame that is not canonical (wrong
# container type, non-numeric constraint, lowercase aggregate name, …) falls
# back to :func:`parse_request`, so error messages and tolerance for odd but
# valid frames are byte-identical to the generic path.  Equivalence is
# pinned by ``tests/test_protocol_typed.py::TestFastPath``.

#: Canonical aggregate wire names (what ``QueryRequest.wire_fields`` emits).
_AGGREGATES_BY_WIRE: Dict[str, AggregateKind] = {
    kind.name: kind for kind in AggregateKind
}


def parse_request_fast(frame: Dict[str, Any]) -> Optional[Request]:
    """:func:`parse_request` with a fast path for ``query``/``update_batch``.

    Semantically identical to :func:`parse_request` on every frame; the hot
    ops skip the double coercion when the frame has the canonical shape.
    """
    op = frame.get("op")
    if op == "query":
        keys = frame.get("keys")
        aggregate = _AGGREGATES_BY_WIRE.get(frame.get("aggregate", "SUM"))
        if type(keys) is list and aggregate is not None:
            constraint = frame.get("constraint", math.inf)
            kind = type(constraint)
            if kind is not float:
                # ``type`` identity, so bool (a JSON ``true``) falls back.
                if kind is not int:
                    return parse_request(frame)
                constraint = float(constraint)
            request = QueryRequest.__new__(QueryRequest)
            set_field = object.__setattr__
            set_field(request, "keys", tuple(keys))
            set_field(request, "aggregate", aggregate)
            set_field(request, "constraint", constraint)
            set_field(request, "time", frame.get("time"))
            return request
    elif op == "update_batch":
        updates = frame.get("updates")
        if type(updates) is list:
            try:
                pairs = tuple((key, float(value)) for key, value in updates)
            except (TypeError, ValueError):
                return parse_request(frame)
            request = UpdateBatch.__new__(UpdateBatch)
            set_field = object.__setattr__
            set_field(request, "updates", pairs)
            set_field(request, "time", frame.get("time"))
            return request
    return parse_request(frame)


def query_fields(
    keys: Any,
    aggregate: AggregateKind,
    constraint: float,
    time: Optional[float] = None,
) -> Dict[str, Any]:
    """``QueryRequest(...).wire_fields()`` without building the dataclass."""
    fields: Dict[str, Any] = {
        "keys": list(keys),
        "aggregate": aggregate.name,
        "constraint": constraint,
    }
    if time is not None:
        fields["time"] = time
    return fields


def update_batch_fields(
    updates: Any, time: Optional[float] = None
) -> Dict[str, Any]:
    """``UpdateBatch(...).wire_fields()`` without building the dataclass."""
    fields: Dict[str, Any] = {
        "updates": [[key, float(value)] for key, value in updates]
    }
    if time is not None:
        fields["time"] = time
    return fields
