"""The asyncio approximate-cache server.

:class:`CacheServer` hosts one :class:`~repro.caching.cache.ApproximateCache`
(or a :class:`~repro.sharding.coordinator.ShardedCacheCoordinator` for
``shards > 1``) behind the length-prefixed JSON protocol of
:mod:`repro.serving.protocol`.  Its behaviour per event mirrors the offline
simulator exactly — the deterministic load-generator equivalence test in
``tests/test_serving_equivalence.py`` pins refresh counts and hit rates to
:class:`~repro.simulation.simulator.CacheSimulation`'s — while the plumbing
around the events is a real server:

* **Feeders** register the keys they own with initial exact values and push
  ``update`` RPCs.  The server keeps a
  :class:`~repro.caching.source.DataSource` mirror per key: when an update
  escapes the published interval, the precision policy decides a fresh
  approximation and a value-initiated refresh is charged, exactly as in the
  simulator's ``_apply_update``.
* **Clients** send ``query`` RPCs (keys, aggregate, precision constraint).
  Cached intervals are snapshotted (these lookups are the only ones counted
  in the hit rate, as offline) and the shared refresh-selection logic runs
  asynchronously (:mod:`repro.serving.execution`); each selected refresh is
  an RPC *back to the owning feeder connection*, awaited without blocking
  other connections.
* **Admission control** keeps overload graceful: at most
  ``max_inflight_queries`` queries execute concurrently, at most
  ``admission_queue_limit`` more may wait, and anything beyond that is
  rejected with an ``overloaded`` error instead of growing unbounded queues.
  Every connection writes through a bounded outbox drained by a writer task,
  so one slow reader back-pressures its producers instead of ballooning
  memory.

Time is logical: requests may stamp a ``time`` (the load generator replays
trace timestamps), and the server's clock is the running maximum, which
keeps per-entry access times monotone under concurrent clients.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Set

from repro.caching.cache import ApproximateCache
from repro.caching.eviction import EvictionPolicy
from repro.caching.policies.base import PrecisionPolicy
from repro.caching.source import DataSource
from repro.intervals.interval import UNBOUNDED
from repro.queries.aggregates import AggregateKind
from repro.serving.execution import execute_bounded_query_async
from repro.serving.protocol import ProtocolError, error_response
from repro.serving.transport import (
    DEFAULT_LOOPBACK_BUFFER,
    LoopbackFrameTransport,
    StreamFrameTransport,
    loopback_pair,
)
from repro.sharding.coordinator import ShardedCacheCoordinator
from repro.simulation.network import NetworkModel

DEFAULT_MAX_INFLIGHT_QUERIES = 64
DEFAULT_ADMISSION_QUEUE_LIMIT = 256
DEFAULT_WRITE_QUEUE_LIMIT = 128
DEFAULT_REFRESH_TIMEOUT = 30.0


@dataclass
class ServingStatistics:
    """Running counters of one server's lifetime (all-time totals)."""

    updates_applied: int = 0
    updates_ignored: int = 0
    value_refreshes: int = 0
    query_refreshes: int = 0
    queries_served: int = 0
    queries_rejected: int = 0
    refresh_rpcs: int = 0
    total_cost: float = 0.0
    connections_opened: int = 0
    connections_closed: int = 0

    @property
    def refresh_count(self) -> int:
        """Total refreshes of both kinds."""
        return self.value_refreshes + self.query_refreshes


class _Connection:
    """Per-connection server state: outbox, writer task, pending RPCs."""

    def __init__(self, transport: Any, write_queue_limit: int) -> None:
        self.transport = transport
        self.outbox: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue(
            maxsize=write_queue_limit
        )
        self.pending: Dict[int, asyncio.Future] = {}
        self.rpc_ids = itertools.count(1)
        self.keys: Set[Hashable] = set()
        self.writer_task: Optional[asyncio.Task] = None
        self.request_tasks: Set[asyncio.Task] = set()
        self.closing = False

    async def send(self, message: Dict[str, Any]) -> None:
        """Enqueue a frame for the writer task (bounded: may backpressure)."""
        if self.closing:
            return
        await self.outbox.put(message)

    async def run_writer(self) -> None:
        """Drain the outbox into the transport until the stop sentinel."""
        try:
            while True:
                message = await self.outbox.get()
                if message is None:
                    break
                try:
                    await self.transport.write_frame(message)
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    break
        finally:
            # A dead writer must not leave senders blocked on a full outbox:
            # mark the connection closing and drain whatever is queued.
            self.closing = True
            while not self.outbox.empty():
                self.outbox.get_nowait()

    def fail_pending(self, error: Exception) -> None:
        """Fail every in-flight server-initiated RPC on this connection."""
        for future in self.pending.values():
            if not future.done():
                future.set_exception(error)
        self.pending.clear()


class CacheServer:
    """An online approximate cache speaking the serving protocol.

    Parameters
    ----------
    policy:
        The precision policy deciding refreshed approximations (shared with
        the offline simulator; e.g. the paper's adaptive policy).
    shards:
        ``1`` hosts a single :class:`ApproximateCache`; larger values front
        a hash-partitioned :class:`ShardedCacheCoordinator` exactly as
        ``SimulationConfig.shards`` does offline.
    capacity / eviction_policy:
        Cache size ``kappa`` and victim-selection override.
    value_refresh_cost / query_refresh_cost:
        ``C_vr`` / ``C_qr`` charged per refresh into the Omega-style cost.
    latency_per_message:
        Optional modelled per-message delay forwarded to the
        :class:`NetworkModel` latency accounting.
    max_inflight_queries / admission_queue_limit / write_queue_limit:
        Admission control and backpressure knobs (see the module docstring).
    refresh_timeout:
        Deadline in seconds on each refresh RPC to a feeder.  Bounds the
        damage of a connected-but-unresponsive feeder: the query fails with
        an error reply and releases its admission slot instead of wedging
        forever.  ``None`` disables the deadline.
    """

    def __init__(
        self,
        policy: PrecisionPolicy,
        *,
        shards: int = 1,
        capacity: Optional[int] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        value_refresh_cost: float = 1.0,
        query_refresh_cost: float = 2.0,
        latency_per_message: float = 0.0,
        max_inflight_queries: int = DEFAULT_MAX_INFLIGHT_QUERIES,
        admission_queue_limit: int = DEFAULT_ADMISSION_QUEUE_LIMIT,
        write_queue_limit: int = DEFAULT_WRITE_QUEUE_LIMIT,
        refresh_timeout: Optional[float] = DEFAULT_REFRESH_TIMEOUT,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if refresh_timeout is not None and refresh_timeout <= 0:
            raise ValueError("refresh_timeout must be positive (or None)")
        if max_inflight_queries < 1:
            raise ValueError("max_inflight_queries must be at least 1")
        if admission_queue_limit < 0:
            raise ValueError("admission_queue_limit must be non-negative")
        if write_queue_limit < 1:
            raise ValueError("write_queue_limit must be at least 1")
        self._policy = policy
        if shards > 1:
            self._cache = ShardedCacheCoordinator(
                shard_count=shards,
                capacity=capacity,
                eviction_policy_factory=(
                    None if eviction_policy is None else (lambda index: eviction_policy)
                ),
            )
        else:
            self._cache = ApproximateCache(
                capacity=capacity, eviction_policy=eviction_policy
            )
        self._network = NetworkModel(
            value_refresh_cost=value_refresh_cost,
            query_refresh_cost=query_refresh_cost,
            latency_per_message=latency_per_message,
        )
        self._sources: Dict[Hashable, DataSource] = {}
        self._owners: Dict[Hashable, _Connection] = {}
        self._clock = 0.0
        self._notify_on_eviction = policy.notifies_source_on_eviction()
        policy_type = type(policy)
        self._policy_observes_writes = (
            policy_type.record_write is not PrecisionPolicy.record_write
        )
        self._policy_observes_reads = (
            policy_type.record_read is not PrecisionPolicy.record_read
            or policy_type.record_constraint is not PrecisionPolicy.record_constraint
        )
        self._refresh_timeout = refresh_timeout
        self._query_gate = asyncio.Semaphore(max_inflight_queries)
        self._admission_queue_limit = admission_queue_limit
        self._admission_waiting = 0
        self._write_queue_limit = write_queue_limit
        self.statistics = ServingStatistics()
        self._connections: Set[_Connection] = set()
        self._serve_tasks: Set[asyncio.Task] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self):
        """The hosted cache (single or sharded; same surface)."""
        return self._cache

    @property
    def network(self) -> NetworkModel:
        """The cost/latency accounting model."""
        return self._network

    @property
    def sources(self) -> Dict[Hashable, DataSource]:
        """The server-side source mirrors, keyed by value id."""
        return self._sources

    @property
    def clock(self) -> float:
        """The server's logical clock (running maximum of stamped times)."""
        return self._clock

    # ------------------------------------------------------------------
    # Accepting connections
    # ------------------------------------------------------------------
    def connect(
        self, buffer: int = DEFAULT_LOOPBACK_BUFFER
    ) -> LoopbackFrameTransport:
        """Dial the server in-process; returns the client transport end.

        The server end is served by a background task on the running loop —
        this is the loopback path tests, CI and the experiment harness use.
        """
        client_end, server_end = loopback_pair(buffer)
        task = asyncio.ensure_future(self.serve_transport(server_end))
        self._serve_tasks.add(task)
        task.add_done_callback(self._serve_tasks.discard)
        return client_end

    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Start accepting TCP connections on ``host:port``."""

        async def handler(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            # Track the per-connection handler like loopback serve tasks so
            # ``close()`` waits for in-flight teardowns (``Server.wait_closed``
            # does not cover running handlers on every Python version).
            task = asyncio.current_task()
            if task is not None:
                self._serve_tasks.add(task)
                task.add_done_callback(self._serve_tasks.discard)
            await self.serve_transport(StreamFrameTransport(reader, writer))

        self._tcp_server = await asyncio.start_server(handler, host, port)
        return self._tcp_server

    async def serve_transport(self, transport: Any) -> None:
        """Serve one connection until EOF (the per-connection main loop)."""
        connection = _Connection(transport, self._write_queue_limit)
        connection.writer_task = asyncio.ensure_future(connection.run_writer())
        self._connections.add(connection)
        self.statistics.connections_opened += 1
        try:
            while True:
                try:
                    frame = await transport.read_frame()
                except ProtocolError:
                    break
                if frame is None:
                    break
                if "op" in frame:
                    if frame.get("op") == "query":
                        # Queries run as tasks so the connection's read loop
                        # stays free to deliver refresh-RPC responses — in
                        # particular when a query's refresh targets a key
                        # owned by the *querying* connection itself, which
                        # would otherwise deadlock.  Updates stay inline so
                        # their per-connection ordering is preserved.
                        task = asyncio.ensure_future(self._dispatch(connection, frame))
                        connection.request_tasks.add(task)
                        task.add_done_callback(connection.request_tasks.discard)
                    else:
                        await self._dispatch(connection, frame)
                else:
                    self._complete_refresh_rpc(connection, frame)
        finally:
            await self._teardown_connection(connection)

    async def _teardown_connection(self, connection: _Connection) -> None:
        # Order matters: ``closing`` goes first so no query can register a
        # *new* refresh-RPC future against this connection (the ownership
        # check in ``_query_initiated_refresh`` then takes the mirror
        # fallback, and the check-to-register stretch has no await points),
        # then the already-registered futures are failed, and only then are
        # the in-flight query tasks awaited — every one of them can now
        # finish: refresh RPCs against other live feeders complete normally,
        # ones against this connection have just been failed, and replies to
        # this connection are dropped silently.
        connection.closing = True
        connection.fail_pending(ConnectionResetError("feeder connection closed"))
        if connection.request_tasks:
            await asyncio.gather(
                *list(connection.request_tasks), return_exceptions=True
            )
        for key in connection.keys:
            if self._owners.get(key) is connection:
                del self._owners[key]
        connection.keys.clear()
        if connection.writer_task is not None:
            # Stop the writer; bypass the bounded outbox so shutdown cannot
            # deadlock behind backpressure.
            if connection.outbox.full():
                connection.writer_task.cancel()
            else:
                connection.outbox.put_nowait(None)
            try:
                await connection.writer_task
            except asyncio.CancelledError:
                pass
        connection.transport.close()
        await connection.transport.wait_closed()
        self._connections.discard(connection)
        self.statistics.connections_closed += 1

    async def close(self) -> None:
        """Close every connection and stop accepting new ones."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for connection in list(self._connections):
            connection.transport.close()
        for task in list(self._serve_tasks):
            try:
                await task
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            if op == "update":
                reply = self._handle_update(connection, frame)
            elif op == "update_batch":
                reply = self._handle_update_batch(connection, frame)
            elif op == "query":
                reply = await self._handle_query(frame)
            elif op == "register":
                reply = self._handle_register(connection, frame)
            elif op == "stats":
                reply = self._handle_stats()
            else:
                reply = error_response(request_id, f"unknown operation {op!r}")
        except ConnectionResetError:
            reply = error_response(request_id, "refresh fetch failed: feeder gone")
        except Exception as exc:
            # Any malformed request must produce an error *reply*, never
            # kill the connection (inline ops) or die as an unobserved task
            # (queries) — a client awaiting the response would hang forever.
            # CancelledError is a BaseException and still propagates.
            reply = error_response(request_id, f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            reply.setdefault("id", request_id)
            reply.setdefault("ok", True)
            await connection.send(reply)

    # ------------------------------------------------------------------
    # Feeder operations
    # ------------------------------------------------------------------
    def _handle_register(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        keys = frame["keys"]
        values = frame["values"]
        if len(keys) != len(values):
            raise ProtocolError("register needs one value per key")
        for key, value in zip(keys, values):
            self._register_key(connection, key, float(value))
        return {"registered": len(keys)}

    def _register_key(
        self, connection: _Connection, key: Hashable, value: float
    ) -> None:
        source = self._sources.get(key)
        if source is None:
            self._sources[key] = DataSource(key=key, value=value)
        else:
            # Re-registration hands the key a fresh lifecycle: the new
            # feeder's initial value replaces any stale mirror state and the
            # previous owner's cached approximation is dropped, so a second
            # replay against a persistent server starts from a clean slate
            # instead of tripping the update time-order check.
            source.value = float(value)
            source.update_count = 0
            source.last_update_time = 0.0
            source.last_refresh_time = 0.0
            source.forget_publication()
            self._cache.invalidate(key)
        self._owners[key] = connection
        connection.keys.add(key)

    def _handle_update(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        time = self._advance_clock(frame.get("time"))
        refreshed = self._apply_update(
            connection, frame["key"], float(frame["value"]), time
        )
        return {"refresh": refreshed}

    def _handle_update_batch(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        time = self._advance_clock(frame.get("time"))
        refreshes = 0
        for key, value in frame["updates"]:
            if self._apply_update(connection, key, float(value), time):
                refreshes += 1
        return {"refreshes": refreshes}

    def _apply_update(
        self, connection: _Connection, key: Hashable, value: float, time: float
    ) -> bool:
        """Mirror of the simulator's ``_apply_update`` body.

        Returns whether the update triggered a value-initiated refresh.
        Unknown keys are registered implicitly to the sending connection
        (the first update then behaves like the simulator's initial value:
        no interval is published yet, so no refresh can fire).
        """
        source = self._sources.get(key)
        if source is None:
            self._register_key(connection, key, value)
            self.statistics.updates_applied += 1
            return False
        if value == source.value:
            # Not a modification (idle stretches in trace replays): nothing
            # changes, no write is recorded, no refresh can be needed.
            self.statistics.updates_ignored += 1
            return False
        if time < source.last_update_time:
            raise ProtocolError("updates must arrive in non-decreasing time order")
        source.value = value
        source.update_count += 1
        source.last_update_time = time
        self.statistics.updates_applied += 1
        if self._policy_observes_writes:
            self._policy.record_write(key, time)
        interval = source.published_interval
        if interval is not None and not (interval.low <= value <= interval.high):
            decision = self._policy.on_value_initiated_refresh(key, value, time)
            cost = self._network.charge_value_refresh()
            self.statistics.value_refreshes += 1
            self.statistics.total_cost += cost
            self._install(key, decision, time)
            return True
        return False

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    async def _handle_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._query_gate.locked():
            if self._admission_waiting >= self._admission_queue_limit:
                self.statistics.queries_rejected += 1
                return {
                    "ok": False,
                    "error": "overloaded: admission queue full",
                    "overloaded": True,
                }
            self._admission_waiting += 1
            try:
                await self._query_gate.acquire()
            finally:
                self._admission_waiting -= 1
        else:
            await self._query_gate.acquire()
        try:
            return await self._execute_query(frame)
        finally:
            self._query_gate.release()

    async def _execute_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        keys = frame["keys"]
        if not keys:
            raise ProtocolError("a query must touch at least one key")
        kind = AggregateKind[str(frame.get("aggregate", "SUM")).upper()]
        constraint = float(frame.get("constraint", "inf"))
        time = self._advance_clock(frame.get("time"))
        cache_get = self._cache.get
        intervals = {}
        hits = 0
        # The workload lookups — the only cache accesses counted in the hit
        # rate, exactly as the simulator's ``_run_query`` counts them.
        if self._policy_observes_reads:
            record_read = self._policy.record_read
            record_constraint = self._policy.record_constraint
            for key in keys:
                entry = cache_get(key, time)
                if entry is not None:
                    hits += 1
                intervals[key] = entry.interval if entry is not None else UNBOUNDED
                record_read(key, time, served_from_cache=entry is not None)
                record_constraint(key, constraint, time)
        else:
            for key in keys:
                entry = cache_get(key, time)
                if entry is not None:
                    hits += 1
                intervals[key] = entry.interval if entry is not None else UNBOUNDED

        async def fetch_exact(key: Hashable) -> float:
            return await self._query_initiated_refresh(key, time)

        execution = await execute_bounded_query_async(
            kind, intervals, constraint, fetch_exact
        )
        self.statistics.queries_served += 1
        bound = execution.result_bound
        return {
            "low": bound.low,
            "high": bound.high,
            "refreshed": list(execution.refreshed_keys),
            "hits": hits,
            "misses": len(keys) - hits,
        }

    async def _query_initiated_refresh(self, key: Hashable, time: float) -> float:
        """Fetch the exact value of ``key``: the refresh RPC to its feeder.

        Falls back to the server-side mirror when no feeder currently owns
        the key (its last pushed value *is* the exact value then).
        """
        source = self._sources[key]
        owner = self._owners.get(key)
        if owner is not None and not owner.closing:
            value = await self._refresh_rpc(owner, key)
            source.value = float(value)
        decision = self._policy.on_query_initiated_refresh(key, source.value, time)
        cost = self._network.charge_query_refresh()
        self.statistics.query_refreshes += 1
        self.statistics.total_cost += cost
        self._install(key, decision, time)
        return source.value

    async def _refresh_rpc(self, owner: _Connection, key: Hashable) -> float:
        rpc_id = next(owner.rpc_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        owner.pending[rpc_id] = future
        self.statistics.refresh_rpcs += 1
        try:
            await owner.send({"op": "refresh", "id": rpc_id, "key": key})
            if self._refresh_timeout is None:
                return float(await future)
            try:
                return float(await asyncio.wait_for(future, self._refresh_timeout))
            except asyncio.TimeoutError:
                raise ConnectionResetError(
                    f"refresh of {key!r} timed out after "
                    f"{self._refresh_timeout:g}s (unresponsive feeder)"
                ) from None
        finally:
            owner.pending.pop(rpc_id, None)

    def _complete_refresh_rpc(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> None:
        future = connection.pending.get(frame.get("id"))
        if future is None or future.done():
            return
        if frame.get("ok", True) and "value" in frame:
            future.set_result(frame["value"])
        else:
            future.set_exception(
                ConnectionResetError(
                    f"refresh rejected by feeder: {frame.get('error', 'no value')}"
                )
            )

    # ------------------------------------------------------------------
    # Shared installation path (mirror of the simulator's ``_install``)
    # ------------------------------------------------------------------
    def _install(self, key: Hashable, decision, time: float) -> None:
        source = self._sources[key]
        if self._notify_on_eviction and decision.interval.is_unbounded:
            self._cache.invalidate(key)
            source.forget_publication()
        else:
            source.publish(decision.interval, decision.original_width, time)
            evicted = self._cache.put(
                key, decision.interval, decision.original_width, time
            )
            if evicted and self._notify_on_eviction:
                for evicted_key in evicted:
                    self._sources[evicted_key].forget_publication()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _handle_stats(self) -> Dict[str, Any]:
        cache_stats = self._cache.statistics
        serving = self.statistics
        return {
            "clock": self._clock,
            "keys": len(self._sources),
            "cached_entries": len(self._cache),
            "connections": len(self._connections),
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
            "insertions": cache_stats.insertions,
            "evictions": cache_stats.evictions,
            "shard_hit_rates": list(self._cache.shard_hit_rates()),
            "updates_applied": serving.updates_applied,
            "updates_ignored": serving.updates_ignored,
            "value_refreshes": serving.value_refreshes,
            "query_refreshes": serving.query_refreshes,
            "queries_served": serving.queries_served,
            "queries_rejected": serving.queries_rejected,
            "refresh_rpcs": serving.refresh_rpcs,
            "total_cost": serving.total_cost,
            "messages_sent": self._network.messages_sent,
            "total_latency": self._network.total_latency,
        }

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def _advance_clock(self, time: Any) -> float:
        """Advance the logical clock to ``time`` (never backwards)."""
        if time is not None:
            stamped = float(time)
            if stamped > self._clock:
                self._clock = stamped
        return self._clock
