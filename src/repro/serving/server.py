"""The asyncio approximate-cache server.

:class:`CacheServer` hosts one :class:`~repro.caching.cache.ApproximateCache`
(or a :class:`~repro.sharding.coordinator.ShardedCacheCoordinator` for
``shards > 1``) behind the length-prefixed JSON protocol of
:mod:`repro.serving.protocol`.  Its behaviour per event mirrors the offline
simulator exactly — the deterministic load-generator equivalence test in
``tests/test_serving_equivalence.py`` pins refresh counts and hit rates to
:class:`~repro.simulation.simulator.CacheSimulation`'s — while the plumbing
around the events is a real server:

* **Feeders** register the keys they own with initial exact values and push
  ``update`` RPCs.  The server keeps a
  :class:`~repro.caching.source.DataSource` mirror per key: when an update
  escapes the published interval, the precision policy decides a fresh
  approximation and a value-initiated refresh is charged, exactly as in the
  simulator's ``_apply_update``.
* **Clients** send ``query`` RPCs (keys, aggregate, precision constraint).
  Cached intervals are snapshotted (these lookups are the only ones counted
  in the hit rate, as offline) and the shared refresh-selection logic runs
  asynchronously (:mod:`repro.serving.execution`); each selected refresh is
  an RPC *back to the owning feeder connection*, awaited without blocking
  other connections.
* **Admission control** keeps overload graceful: at most
  ``max_inflight_queries`` queries execute concurrently, at most
  ``admission_queue_limit`` more may wait, and anything beyond that is
  rejected with an ``overloaded`` error instead of growing unbounded queues.
  Every connection writes through a bounded outbox drained by a writer task,
  so one slow reader back-pressures its producers instead of ballooning
  memory.
* **Fault tolerance** leans on the paper's own semantics: a bounded answer
  is still a *correct* answer when it is merely wider than asked for.
  Feeder sessions are epoch-tagged (``register`` with a ``feeder``
  identity): a reconnecting feeder re-registers with ``resync: true``,
  which re-adopts its keys *without* resetting the mirror — missed updates
  fold in through the normal update path (escaped intervals trigger the
  value-initiated refresh they would have caused) — while updates from the
  superseded session are rejected as stale.  While a key's owner is down,
  queries touching it are answered from the mirror with the bound widened
  by a per-key empirical drift model (largest observed update step ×
  potentially missed updates × ``degraded_slack``) and tagged
  ``degraded: true`` — never a wrong interval, never a hard error.  A
  refresh RPC whose feeder dies mid-flight is counted
  (``refreshes_failed``) and the query re-runs its selection with the key
  degraded instead of surfacing ``ConnectionResetError``.

Time is logical: requests may stamp a ``time`` (the load generator replays
trace timestamps), and the server's clock is the running maximum, which
keeps per-entry access times monotone under concurrent clients.
"""

from __future__ import annotations

import asyncio
import itertools
import math
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.caching.cache import ApproximateCache
from repro.caching.eviction import EvictionPolicy
from repro.caching.policies.base import PrecisionPolicy
from repro.caching.source import DataSource
from repro.intervals.interval import UNBOUNDED, Interval
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS, MetricsRegistry
from repro.obs.trace import TRACER
from repro.serving.durability import PartitionDurability
from repro.serving.execution import execute_partitioned_query
from repro.serving.protocol import (
    BoundedAnswer,
    MetricsRequest,
    ProtocolError,
    QueryRequest,
    Recovered,
    Refresh,
    RefreshKey,
    RegisterAck,
    RegisterFeeder,
    Response,
    Snapshot,
    SnapshotReply,
    StatsRequest,
    Update,
    UpdateAck,
    UpdateBatch,
    UpdateBatchAck,
    error_response,
    parse_request_fast,
)
from repro.serving.transport import (
    DEFAULT_LOOPBACK_BUFFER,
    LoopbackFrameTransport,
    StreamFrameTransport,
    loopback_pair,
)
from repro.sharding.coordinator import ShardedCacheCoordinator
from repro.simulation.network import NetworkModel

DEFAULT_MAX_INFLIGHT_QUERIES = 64
DEFAULT_ADMISSION_QUEUE_LIMIT = 256
DEFAULT_WRITE_QUEUE_LIMIT = 128
DEFAULT_REFRESH_TIMEOUT = 30.0
DEFAULT_DEGRADED_SLACK = 4.0

# ---------------------------------------------------------------------------
# Metric catalog (docs/OBSERVABILITY.md documents every entry)
# ---------------------------------------------------------------------------
# Each entry maps a cumulative ``/stats`` field to its registry metric; a
# scrape-time collector mirrors the current totals into the handles, so the
# serving hot paths stay untouched.  The gateway and the partitions expose
# the same names — their registries carry distinguishing ``role`` /
# ``partition`` constant labels, so merged series never collide.
_STATS_COUNTER_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("updates_applied", "repro_updates_applied_total", "Source updates applied to the mirror."),
    ("updates_ignored", "repro_updates_ignored_total", "Stale or unknown-key updates dropped."),
    ("value_refreshes", "repro_value_refreshes_total", "Value-initiated refreshes installed."),
    ("query_refreshes", "repro_query_refreshes_total", "Query-initiated refreshes installed."),
    ("queries_served", "repro_queries_served_total", "Bounded queries answered."),
    ("queries_rejected", "repro_queries_rejected_total", "Queries rejected by admission control."),
    ("refresh_rpcs", "repro_refresh_rpcs_total", "Refresh RPCs issued to feeders."),
    ("refreshes_failed", "repro_refreshes_failed_total", "Refresh RPCs that failed or timed out."),
    ("queries_degraded", "repro_queries_degraded_total", "Queries answered with widened intervals."),
    ("stale_epoch_rejections", "repro_stale_epoch_rejections_total", "Frames fenced off as stale feeder epochs."),
    ("feeder_resyncs", "repro_feeder_resyncs_total", "Feeder resync registrations handled."),
    ("connections_opened", "repro_connections_opened_total", "Serving connections accepted."),
    ("connections_closed", "repro_connections_closed_total", "Serving connections torn down."),
    ("partition_restarts", "repro_partition_restarts_total", "Partition restarts observed by supervision."),
    ("hits", "repro_cache_hits_total", "Cache hits (interval satisfied the constraint)."),
    ("misses", "repro_cache_misses_total", "Cache misses (refresh was required)."),
    ("insertions", "repro_cache_insertions_total", "Cache insertions."),
    ("evictions", "repro_cache_evictions_total", "Cache evictions."),
    ("total_cost", "repro_refresh_cost_total", "Accumulated refresh cost (the paper's Omega units)."),
    ("messages_sent", "repro_network_messages_total", "Messages charged to the network model."),
    ("total_latency", "repro_network_latency_seconds_total", "Modelled network latency accumulated."),
    ("wal_records", "repro_wal_records_total", "WAL records appended."),
    ("wal_bytes", "repro_wal_bytes_total", "WAL bytes appended."),
    ("wal_records_replayed", "repro_wal_replayed_records_total", "WAL records replayed during recovery."),
    ("wal_torn_tails", "repro_wal_torn_tails_total", "Torn WAL tails truncated during recovery."),
    ("checkpoints", "repro_wal_checkpoints_total", "Checkpoints taken."),
)

_STATS_GAUGE_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("clock", "repro_logical_clock", "The server's logical clock."),
    ("keys", "repro_keys", "Keys with a registered source mirror."),
    ("cached_entries", "repro_cache_entries", "Entries currently cached."),
    ("connections", "repro_connections", "Connections currently open."),
    ("keys_down", "repro_keys_down", "Keys whose owning feeder is down."),
    ("hit_rate", "repro_cache_hit_rate", "All-time cache hit rate."),
    ("durable", "repro_wal_enabled", "1 when a WAL/checkpoint layer is attached."),
    ("last_checkpoint_age", "repro_wal_last_checkpoint_age", "Logical time since the last checkpoint (-1 when none)."),
)


@dataclass
class ServingStatistics:
    """Running counters of one server's lifetime (all-time totals)."""

    updates_applied: int = 0
    updates_ignored: int = 0
    value_refreshes: int = 0
    query_refreshes: int = 0
    queries_served: int = 0
    queries_rejected: int = 0
    refresh_rpcs: int = 0
    total_cost: float = 0.0
    connections_opened: int = 0
    connections_closed: int = 0
    refreshes_failed: int = 0
    queries_degraded: int = 0
    stale_epoch_rejections: int = 0
    feeder_resyncs: int = 0
    partition_restarts: int = 0

    @property
    def refresh_count(self) -> int:
        """Total refreshes of both kinds."""
        return self.value_refreshes + self.query_refreshes


class _FeederLost(Exception):
    """Internal: a feeder died with a query's refresh in flight.

    The query's selection pass re-runs with the key degraded; this never
    escapes :meth:`CacheServer._execute_query`.
    """

    def __init__(self, key: Hashable) -> None:
        super().__init__(f"feeder lost during refresh of {key!r}")
        self.key = key


class _KeyDrift:
    """Per-key empirical drift envelope seen by the mirror.

    Tracks the largest update step and the smallest gap between updates —
    the two numbers the degraded-answer widening model extrapolates from
    while a key's owner is down.
    """

    __slots__ = ("max_step", "min_gap")

    def __init__(self) -> None:
        self.max_step = 0.0
        self.min_gap = math.inf

    def observe(self, step: float, gap: Optional[float]) -> None:
        if step > self.max_step:
            self.max_step = step
        if gap is not None and 0.0 < gap < self.min_gap:
            self.min_gap = gap


class _Connection:
    """Per-connection server state: outbox, writer task, pending RPCs."""

    def __init__(self, transport: Any, write_queue_limit: int) -> None:
        self.transport = transport
        self.outbox: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue(
            maxsize=write_queue_limit
        )
        self.pending: Dict[int, asyncio.Future] = {}
        self.rpc_ids = itertools.count(1)
        # Accept ordinal on this server (1-based) and the count of request
        # frames read so far: together they are the deterministic span
        # coordinates for tracing (``repro.obs.trace``) — positional, never
        # temporal, so a serialized replay re-derives identical span IDs.
        self.ordinal = 0
        self.frames_read = 0
        self.keys: Set[Hashable] = set()
        self.writer_task: Optional[asyncio.Task] = None
        self.request_tasks: Set[asyncio.Task] = set()
        self.closing = False
        # Feeder session identity: set by a ``register`` carrying a
        # ``feeder`` id.  A reconnect mints the next epoch and fences this
        # one off (see ``CacheServer._connection_fenced``).
        self.feeder_id: Optional[str] = None
        self.epoch = 0

    async def send(self, message: Dict[str, Any]) -> None:
        """Enqueue a frame for the writer task (bounded: may backpressure)."""
        if self.closing:
            return
        await self.outbox.put(message)

    async def run_writer(self) -> None:
        """Drain the outbox into the transport until the stop sentinel."""
        try:
            while True:
                message = await self.outbox.get()
                if message is None:
                    break
                try:
                    await self.transport.write_frame(message)
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    break
        finally:
            # A dead writer must not leave senders blocked on a full outbox:
            # mark the connection closing and drain whatever is queued.
            self.closing = True
            while not self.outbox.empty():
                self.outbox.get_nowait()

    def fail_pending(self, error: Exception) -> None:
        """Fail every in-flight server-initiated RPC on this connection."""
        for future in self.pending.values():
            if not future.done():
                future.set_exception(error)
        self.pending.clear()


class _ReplayOwner:
    """Duck-typed :class:`_Connection` stand-in that owns keys during WAL
    replay.  Recovery drops its ownerships once the replay is done — a
    recovered key has no live feeder until one re-registers."""

    __slots__ = ("keys", "closing", "feeder_id", "epoch")

    def __init__(self) -> None:
        self.keys: Set[Hashable] = set()
        self.closing = False
        self.feeder_id: Optional[str] = None
        self.epoch = 0


class BaseFrameServer:
    """Connection plumbing shared by :class:`CacheServer` and the gateway.

    Owns everything about *serving framed connections* — accepting them
    (loopback and TCP), the per-connection read loop, bounded write-behind,
    teardown ordering, feeder-epoch fencing, and the server-initiated
    refresh RPC — while leaving *what the operations mean* to the
    subclass's ``_dispatch``.  The subclass provides a ``statistics``
    object with ``connections_opened`` / ``connections_closed`` /
    ``refresh_rpcs`` / ``stale_epoch_rejections`` counters and may override
    the ``_connection_lost`` / ``_connection_removed`` teardown hooks.
    """

    #: Operations dispatched as tasks so the connection's read loop stays
    #: free to deliver refresh-RPC responses (see ``serve_transport``).
    _TASK_OPS: ClassVar[FrozenSet[str]] = frozenset({"query"})

    def __init__(
        self,
        *,
        write_queue_limit: int = DEFAULT_WRITE_QUEUE_LIMIT,
        refresh_timeout: Optional[float] = DEFAULT_REFRESH_TIMEOUT,
    ) -> None:
        if write_queue_limit < 1:
            raise ValueError("write_queue_limit must be at least 1")
        if refresh_timeout is not None and refresh_timeout <= 0:
            raise ValueError("refresh_timeout must be positive (or None)")
        self._write_queue_limit = write_queue_limit
        self._refresh_timeout = refresh_timeout
        self._feeder_epochs: Dict[str, int] = {}
        self._connections: Set[_Connection] = set()
        self._serve_tasks: Set[asyncio.Task] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Accepting connections
    # ------------------------------------------------------------------
    def connect(
        self, buffer: int = DEFAULT_LOOPBACK_BUFFER
    ) -> LoopbackFrameTransport:
        """Dial the server in-process; returns the client transport end.

        The server end is served by a background task on the running loop —
        this is the loopback path tests, CI and the experiment harness use.
        """
        client_end, server_end = loopback_pair(buffer)
        task = asyncio.ensure_future(self.serve_transport(server_end))
        self._serve_tasks.add(task)
        task.add_done_callback(self._serve_tasks.discard)
        return client_end

    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Start accepting TCP connections on ``host:port``."""

        async def handler(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            # Track the per-connection handler like loopback serve tasks so
            # ``close()`` waits for in-flight teardowns (``Server.wait_closed``
            # does not cover running handlers on every Python version).
            task = asyncio.current_task()
            if task is not None:
                self._serve_tasks.add(task)
                task.add_done_callback(self._serve_tasks.discard)
            await self.serve_transport(StreamFrameTransport(reader, writer))

        self._tcp_server = await asyncio.start_server(handler, host, port)
        return self._tcp_server

    async def serve_transport(self, transport: Any) -> None:
        """Serve one connection until EOF (the per-connection main loop)."""
        connection = _Connection(transport, self._write_queue_limit)
        connection.writer_task = asyncio.ensure_future(connection.run_writer())
        self._connections.add(connection)
        self.statistics.connections_opened += 1
        connection.ordinal = self.statistics.connections_opened
        tracer = TRACER
        try:
            while True:
                try:
                    frame = await transport.read_frame()
                except ProtocolError:
                    break
                if frame is None:
                    break
                if "op" in frame:
                    connection.frames_read += 1
                    if tracer.enabled:
                        tracer.record(
                            "rpc",
                            conn=connection.ordinal,
                            frame=connection.frames_read,
                            op=frame.get("op"),
                        )
                    if frame.get("op") in self._TASK_OPS:
                        # These ops run as tasks so the connection's read
                        # loop stays free to deliver refresh-RPC responses —
                        # in particular when a query's refresh targets a key
                        # owned by the *querying* connection itself, which
                        # would otherwise deadlock.  Updates stay inline so
                        # their per-connection ordering is preserved.
                        task = asyncio.ensure_future(self._dispatch(connection, frame))
                        connection.request_tasks.add(task)
                        task.add_done_callback(connection.request_tasks.discard)
                    else:
                        await self._dispatch(connection, frame)
                else:
                    self._complete_refresh_rpc(connection, frame)
        finally:
            await self._teardown_connection(connection)

    async def _teardown_connection(self, connection: _Connection) -> None:
        # Order matters: ``closing`` goes first so no query can register a
        # *new* refresh-RPC future against this connection (the ownership
        # check in ``_query_initiated_refresh`` then takes the mirror
        # fallback, and the check-to-register stretch has no await points),
        # then the already-registered futures are failed, and only then are
        # the in-flight query tasks awaited — every one of them can now
        # finish: refresh RPCs against other live feeders complete normally,
        # ones against this connection have just been failed, and replies to
        # this connection are dropped silently.
        connection.closing = True
        connection.fail_pending(ConnectionResetError("feeder connection closed"))
        await self._connection_lost(connection)
        if connection.request_tasks:
            await asyncio.gather(
                *list(connection.request_tasks), return_exceptions=True
            )
        self._connection_removed(connection)
        if connection.writer_task is not None:
            # Stop the writer; bypass the bounded outbox so shutdown cannot
            # deadlock behind backpressure.
            if connection.outbox.full():
                connection.writer_task.cancel()
            else:
                connection.outbox.put_nowait(None)
            try:
                await connection.writer_task
            except asyncio.CancelledError:
                pass
        connection.transport.close()
        await connection.transport.wait_closed()
        self._connections.discard(connection)
        self.statistics.connections_closed += 1

    async def _connection_lost(self, connection: _Connection) -> None:
        """Hook: the connection is closing; pending RPCs just failed."""

    def _connection_removed(self, connection: _Connection) -> None:
        """Hook: in-flight tasks done; release key ownership state."""
        connection.keys.clear()

    async def close(self) -> None:
        """Close every connection and stop accepting new ones."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for connection in list(self._connections):
            connection.transport.close()
        for task in list(self._serve_tasks):
            try:
                await task
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    # Dispatch (subclass responsibility)
    # ------------------------------------------------------------------
    async def _dispatch(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Feeder-epoch fencing
    # ------------------------------------------------------------------
    def _connection_fenced(self, connection: _Connection) -> bool:
        """Whether a newer session superseded this feeder connection."""
        feeder = connection.feeder_id
        return (
            feeder is not None and self._feeder_epochs.get(feeder) != connection.epoch
        )

    def _reject_stale(self) -> Dict[str, Any]:
        self.statistics.stale_epoch_rejections += 1
        return {
            "ok": False,
            "error": "stale feeder epoch: a newer session registered this feeder",
            "stale_epoch": True,
        }

    # ------------------------------------------------------------------
    # Server-initiated refresh RPCs
    # ------------------------------------------------------------------
    async def _refresh_rpc(self, owner: _Connection, key: Hashable) -> float:
        rpc_id = next(owner.rpc_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        owner.pending[rpc_id] = future
        self.statistics.refresh_rpcs += 1
        if TRACER.enabled:
            # The RPC id is the frame position on the server-initiated
            # direction of this connection — deterministic like frames read.
            TRACER.record(
                "refresh_rpc",
                conn=owner.ordinal,
                frame=f"r{rpc_id}",
                key=repr(key),
            )
        try:
            await owner.send(Refresh(key=key).to_wire(rpc_id))
            if self._refresh_timeout is None:
                return float(await future)
            try:
                return float(await asyncio.wait_for(future, self._refresh_timeout))
            except asyncio.TimeoutError:
                raise ConnectionResetError(
                    f"refresh of {key!r} timed out after "
                    f"{self._refresh_timeout:g}s (unresponsive feeder)"
                ) from None
        finally:
            owner.pending.pop(rpc_id, None)

    def _complete_refresh_rpc(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> None:
        future = connection.pending.get(frame.get("id"))
        if future is None or future.done():
            return
        if self._connection_fenced(connection):
            # A reconnect superseded this session mid-RPC; its value may
            # predate the resync and must not be trusted as exact.
            self.statistics.stale_epoch_rejections += 1
            future.set_exception(
                ConnectionResetError("refresh answered by a stale feeder epoch")
            )
            return
        if frame.get("ok", True) and "value" in frame:
            future.set_result(frame["value"])
        else:
            future.set_exception(
                ConnectionResetError(
                    f"refresh rejected by feeder: {frame.get('error', 'no value')}"
                )
            )


class CacheServer(BaseFrameServer):
    """An online approximate cache speaking the serving protocol.

    Parameters
    ----------
    policy:
        The precision policy deciding refreshed approximations (shared with
        the offline simulator; e.g. the paper's adaptive policy).
    shards:
        ``1`` hosts a single :class:`ApproximateCache`; larger values front
        a hash-partitioned :class:`ShardedCacheCoordinator` exactly as
        ``SimulationConfig.shards`` does offline.
    capacity / eviction_policy:
        Cache size ``kappa`` and victim-selection override.
    value_refresh_cost / query_refresh_cost:
        ``C_vr`` / ``C_qr`` charged per refresh into the Omega-style cost.
    latency_per_message:
        Optional modelled per-message delay forwarded to the
        :class:`NetworkModel` latency accounting.
    max_inflight_queries / admission_queue_limit / write_queue_limit:
        Admission control and backpressure knobs (see the module docstring).
    refresh_timeout:
        Deadline in seconds on each refresh RPC to a feeder.  Bounds the
        damage of a connected-but-unresponsive feeder: the feeder is fenced
        as down, the query answers degraded from the mirror and releases
        its admission slot instead of wedging forever.  ``None`` disables
        the deadline.
    degraded_slack:
        Safety multiplier on the per-key drift model used to widen answers
        over keys whose owning feeder is down (see the module docstring).
        Must be at least 1; larger values give wider but safer degraded
        intervals.
    durability:
        Optional :class:`~repro.serving.durability.PartitionDurability`.
        When given, construction first recovers the snapshot+WAL state the
        directory holds (replayed through the same apply paths live
        traffic uses, so the recovered server is field-for-field the one
        that crashed), then every state-mutating op is write-ahead logged
        and checkpointed per the durability object's policy.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` this server
        publishes into (defaults to the process registry).  A scrape-time
        collector mirrors the ``/stats`` totals into registry handles —
        the serving hot paths are untouched, so a disabled registry (the
        default) costs nothing and an enabled one costs one branch per
        instrumented site.
    """

    def __init__(
        self,
        policy: PrecisionPolicy,
        *,
        shards: int = 1,
        capacity: Optional[int] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        value_refresh_cost: float = 1.0,
        query_refresh_cost: float = 2.0,
        latency_per_message: float = 0.0,
        max_inflight_queries: int = DEFAULT_MAX_INFLIGHT_QUERIES,
        admission_queue_limit: int = DEFAULT_ADMISSION_QUEUE_LIMIT,
        write_queue_limit: int = DEFAULT_WRITE_QUEUE_LIMIT,
        refresh_timeout: Optional[float] = DEFAULT_REFRESH_TIMEOUT,
        degraded_slack: float = DEFAULT_DEGRADED_SLACK,
        durability: Optional[PartitionDurability] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            write_queue_limit=write_queue_limit, refresh_timeout=refresh_timeout
        )
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if degraded_slack < 1.0:
            raise ValueError("degraded_slack must be at least 1")
        if max_inflight_queries < 1:
            raise ValueError("max_inflight_queries must be at least 1")
        if admission_queue_limit < 0:
            raise ValueError("admission_queue_limit must be non-negative")
        self._policy = policy
        if shards > 1:
            self._cache = ShardedCacheCoordinator(
                shard_count=shards,
                capacity=capacity,
                eviction_policy_factory=(
                    None if eviction_policy is None else (lambda index: eviction_policy)
                ),
            )
        else:
            self._cache = ApproximateCache(
                capacity=capacity, eviction_policy=eviction_policy
            )
        self._network = NetworkModel(
            value_refresh_cost=value_refresh_cost,
            query_refresh_cost=query_refresh_cost,
            latency_per_message=latency_per_message,
        )
        self._sources: Dict[Hashable, DataSource] = {}
        self._owners: Dict[Hashable, _Connection] = {}
        self._down_since: Dict[Hashable, float] = {}
        self._drift: Dict[Hashable, _KeyDrift] = {}
        self._degraded_slack = degraded_slack
        self._clock = 0.0
        self._notify_on_eviction = policy.notifies_source_on_eviction()
        policy_type = type(policy)
        self._policy_observes_writes = (
            policy_type.record_write is not PrecisionPolicy.record_write
        )
        self._policy_observes_reads = (
            policy_type.record_read is not PrecisionPolicy.record_read
            or policy_type.record_constraint is not PrecisionPolicy.record_constraint
        )
        self._query_gate = asyncio.Semaphore(max_inflight_queries)
        self._admission_queue_limit = admission_queue_limit
        self._admission_waiting = 0
        self.statistics = ServingStatistics()
        self._durability = durability
        if durability is not None:
            self._recover_durable_state()
        self._registry = REGISTRY if registry is None else registry
        self._register_metrics()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self):
        """The hosted cache (single or sharded; same surface)."""
        return self._cache

    @property
    def network(self) -> NetworkModel:
        """The cost/latency accounting model."""
        return self._network

    @property
    def sources(self) -> Dict[Hashable, DataSource]:
        """The server-side source mirrors, keyed by value id."""
        return self._sources

    @property
    def clock(self) -> float:
        """The server's logical clock (running maximum of stamped times)."""
        return self._clock

    @property
    def durability(self) -> Optional[PartitionDurability]:
        """The WAL/checkpoint layer, when this server is durable."""
        return self._durability

    async def close(self) -> None:
        await super().close()
        if self._durability is not None:
            self._durability.close()
        self._registry.remove_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Metrics (repro.obs): handles plus the scrape-time collector
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this server publishes into."""
        return self._registry

    def _register_metrics(self) -> None:
        registry = self._registry
        self._metric_counters = {
            field: registry.counter(name, help_text)
            for field, name, help_text in _STATS_COUNTER_METRICS
        }
        self._metric_gauges = {
            field: registry.gauge(name, help_text)
            for field, name, help_text in _STATS_GAUGE_METRICS
        }
        self._query_keys_histogram = registry.histogram(
            "repro_query_keys",
            "Keys touched per bounded query.",
            buckets=SIZE_BUCKETS,
        )
        registry.collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Scrape-time: mirror the cumulative stats into registry handles."""
        stats = self._handle_stats()
        serving = self.statistics
        stats["connections_opened"] = serving.connections_opened
        stats["connections_closed"] = serving.connections_closed
        stats["partition_restarts"] = serving.partition_restarts
        for field, counter in self._metric_counters.items():
            counter.set_total(float(stats[field]))
        for field, gauge in self._metric_gauges.items():
            value = stats[field]
            if value is None:
                value = -1.0
            gauge.set(float(value))

    def _handle_metrics(self) -> Dict[str, Any]:
        return self._registry.snapshot()

    # ------------------------------------------------------------------
    # Durability: write-ahead logging, checkpoints and crash recovery
    # ------------------------------------------------------------------
    def _capture_durable_state(self) -> Dict[str, Any]:
        """Everything a checkpoint must carry to resume mid-stream.

        Connection-bound state (owners, live sessions) is deliberately
        absent: after a crash every connection is gone, so recovery marks
        all keys down and lets feeders (or the gateway's resync) re-adopt
        them through the normal register path.
        """
        return {
            "sources": self._sources,
            "cache": self._cache,
            "drift": self._drift,
            "down_since": dict(self._down_since),
            "clock": self._clock,
            "epochs": dict(self._feeder_epochs),
            "statistics": self.statistics,
            "network": self._network,
            "policy": self._policy,
        }

    def _restore_durable_state(self, state: Dict[str, Any]) -> None:
        self._sources = state["sources"]
        self._cache = state["cache"]
        self._drift = state["drift"]
        self._down_since = dict(state["down_since"])
        self._clock = state["clock"]
        self._feeder_epochs.clear()
        self._feeder_epochs.update(state["epochs"])
        self.statistics = state["statistics"]
        self._network = state["network"]
        self._policy = state["policy"]
        self._notify_on_eviction = self._policy.notifies_source_on_eviction()

    def _recover_durable_state(self) -> None:
        state, records = self._durability.load()
        if state is not None:
            self._restore_durable_state(state)
        owner = _ReplayOwner()
        for record in records:
            self._replay_record(owner, record)
        # Replay ownership is synthetic: every recovered key is down until
        # a live feeder (or the gateway resync) re-registers it.  Keys
        # whose down-stamp survived in the snapshot/WAL keep the earlier
        # (wider, safer) timestamp.
        self._owners.clear()
        for key in self._sources:
            self._down_since.setdefault(key, self._clock)

    def _replay_record(self, owner: _ReplayOwner, record: Dict[str, Any]) -> None:
        """Re-apply one WAL record through the live code paths.

        Replay drives the same methods live traffic does — policy calls,
        cost charges, installs and statistics fire in original order, so
        the policy's RNG stream and every counter reconstruct exactly.
        """
        kind = record["k"]
        try:
            if kind == "u":
                time = self._advance_clock(record["t"])
                self._apply_update(owner, record["key"], record["v"], time)
            elif kind == "ub":
                time = self._advance_clock(record["t"])
                for key, value in record["u"]:
                    self._apply_update(owner, key, value, time)
            elif kind == "snap":
                time = self._advance_clock(record["t"])
                self._snapshot_intervals(list(record["keys"]), record["c"], time)
            elif kind == "qr":
                time = self._advance_clock(record["t"])
                key = record["key"]
                source = self._sources[key]
                source.value = float(record["v"])
                decision = self._policy.on_query_initiated_refresh(
                    key, source.value, time
                )
                cost = self._network.charge_query_refresh()
                self.statistics.query_refreshes += 1
                self.statistics.total_cost += cost
                self._install(key, decision, time)
            elif kind == "reg":
                feeder = record.get("f")
                if feeder is not None:
                    self._feeder_epochs[feeder] = (
                        self._feeder_epochs.get(feeder, 0) + 1
                    )
                if record.get("r"):
                    time = self._advance_clock(record["t"])
                    for key, value in zip(record["keys"], record["vals"]):
                        self._resync_key(owner, key, float(value), time)
                    self.statistics.feeder_resyncs += 1
                else:
                    for key, value in zip(record["keys"], record["vals"]):
                        self._register_key(owner, key, float(value))
            elif kind == "down":
                for key in record["keys"]:
                    self._down_since.setdefault(key, record["t"])
        except ProtocolError:
            # The live apply rejected this op identically (e.g. an
            # out-of-order update) after its record was written; the
            # partial mutations up to the raise match the live run's.
            pass

    def _durable_checkpoint_if_due(self) -> None:
        durability = self._durability
        if durability is not None and durability.checkpoint_due:
            durability.checkpoint(self._capture_durable_state(), self._clock)

    def _handle_recovered(self) -> Dict[str, Any]:
        """The gateway's post-resync handshake: checkpoint and report.

        Taking a checkpoint here folds the recovery itself (replayed WAL
        plus resync registrations) into the snapshot, so the *next* crash
        replays from the recovered state instead of the whole history.
        """
        durability = self._durability
        if durability is not None:
            durability.checkpoint(self._capture_durable_state(), self._clock)
        return {
            "checkpointed": durability is not None,
            "keys": len(self._sources),
            "records_replayed": (
                durability.records_replayed if durability is not None else 0
            ),
        }

    def health(self) -> Dict[str, Any]:
        """Liveness/recovery surface behind the HTTP edge's ``/healthz``."""
        payload: Dict[str, Any] = {
            "ok": True,
            "role": "cache",
            "state": "ok",
            "keys": len(self._sources),
            "keys_down": sum(1 for key in self._sources if self._key_down(key)),
            "clock": self._clock,
        }
        if self._durability is not None:
            payload["durability"] = self._durability.stats_fields(self._clock)
        return payload

    # ------------------------------------------------------------------
    # Connection lifecycle hooks (the base class owns the machinery)
    # ------------------------------------------------------------------
    _TASK_OPS: ClassVar[FrozenSet[str]] = frozenset({"query", "refresh_key"})

    async def _connection_lost(self, connection: _Connection) -> None:
        self._mark_connection_down(connection)

    def _connection_removed(self, connection: _Connection) -> None:
        for key in connection.keys:
            if self._owners.get(key) is connection:
                del self._owners[key]
        connection.keys.clear()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            request = parse_request_fast(frame)
            if request is None:
                reply = error_response(request_id, f"unknown operation {op!r}")
            elif isinstance(request, Update):
                reply = self._handle_update(connection, request)
            elif isinstance(request, UpdateBatch):
                reply = self._handle_update_batch(connection, request)
            elif isinstance(request, QueryRequest):
                reply = await self._handle_query(request)
            elif isinstance(request, RegisterFeeder):
                reply = self._handle_register(connection, request)
            elif isinstance(request, Snapshot):
                reply = self._handle_snapshot(request)
            elif isinstance(request, RefreshKey):
                reply = await self._handle_refresh_key(request)
            elif isinstance(request, StatsRequest):
                reply = self._handle_stats()
            elif isinstance(request, MetricsRequest):
                reply = self._handle_metrics()
            elif isinstance(request, Recovered):
                reply = self._handle_recovered()
            else:
                # ``refresh`` is a server-to-feeder op; a client sending it
                # gets the same reply an unknown op always got.
                reply = error_response(request_id, f"unknown operation {op!r}")
        except ConnectionResetError:
            reply = error_response(request_id, "refresh fetch failed: feeder gone")
        except Exception as exc:
            # Any malformed request must produce an error *reply*, never
            # kill the connection (inline ops) or die as an unobserved task
            # (queries) — a client awaiting the response would hang forever.
            # CancelledError is a BaseException and still propagates.
            reply = error_response(request_id, f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            if isinstance(reply, Response):
                reply = reply.to_wire()
            reply.setdefault("id", request_id)
            reply.setdefault("ok", True)
            await connection.send(reply)

    # ------------------------------------------------------------------
    # Feeder operations
    # ------------------------------------------------------------------
    def _handle_register(
        self, connection: _Connection, request: RegisterFeeder
    ) -> RegisterAck:
        epoch: Optional[int] = None
        refreshes: Optional[int] = None
        if request.feeder is not None:
            # Mint the next epoch for this feeder identity: any previous
            # session holding it is fenced off from now on.
            epoch = self._feeder_epochs.get(request.feeder, 0) + 1
            self._feeder_epochs[request.feeder] = epoch
            connection.feeder_id = request.feeder
            connection.epoch = epoch
        if request.resync:
            time = self._advance_clock(request.time)
            if self._durability is not None:
                self._durability.append(
                    {
                        "k": "reg",
                        "f": request.feeder,
                        "r": 1,
                        "e": epoch,
                        "t": time,
                        "keys": list(request.keys),
                        "vals": [float(value) for value in request.values],
                    }
                )
            refreshes = 0
            for key, value in zip(request.keys, request.values):
                if self._resync_key(connection, key, float(value), time):
                    refreshes += 1
            self.statistics.feeder_resyncs += 1
        else:
            if self._durability is not None:
                self._durability.append(
                    {
                        "k": "reg",
                        "f": request.feeder,
                        "r": 0,
                        "e": epoch,
                        "t": None,
                        "keys": list(request.keys),
                        "vals": [float(value) for value in request.values],
                    }
                )
            for key, value in zip(request.keys, request.values):
                self._register_key(connection, key, float(value))
        self._durable_checkpoint_if_due()
        return RegisterAck(
            registered=len(request.keys), epoch=epoch, refreshes=refreshes
        )

    def _register_key(
        self, connection: _Connection, key: Hashable, value: float
    ) -> None:
        source = self._sources.get(key)
        if source is None:
            self._sources[key] = DataSource(key=key, value=value)
        else:
            # Re-registration hands the key a fresh lifecycle: the new
            # feeder's initial value replaces any stale mirror state and the
            # previous owner's cached approximation is dropped, so a second
            # replay against a persistent server starts from a clean slate
            # instead of tripping the update time-order check.
            source.value = float(value)
            source.update_count = 0
            source.last_update_time = 0.0
            source.last_refresh_time = 0.0
            source.forget_publication()
            self._cache.invalidate(key)
            self._drift.pop(key, None)
        self._owners[key] = connection
        connection.keys.add(key)
        self._down_since.pop(key, None)

    def _resync_key(
        self, connection: _Connection, key: Hashable, value: float, time: float
    ) -> bool:
        """Re-adopt ``key`` after a reconnect *without* resetting its state.

        The mirror keeps its update history, published interval and cached
        approximation; only a value it missed while the feeder was away is
        folded in, through the normal update path — so a missed update that
        escaped the published interval triggers exactly the value-initiated
        refresh it would have caused live, mirroring the offline
        ``_install`` path.  A resync with unchanged values perturbs
        nothing, which is what keeps a drop+reconnect replay bit-identical
        to the offline run.  Returns whether folding the value in fired a
        refresh.
        """
        if key not in self._sources:
            self._register_key(connection, key, value)
            return False
        self._owners[key] = connection
        connection.keys.add(key)
        self._down_since.pop(key, None)
        return self._apply_update(connection, key, value, time)

    def _handle_update(self, connection: _Connection, request: Update) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        time = self._advance_clock(request.time)
        if self._durability is not None:
            self._durability.append(
                {
                    "k": "u",
                    "key": request.key,
                    "v": request.value,
                    "e": connection.epoch,
                    "t": time,
                }
            )
        refreshed = self._apply_update(connection, request.key, request.value, time)
        self._durable_checkpoint_if_due()
        return UpdateAck(refresh=refreshed)

    def _handle_update_batch(
        self, connection: _Connection, request: UpdateBatch
    ) -> Any:
        if self._connection_fenced(connection):
            return self._reject_stale()
        time = self._advance_clock(request.time)
        if self._durability is not None:
            self._durability.append(
                {
                    "k": "ub",
                    "u": [[key, value] for key, value in request.updates],
                    "e": connection.epoch,
                    "t": time,
                }
            )
        refreshes = 0
        for key, value in request.updates:
            if self._apply_update(connection, key, value, time):
                refreshes += 1
        self._durable_checkpoint_if_due()
        return UpdateBatchAck(refreshes=refreshes)

    def _apply_update(
        self, connection: _Connection, key: Hashable, value: float, time: float
    ) -> bool:
        """Mirror of the simulator's ``_apply_update`` body.

        Returns whether the update triggered a value-initiated refresh.
        Unknown keys are registered implicitly to the sending connection
        (the first update then behaves like the simulator's initial value:
        no interval is published yet, so no refresh can fire).
        """
        source = self._sources.get(key)
        if source is None:
            self._register_key(connection, key, value)
            self.statistics.updates_applied += 1
            return False
        if value == source.value:
            # Not a modification (idle stretches in trace replays): nothing
            # changes, no write is recorded, no refresh can be needed.
            self.statistics.updates_ignored += 1
            return False
        if time < source.last_update_time:
            raise ProtocolError("updates must arrive in non-decreasing time order")
        step = abs(value - source.value)
        gap = time - source.last_update_time if source.update_count > 0 else None
        source.value = value
        source.update_count += 1
        source.last_update_time = time
        self.statistics.updates_applied += 1
        drift = self._drift.get(key)
        if drift is None:
            drift = self._drift[key] = _KeyDrift()
        drift.observe(step, gap)
        if self._policy_observes_writes:
            self._policy.record_write(key, time)
        interval = source.published_interval
        if interval is not None and not (interval.low <= value <= interval.high):
            decision = self._policy.on_value_initiated_refresh(key, value, time)
            cost = self._network.charge_value_refresh()
            self.statistics.value_refreshes += 1
            self.statistics.total_cost += cost
            self._install(key, decision, time)
            return True
        return False

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    async def _handle_query(self, request: QueryRequest) -> Any:
        if self._query_gate.locked():
            if self._admission_waiting >= self._admission_queue_limit:
                self.statistics.queries_rejected += 1
                return {
                    "ok": False,
                    "error": "overloaded: admission queue full",
                    "overloaded": True,
                }
            self._admission_waiting += 1
            try:
                await self._query_gate.acquire()
            finally:
                self._admission_waiting -= 1
        else:
            await self._query_gate.acquire()
        try:
            return await self._execute_query(request)
        finally:
            self._query_gate.release()

    async def _execute_query(self, request: QueryRequest) -> BoundedAnswer:
        keys = list(request.keys)
        if not keys:
            raise ProtocolError("a query must touch at least one key")
        self._query_keys_histogram.observe(float(len(keys)))
        kind = request.aggregate
        constraint = request.constraint
        time = self._advance_clock(request.time)
        if self._durability is not None:
            # The snapshot phase mutates state too — hit/miss statistics,
            # access times, the policy's read observers — so it is logged
            # like any other op; the refreshes it triggers log themselves.
            self._durability.append(
                {"k": "snap", "keys": keys, "c": constraint, "t": time}
            )
        intervals, hits = self._snapshot_intervals(keys, constraint, time)

        refreshed: List[Hashable] = []

        async def fetch_exact(key: Hashable) -> float:
            value = await self._query_initiated_refresh(key, time)
            refreshed.append(key)
            intervals[key] = Interval.exact(value)
            return value

        # A refresh RPC can race its feeder's death.  When one dies
        # mid-selection the failed key joins the degraded set and the
        # selection re-runs over the updated snapshot — refreshes that did
        # complete keep their exact intervals, so no work repeats and no
        # hit double-counts.  Each retry fences at least the lost feeder's
        # keys, so the loop terminates within ``len(keys)`` passes.
        while True:
            degraded = [key for key in keys if self._key_down(key)]
            try:
                bound = await execute_partitioned_query(
                    kind,
                    keys,
                    intervals,
                    constraint,
                    degraded,
                    lambda key, snapshot: self._degraded_interval(
                        key, snapshot, time
                    ),
                    fetch_exact,
                )
                break
            except _FeederLost:
                continue
        self.statistics.queries_served += 1
        if degraded:
            self.statistics.queries_degraded += 1
        self._durable_checkpoint_if_due()
        return BoundedAnswer(
            low=bound.low,
            high=bound.high,
            refreshed=tuple(refreshed),
            hits=hits,
            misses=len(keys) - hits,
            degraded=bool(degraded),
            degraded_keys=tuple(degraded),
        )

    def _snapshot_intervals(
        self, keys: List[Hashable], constraint: float, time: float
    ) -> "tuple[Dict[Hashable, Interval], int]":
        """The query's snapshot phase: cached intervals plus the hit count.

        These lookups are the only cache accesses counted in the hit rate,
        exactly as the simulator's ``_run_query`` counts them — and exactly
        once per query, whether the selection then runs locally
        (``query``) or at the gateway (``snapshot``).
        """
        cache_get = self._cache.get
        intervals: Dict[Hashable, Interval] = {}
        hits = 0
        if self._policy_observes_reads:
            record_read = self._policy.record_read
            record_constraint = self._policy.record_constraint
            for key in keys:
                entry = cache_get(key, time)
                if entry is not None:
                    hits += 1
                intervals[key] = entry.interval if entry is not None else UNBOUNDED
                record_read(key, time, served_from_cache=entry is not None)
                record_constraint(key, constraint, time)
        else:
            for key in keys:
                entry = cache_get(key, time)
                if entry is not None:
                    hits += 1
                intervals[key] = entry.interval if entry is not None else UNBOUNDED
        return intervals, hits

    # ------------------------------------------------------------------
    # Gateway internals: partition-side snapshot and single-key refresh
    # ------------------------------------------------------------------
    def _handle_snapshot(self, request: Snapshot) -> SnapshotReply:
        """Snapshot phase of a gateway-routed query, on this partition's keys.

        Counts hits and feeds the policy's read observers exactly as a
        local query over the same keys would; the *selection* then runs at
        the gateway over every partition's snapshot, so the global refresh
        choice is identical to a single server holding all keys.
        """
        keys = list(request.keys)
        if not keys:
            raise ProtocolError("a snapshot must touch at least one key")
        time = self._advance_clock(request.time)
        if self._durability is not None:
            self._durability.append(
                {"k": "snap", "keys": keys, "c": request.constraint, "t": time}
            )
        intervals, hits = self._snapshot_intervals(keys, request.constraint, time)
        self._durable_checkpoint_if_due()
        down = [index for index, key in enumerate(keys) if self._key_down(key)]
        down_intervals = [
            self._degraded_interval(keys[index], intervals[keys[index]], time)
            for index in down
        ]
        return SnapshotReply(
            intervals=tuple(
                (intervals[key].low, intervals[key].high) for key in keys
            ),
            hits=hits,
            down=tuple(down),
            down_intervals=tuple(
                (interval.low, interval.high) for interval in down_intervals
            ),
        )

    async def _handle_refresh_key(self, request: RefreshKey) -> Dict[str, Any]:
        """One query-initiated refresh on behalf of the gateway's selection.

        Success returns ``{"value": v}`` (the exact value, now installed).
        A down owner returns ``{"down": true, "low": .., "high": ..}`` —
        the honest degraded interval — so the gateway can fold the key
        into its degraded set and re-run its selection, mirroring the
        local ``_FeederLost`` retry loop.
        """
        key = request.key
        if key not in self._sources:
            raise ProtocolError(f"refresh_key of unknown key {key!r}")
        time = self._advance_clock(request.time)
        try:
            value = await self._query_initiated_refresh(key, time)
        except _FeederLost:
            snapshot = self._current_interval(key, time)
            interval = self._degraded_interval(key, snapshot, time)
            return {"down": True, "low": interval.low, "high": interval.high}
        self._durable_checkpoint_if_due()
        return {"value": value}

    def _current_interval(self, key: Hashable, time: float) -> Interval:
        """The key's cached interval *without* touching hit statistics."""
        return self._cache.approximation(key, time, record_stats=False)

    def _key_down(self, key: Hashable) -> bool:
        """Whether a *registered* key currently has no live owner.

        Unknown keys are not "down" — they behave exactly as before this
        layer existed (unbounded snapshot; a selected refresh errors).
        """
        if key not in self._sources:
            return False
        owner = self._owners.get(key)
        return owner is None or owner.closing

    def _degraded_interval(
        self, key: Hashable, snapshot: Interval, time: float
    ) -> Interval:
        """The honest read-only bound for a key whose owner is down."""
        if snapshot.is_unbounded:
            snapshot = Interval.exact(self._sources[key].value)
        allowance = self._degraded_allowance(key, time)
        if allowance > 0.0:
            return Interval(snapshot.low - allowance, snapshot.high + allowance)
        return snapshot

    def _degraded_allowance(self, key: Hashable, time: float) -> float:
        """Width padding covering a down key's unseen drift.

        The same growth-over-staleness idea as
        :class:`~repro.intervals.staleness.StalenessBound`, transplanted to
        value space: while its owner is away a key is assumed to keep
        stepping no faster than the largest update step the mirror ever
        observed, no more often than its smallest observed update gap,
        padded by ``degraded_slack``.  A key that never changed is assumed
        constant (allowance 0 — which also keeps the pre-existing
        mirror-fallback tests exact).  No finite bound survives an
        adversarial source; the seeded chaos suite pins containment for the
        committed plans.
        """
        down_at = self._down_since.get(key)
        if down_at is None:
            return 0.0
        drift = self._drift.get(key)
        if drift is None or drift.max_step <= 0.0:
            return 0.0
        elapsed = time - down_at
        if elapsed <= 0.0:
            return 0.0
        gap = drift.min_gap if math.isfinite(drift.min_gap) else 1.0
        missed = math.ceil(elapsed / gap)
        return self._degraded_slack * missed * drift.max_step

    def _mark_connection_down(self, connection: _Connection) -> None:
        """Stamp when this connection's keys lost their owner (idempotent)."""
        stamped: List[Hashable] = []
        for key in connection.keys:
            if self._owners.get(key) is connection and key not in self._down_since:
                self._down_since[key] = self._clock
                stamped.append(key)
        if stamped and self._durability is not None:
            # Down-stamps shape degraded-answer widths, so they are state:
            # losing them across a crash would narrow (i.e. break) the
            # containment bound of keys already down before the crash.
            self._durability.append({"k": "down", "keys": stamped, "t": self._clock})

    async def _query_initiated_refresh(self, key: Hashable, time: float) -> float:
        """Fetch the exact value of ``key``: the refresh RPC to its feeder.

        Raises the internal :class:`_FeederLost` retry signal when the
        owner is gone or dies mid-RPC — the caller's next selection pass
        treats the key as degraded (widened mirror answer) instead of
        surfacing ``ConnectionResetError`` to the client.
        """
        source = self._sources[key]
        owner = self._owners.get(key)
        if owner is None or owner.closing:
            raise _FeederLost(key)
        try:
            value = await self._refresh_rpc(owner, key)
        except ConnectionResetError:
            # The feeder died with the refresh in flight.  Count the loss,
            # fence the connection so this query's retry pass (and every
            # later query) takes the degraded mirror path, and convert to
            # the retry signal — the client sees a widened answer, never a
            # hard error.
            self.statistics.refreshes_failed += 1
            owner.closing = True
            self._mark_connection_down(owner)
            raise _FeederLost(key) from None
        if self._durability is not None:
            # The fetched exact value cannot be re-fetched at replay (the
            # feeder RPC is gone), so the record carries it; the policy
            # decision and install replay through the same code below.
            self._durability.append(
                {"k": "qr", "key": key, "v": float(value), "t": time}
            )
        source.value = float(value)
        decision = self._policy.on_query_initiated_refresh(key, source.value, time)
        cost = self._network.charge_query_refresh()
        self.statistics.query_refreshes += 1
        self.statistics.total_cost += cost
        self._install(key, decision, time)
        return source.value

    # ------------------------------------------------------------------
    # Shared installation path (mirror of the simulator's ``_install``)
    # ------------------------------------------------------------------
    def _install(self, key: Hashable, decision, time: float) -> None:
        source = self._sources[key]
        if self._notify_on_eviction and decision.interval.is_unbounded:
            self._cache.invalidate(key)
            source.forget_publication()
        else:
            source.publish(decision.interval, decision.original_width, time)
            evicted = self._cache.put(
                key, decision.interval, decision.original_width, time
            )
            if evicted and self._notify_on_eviction:
                for evicted_key in evicted:
                    self._sources[evicted_key].forget_publication()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    #: WAL/checkpoint counter defaults, so the stats surface is uniform
    #: whether or not the server is durable (the gateway sums them).
    _DURABILITY_STATS_OFF: ClassVar[Dict[str, Any]] = {
        "durable": False,
        "wal_records": 0,
        "wal_bytes": 0,
        "wal_records_replayed": 0,
        "wal_torn_tails": 0,
        "checkpoints": 0,
        "snapshot_restored": False,
        "last_checkpoint_age": None,
    }

    def _handle_stats(self) -> Dict[str, Any]:
        cache_stats = self._cache.statistics
        serving = self.statistics
        if self._durability is not None:
            durability_stats = self._durability.stats_fields(self._clock)
        else:
            durability_stats = dict(self._DURABILITY_STATS_OFF)
        return {
            **durability_stats,
            "clock": self._clock,
            "keys": len(self._sources),
            "cached_entries": len(self._cache),
            "connections": len(self._connections),
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
            "insertions": cache_stats.insertions,
            "evictions": cache_stats.evictions,
            "shard_hit_rates": list(self._cache.shard_hit_rates()),
            "updates_applied": serving.updates_applied,
            "updates_ignored": serving.updates_ignored,
            "value_refreshes": serving.value_refreshes,
            "query_refreshes": serving.query_refreshes,
            "queries_served": serving.queries_served,
            "queries_rejected": serving.queries_rejected,
            "refresh_rpcs": serving.refresh_rpcs,
            "refreshes_failed": serving.refreshes_failed,
            "queries_degraded": serving.queries_degraded,
            "stale_epoch_rejections": serving.stale_epoch_rejections,
            "feeder_resyncs": serving.feeder_resyncs,
            "keys_down": sum(1 for key in self._sources if self._key_down(key)),
            "total_cost": serving.total_cost,
            "messages_sent": self._network.messages_sent,
            "total_latency": self._network.total_latency,
        }

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def _advance_clock(self, time: Any) -> float:
        """Advance the logical clock to ``time`` (never backwards)."""
        if time is not None:
            stamped = float(time)
            if stamped > self._clock:
                self._clock = stamped
        return self._clock
