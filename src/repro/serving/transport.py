"""Frame transports: the same protocol over TCP streams or in-process queues.

The server and every client speak through a *frame transport* — an object
with ``read_frame`` / ``write_frame`` / ``close``.  Two implementations
exist:

* :class:`StreamFrameTransport` wraps an asyncio ``(StreamReader,
  StreamWriter)`` pair, i.e. a real TCP connection (``repro serve``).
* :class:`LoopbackFrameTransport` moves *encoded* frames through in-process
  queues, so tests, CI and the experiment harness run server plus clients in
  one process with no sockets, no ports and no flakiness — while still
  exercising the full encode/decode path of :mod:`repro.serving.protocol`
  on every message.

Both directions of a loopback pair are bounded (a semaphore meters the
frames in flight), so a slow consumer back-pressures its producer exactly as
a full TCP send buffer would — while the EOF sentinel queued by ``close``
bypasses the bound, because shutdown must never block behind data.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.serving.protocol import HEADER, decode_length, decode_payload, encode_frame

#: Sentinel queued by ``close`` so a blocked ``read_frame`` wakes up as EOF.
_EOF = None

#: A well-framed but undecodable payload, used by ``write_corrupt_frame`` —
#: the fault-injection hook (:mod:`repro.serving.faults`) that makes the
#: *peer's* reader take its ``ProtocolError`` path, as a frame mangled in
#: flight would.
_CORRUPT_FRAME = HEADER.pack(2) + b"\xff\xfe"

#: Encoded frames a loopback direction buffers before the writer blocks.
DEFAULT_LOOPBACK_BUFFER = 128


class StreamFrameTransport:
    """Frames over an asyncio stream pair (one TCP connection)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` on a clean EOF at a frame boundary."""
        try:
            header = await self._reader.readexactly(4)
            payload = await self._reader.readexactly(decode_length(header))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        return decode_payload(payload)

    async def write_frame(self, message: Dict[str, Any]) -> None:
        """Write one message and drain (the stream's own backpressure)."""
        self._writer.write(encode_frame(message))
        await self._writer.drain()

    async def write_corrupt_frame(self) -> None:
        """Send an undecodable frame (fault injection: a truncated write)."""
        self._writer.write(_CORRUPT_FRAME)
        await self._writer.drain()

    def close(self) -> None:
        """Start closing the underlying stream."""
        self._writer.close()

    async def wait_closed(self) -> None:
        """Wait for the underlying stream to finish closing."""
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class _LoopbackDirection:
    """One direction of a loopback pair: an unbounded queue plus a meter.

    The queue itself is unbounded so that the EOF sentinel can always be
    enqueued synchronously; data frames acquire a semaphore slot before
    entering and release it when consumed, giving the bounded-buffer
    backpressure of a real socket.
    """

    def __init__(self, buffer: int) -> None:
        self.frames: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.slots = asyncio.Semaphore(buffer)
        self.buffer = buffer
        self.closed = False


class LoopbackFrameTransport:
    """Frames over bounded in-process queues (one end of a loopback pair)."""

    def __init__(
        self, inbound: _LoopbackDirection, outbound: _LoopbackDirection
    ) -> None:
        self._inbound = inbound
        self._outbound = outbound
        self._closed = False

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` once the peer closed."""
        data = await self._inbound.frames.get()
        if data is _EOF:
            # Keep the EOF visible to any further read.
            self._inbound.frames.put_nowait(_EOF)
            return None
        self._inbound.slots.release()
        return decode_payload(data[4:])

    async def write_frame(self, message: Dict[str, Any]) -> None:
        """Write one encoded frame; blocks while the peer's buffer is full."""
        await self._write_bytes(encode_frame(message))

    async def write_corrupt_frame(self) -> None:
        """Send an undecodable frame (fault injection: a truncated write)."""
        await self._write_bytes(_CORRUPT_FRAME)

    async def _write_bytes(self, frame: bytes) -> None:
        await self._outbound.slots.acquire()
        if self._outbound.closed:
            self._outbound.slots.release()
            raise ConnectionResetError("loopback transport is closed")
        self._outbound.frames.put_nowait(frame)

    def close(self) -> None:
        """Close both directions: EOF to readers, ConnectionReset to writers.

        Mirrors a socket close as seen from either end — local and peer
        reads wake up with EOF, and writers blocked on a full buffer (on
        *either* end) are released to observe the close and raise instead of
        waiting for a reader that will never come.
        """
        if not self._closed:
            self._closed = True
            for direction in (self._outbound, self._inbound):
                direction.closed = True
                direction.frames.put_nowait(_EOF)
                for _ in range(direction.buffer):
                    direction.slots.release()

    async def wait_closed(self) -> None:
        """Loopback close is immediate; nothing to wait for."""


def loopback_pair(
    buffer: int = DEFAULT_LOOPBACK_BUFFER,
) -> Tuple[LoopbackFrameTransport, LoopbackFrameTransport]:
    """Create a connected (client end, server end) loopback transport pair."""
    if buffer < 1:
        raise ValueError("loopback buffer must hold at least one frame")
    client_to_server = _LoopbackDirection(buffer)
    server_to_client = _LoopbackDirection(buffer)
    return (
        LoopbackFrameTransport(inbound=server_to_client, outbound=client_to_server),
        LoopbackFrameTransport(inbound=client_to_server, outbound=server_to_client),
    )
