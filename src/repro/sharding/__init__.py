"""Sharded multi-cache topology: hash-partitioned shards behind one API.

See :mod:`repro.sharding.coordinator` for the coordinator,
:mod:`repro.sharding.partition` for the deterministic partitioning helpers
and :mod:`repro.sharding.aggregates` for cross-shard bounded aggregates.
"""

from repro.sharding.aggregates import (
    execute_sharded_query,
    merge_aggregate_bounds,
    shard_aggregate_bound,
)
from repro.sharding.coordinator import ShardedCacheCoordinator
from repro.sharding.partition import (
    partition_keys,
    shard_index,
    split_capacity,
    stable_key_hash,
)

__all__ = [
    "ShardedCacheCoordinator",
    "execute_sharded_query",
    "merge_aggregate_bounds",
    "partition_keys",
    "shard_aggregate_bound",
    "shard_index",
    "split_capacity",
    "stable_key_hash",
]
