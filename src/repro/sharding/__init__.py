"""Sharded multi-cache topology: hash-partitioned shards behind one API.

See :mod:`repro.sharding.coordinator` for the coordinator,
:mod:`repro.sharding.partition` for the deterministic partitioning helpers,
:mod:`repro.sharding.aggregates` for cross-shard bounded aggregates and
:mod:`repro.sharding.workers` for the concurrent shard-worker executor.
"""

from repro.sharding.aggregates import (
    execute_sharded_query,
    merge_aggregate_bounds,
    shard_aggregate_bound,
)
from repro.sharding.coordinator import (
    ShardedCacheCoordinator,
    merge_cache_statistics,
)
from repro.sharding.partition import (
    partition_keys,
    shard_index,
    split_capacity,
    stable_key_hash,
)
from repro.sharding.workers import run_concurrent_shards

__all__ = [
    "ShardedCacheCoordinator",
    "merge_cache_statistics",
    "run_concurrent_shards",
    "execute_sharded_query",
    "merge_aggregate_bounds",
    "partition_keys",
    "shard_aggregate_bound",
    "shard_index",
    "split_capacity",
    "stable_key_hash",
]
