"""Cross-shard bounded aggregates.

A bounded aggregate over keys that span several cache shards decomposes into
per-shard partial bounds plus one merge step, because SUM, MAX, MIN and AVG
are all decomposable aggregates:

* ``SUM``  — the global bound is the interval sum of the partial SUM bounds.
* ``MAX``  — ``[max of partial lows, max of partial highs]``.
* ``MIN``  — ``[min of partial lows, min of partial highs]``.
* ``AVG``  — partials are per-shard *SUM* bounds; the merge divides their
  interval sum by the total contributing count.

The merge is O(S) for S shards, on top of the per-shard bound costs — the
partial bounds are tiny compared to shipping every per-key interval to one
node, which is the point of pushing aggregation down to the shards.

Refreshing works through the existing
:mod:`repro.queries.refresh_selection` machinery unchanged:
:func:`execute_sharded_query` gathers the per-key intervals from the owning
shards, lets ``execute_bounded_query`` pick the refresh set exactly as it
would against a single cache, and routes every fetched exact value back to
the shard that owns the key.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.intervals.interval import Interval
from repro.queries.aggregates import (
    AggregateKind,
    aggregate_bound,
    max_bound,
    min_bound,
    sum_bound,
)
from repro.queries.refresh_selection import QueryExecution, execute_bounded_query

FetchExact = Callable[[Hashable], float]


def shard_aggregate_bound(
    kind: AggregateKind,
    shard,
    keys: Sequence[Hashable],
    time: Optional[float] = None,
    record_stats: bool = False,
) -> Interval:
    """Bound one shard's contribution to an aggregate over ``keys``.

    ``shard`` is the owning :class:`~repro.caching.cache.ApproximateCache`;
    missing keys contribute the unbounded interval, as in a single cache.
    For ``AVG`` the partial is the shard's **SUM** bound — the division by
    the count happens once, in :func:`merge_aggregate_bounds`, because the
    mean of per-shard means is not the global mean.
    """
    if not keys:
        raise ValueError("a shard partial bound requires at least one key")
    intervals = [shard.approximation(key, time, record_stats) for key in keys]
    if kind is AggregateKind.AVG:
        return sum_bound(intervals)
    return aggregate_bound(kind, intervals)


def merge_aggregate_bounds(
    kind: AggregateKind,
    partials: Sequence[Interval],
    counts: Optional[Sequence[int]] = None,
) -> Interval:
    """Merge per-shard partial bounds into the global aggregate bound.

    ``counts`` gives the number of contributing values per partial and is
    required for ``AVG`` (whose partials are SUM bounds).  The merge adds
    partials in the given (shard-grouped) order; interval addition of SUM
    partials reassociates float additions, so a merged SUM bound can differ
    from a single flat summation by float rounding — experiment paths that
    must stay byte-identical therefore aggregate over the flat per-key
    intervals and use this merge only for genuinely distributed answers.
    """
    if not partials:
        raise ValueError("merging aggregate bounds requires at least one partial")
    if kind is AggregateKind.SUM:
        return sum_bound(list(partials))
    if kind is AggregateKind.MAX:
        return max_bound(list(partials))
    if kind is AggregateKind.MIN:
        return min_bound(list(partials))
    if kind is AggregateKind.AVG:
        if counts is None:
            raise ValueError("AVG merges need the per-partial contribution counts")
        if len(counts) != len(partials):
            raise ValueError("counts must parallel the partial bounds")
        total = sum(counts)
        if total < 1:
            raise ValueError("AVG merges need at least one contributing value")
        return sum_bound(list(partials)).scale(1.0 / total)
    raise ValueError(f"unsupported aggregate kind: {kind!r}")


def execute_sharded_query(
    coordinator,
    kind: AggregateKind,
    keys: Sequence[Hashable],
    constraint: float,
    fetch_exact: FetchExact,
    time: Optional[float] = None,
    record_stats: bool = True,
) -> QueryExecution:
    """Execute a bounded aggregate against a sharded cache.

    The per-key intervals are gathered from the owning shards in the query's
    key order, so the refresh-selection machinery sees exactly the mapping a
    single cache would produce and makes identical refresh choices.  Each
    refresh routes to the owning shard: the fetched exact value is installed
    there as a zero-width interval (timestamped ``time``), mirroring what a
    query-initiated refresh does in the simulator.

    ``fetch_exact`` performs the actual source read and returns the exact
    value; cost accounting stays with the caller.
    """
    if not keys:
        raise ValueError("a query must touch at least one key")
    install_time = 0.0 if time is None else time
    intervals = {
        key: coordinator.approximation(key, time, record_stats) for key in keys
    }

    def routed_fetch(key: Hashable) -> float:
        exact = fetch_exact(key)
        coordinator.put(key, Interval.exact(exact), 0.0, install_time)
        return exact

    return execute_bounded_query(kind, intervals, constraint, routed_fetch)
