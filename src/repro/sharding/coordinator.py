"""A coordinator fronting several hash-partitioned ``ApproximateCache`` shards.

The paper's cache is a single bounded store; the production-scale topology
splits the key space over N shards so that each shard's eviction heap, entry
dict and statistics stay small and independent.  The coordinator exposes the
same ``get`` / ``put`` / ``invalidate`` surface as one ``ApproximateCache``,
so :class:`~repro.simulation.simulator.CacheSimulation` (and any other
caller) can swap between the two without code changes:

* **Partitioning** is deterministic (:func:`~repro.sharding.partition.stable_key_hash`),
  so a key always lives on the same shard in every process and run.
* **Eviction budgets** are per shard: the total capacity is split across the
  shards (:func:`~repro.sharding.partition.split_capacity`) and each shard
  runs its own widest-first eviction heap over its budget, reusing
  :meth:`~repro.caching.eviction.EvictionPolicy.index_priority`.
* **Statistics** are kept per shard and merged on demand, so per-shard hit
  rates (and their skew, the load-balance signal) stay observable.

With an unbounded capacity the coordinator is behaviourally identical to a
single cache — no evictions can occur and every per-key operation is routed
to exactly one shard — which is what lets ``--shards 1`` and sharded runs of
eviction-free experiments produce byte-identical tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.caching.cache import ApproximateCache, CacheEntry, CacheStatistics
from repro.caching.eviction import EvictionPolicy
from repro.intervals.interval import Interval
from repro.queries.aggregates import AggregateKind
from repro.sharding.aggregates import merge_aggregate_bounds, shard_aggregate_bound
from repro.sharding.partition import partition_keys, split_capacity, stable_key_hash

#: Builds the eviction policy for one shard (receives the shard index).
#: Returning ``None`` gives the shard the cache's default widest-first rule.
EvictionPolicyFactory = Callable[[int], Optional[EvictionPolicy]]


def merge_cache_statistics(
    statistics: Iterable[CacheStatistics],
) -> CacheStatistics:
    """Fold per-shard counters into one fresh :class:`CacheStatistics`.

    The shared rollup behind :attr:`ShardedCacheCoordinator.statistics` and
    the concurrent shard-worker merge (:mod:`repro.sharding.workers`): all
    counters are additive, so the merged snapshot is identical whether the
    shards lived in one process or many.
    """
    merged = CacheStatistics()
    for stats in statistics:
        merged.insertions += stats.insertions
        merged.evictions += stats.evictions
        merged.hits += stats.hits
        merged.misses += stats.misses
        merged.rejected_insertions += stats.rejected_insertions
    return merged


class ShardedCacheCoordinator:
    """Hash-partitioned multi-cache with a single-cache compatible API.

    Parameters
    ----------
    shard_count:
        Number of ``ApproximateCache`` shards (at least 1).
    capacity:
        Total capacity across all shards (``None`` = unbounded), split into
        per-shard eviction budgets by :func:`split_capacity`.
    eviction_policy_factory:
        Optional per-shard eviction policy builder.  A factory (rather than
        one shared instance) keeps policies with internal state — random
        eviction's RNG, externally scored eviction — independent per shard;
        stateless policies may safely return the same instance every call.
    """

    def __init__(
        self,
        shard_count: int,
        capacity: Optional[int] = None,
        eviction_policy_factory: Optional[EvictionPolicyFactory] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        budgets = split_capacity(capacity, shard_count)
        self._shard_count = shard_count
        self._capacity = capacity
        self._shards: Tuple[ApproximateCache, ...] = tuple(
            ApproximateCache(
                capacity=budget,
                eviction_policy=(
                    eviction_policy_factory(index)
                    if eviction_policy_factory is not None
                    else None
                ),
            )
            for index, budget in enumerate(budgets)
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards behind the coordinator."""
        return self._shard_count

    @property
    def shards(self) -> Tuple[ApproximateCache, ...]:
        """The shard caches, in shard-index order."""
        return self._shards

    @property
    def capacity(self) -> Optional[int]:
        """Total capacity across shards (``None`` = unbounded)."""
        return self._capacity

    def shard_of(self, key: Hashable) -> int:
        """Return the index of the shard owning ``key``."""
        return stable_key_hash(key) % self._shard_count

    def shard_for(self, key: Hashable) -> ApproximateCache:
        """Return the shard cache owning ``key``."""
        return self._shards[stable_key_hash(key) % self._shard_count]

    # ------------------------------------------------------------------
    # Single-cache compatible surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.shard_for(key)

    def keys(self) -> List[Hashable]:
        """All cached keys, shard by shard (insertion order within a shard)."""
        result: List[Hashable] = []
        for shard in self._shards:
            result.extend(shard.keys())
        return result

    def entries(self) -> List[CacheEntry]:
        """All cached entries, shard by shard (insertion order within a shard)."""
        result: List[CacheEntry] = []
        for shard in self._shards:
            result.extend(shard.entries())
        return result

    def get(
        self,
        key: Hashable,
        time: Optional[float] = None,
        record_stats: bool = True,
    ) -> Optional[CacheEntry]:
        """Route a lookup to the owning shard (see ``ApproximateCache.get``)."""
        return self._shards[stable_key_hash(key) % self._shard_count].get(
            key, time, record_stats
        )

    def approximation(
        self,
        key: Hashable,
        time: Optional[float] = None,
        record_stats: bool = True,
    ) -> Interval:
        """Cached interval for ``key`` from the owning shard (or ``UNBOUNDED``)."""
        return self.shard_for(key).approximation(key, time, record_stats)

    def put(
        self,
        key: Hashable,
        interval: Interval,
        original_width: float,
        time: float,
    ) -> List[Hashable]:
        """Install on the owning shard; returns that shard's evicted keys.

        Eviction is a purely shard-local decision: an insert can only push
        out entries sharing its shard, which is what bounds the victim
        search to the shard's own heap.
        """
        return self.shard_for(key).put(key, interval, original_width, time)

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from its owning shard; True if it was present."""
        return self.shard_for(key).invalidate(key)

    def clear(self) -> None:
        """Clear every shard (statistics are preserved, as for a single cache)."""
        for shard in self._shards:
            shard.clear()

    def total_width(self) -> float:
        """Sum of cached widths across shards (``inf`` if any is unbounded)."""
        return sum(shard.total_width() for shard in self._shards)

    def widths(self) -> Dict[Hashable, float]:
        """Mapping of key to cached width, merged across shards."""
        result: Dict[Hashable, float] = {}
        for shard in self._shards:
            result.update(shard.widths())
        return result

    # ------------------------------------------------------------------
    # Statistics rollups
    # ------------------------------------------------------------------
    @property
    def statistics(self) -> CacheStatistics:
        """Counters merged across shards (a fresh snapshot object)."""
        return merge_cache_statistics(shard.statistics for shard in self._shards)

    @property
    def shard_statistics(self) -> Tuple[CacheStatistics, ...]:
        """The live per-shard statistics objects, in shard-index order."""
        return tuple(shard.statistics for shard in self._shards)

    def shard_hit_rates(self) -> Tuple[float, ...]:
        """Per-shard workload hit rates, in shard-index order.

        Their spread is the load-balance signal; see
        :attr:`repro.simulation.metrics.SimulationResult.hit_rate_skew`.
        """
        return tuple(shard.statistics.hit_rate for shard in self._shards)

    # ------------------------------------------------------------------
    # Cross-shard bounded aggregates
    # ------------------------------------------------------------------
    def aggregate_bound(
        self,
        kind: AggregateKind,
        keys: Sequence[Hashable],
        time: Optional[float] = None,
        record_stats: bool = False,
    ) -> Interval:
        """Bound an aggregate over ``keys`` by merging per-shard bounds.

        Each owning shard computes the bound of its own contribution (missing
        keys contribute the unbounded interval, exactly as a single cache
        would answer) and the partial bounds are merged into one global
        interval.  Bookkeeping lookups default to ``record_stats=False`` so
        inspection does not skew the workload hit rate; pass ``True`` when
        the aggregate *is* the workload.
        """
        if not keys:
            raise ValueError("aggregate bounds require at least one key")
        partials: List[Interval] = []
        counts: List[int] = []
        for index, shard_keys in partition_keys(keys, self._shard_count).items():
            shard = self._shards[index]
            partials.append(
                shard_aggregate_bound(kind, shard, shard_keys, time, record_stats)
            )
            counts.append(len(shard_keys))
        return merge_aggregate_bounds(kind, partials, counts)
