"""Deterministic hash partitioning of source keys across cache shards.

A sharded topology only keeps the identical-rows guarantee of the experiment
suite if every process, on every run, assigns the same key to the same shard.
Python's built-in ``hash`` is salted per process for strings (PEP 456), so
the partitioner hashes a canonical byte encoding of the key with CRC-32
instead: stable across processes, platforms and interpreter versions, and
cheap enough for the simulator hot path.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Iterable, List, Optional, Tuple


def stable_key_hash(key: Hashable) -> int:
    """Return a process-stable 32-bit hash of ``key``.

    Strings hash their UTF-8 bytes directly (the common case: source keys
    like ``"host-03"``); every other key type hashes a NUL-prefixed ``repr``
    — no ``repr`` starts with NUL, so ``1`` and ``"1"`` land in different
    buckets (as dict keys they are distinct too).  Numeric keys that compare
    equal across types (``True == 1 == 1.0``) are one dict key in a single
    cache, so they are canonicalised to one hash input here, keeping the
    coordinator's routing consistent with single-cache key semantics.

    Keys are expected to have value-based ``repr``s (strings, numbers,
    tuples of those); objects with the default id-based ``repr`` would
    re-partition per process and must not be used as source keys.
    """
    if type(key) is str:
        data = key.encode("utf-8")
    else:
        data = b"\x00" + repr(_canonical_key(key)).encode("utf-8")
    return zlib.crc32(data)


def _canonical_key(key):
    """Collapse cross-type numeric equality (``True == 1 == 1.0``), recursively
    through tuples, so equal dict keys share one hash input."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, float) and key.is_integer():
        return int(key)
    if type(key) is tuple:
        return tuple(_canonical_key(item) for item in key)
    return key


def shard_index(key: Hashable, shard_count: int) -> int:
    """Return the shard owning ``key`` under stable hash partitioning."""
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    return stable_key_hash(key) % shard_count


def partition_keys(
    keys: Iterable[Hashable], shard_count: int
) -> Dict[int, List[Hashable]]:
    """Group ``keys`` by owning shard, preserving iteration order per shard.

    Only shards that own at least one key appear in the result; the mapping
    iterates in first-touched order, which cross-shard aggregation relies on
    being deterministic for a given key sequence.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    groups: Dict[int, List[Hashable]] = {}
    for key in keys:
        index = stable_key_hash(key) % shard_count
        group = groups.get(index)
        if group is None:
            groups[index] = [key]
        else:
            group.append(key)
    return groups


def split_capacity(
    capacity: Optional[int], shard_count: int
) -> Tuple[Optional[int], ...]:
    """Divide a total cache capacity into per-shard eviction budgets.

    ``None`` (unbounded) stays unbounded on every shard.  A bounded capacity
    is split as evenly as possible — the first ``capacity % shard_count``
    shards receive one extra slot — so the budgets sum exactly to the total.
    Every shard must receive at least one slot (``ApproximateCache`` rejects
    zero capacities), so bounded capacities below the shard count are
    rejected.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if capacity is None:
        return (None,) * shard_count
    if capacity < shard_count:
        raise ValueError(
            f"capacity ({capacity}) must be at least the shard count "
            f"({shard_count}) so every shard gets an eviction budget"
        )
    base, remainder = divmod(capacity, shard_count)
    return tuple(
        base + 1 if index < remainder else base for index in range(shard_count)
    )
