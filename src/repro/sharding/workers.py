"""Truly concurrent shard workers: per-shard sub-simulations in processes.

``SimulationConfig.shards`` alone keeps the sharded topology a *routing*
layer: one process walks the whole event timeline and the coordinator merely
forwards each cache operation to the owning shard.  This module turns the
topology into real parallel execution (``SimulationConfig.shard_workers``,
CLI ``--shard-workers``): sources are partitioned by their owning shard
(:func:`~repro.sharding.partition.stable_key_hash`), every worker process
runs the batch-kernel sub-simulation of the shards it owns, and the merged
per-shard :class:`~repro.caching.cache.CacheStatistics` / metrics reproduce
the in-process run.

**How the decomposition stays exact.**  Update processing is per-source:
a value-initiated refresh touches only its own source, its own per-key policy
controller and its owning shard's cache, so the shards' update phases run
independently between query ticks.  Queries are the coupling points — which
keys a bounded query refreshes depends on the cached intervals of *all* its
keys, across shards — so workers synchronise at every query tick: each
worker replays the global query workload (the workload RNG is seeded from
the config and draws independently of simulation state, so every worker
generates the identical query sequence), sends the ``(interval, exact
value)`` pairs of its owned queried keys to the coordinator, receives the
merged map, and runs the *same* refresh-selection logic over it —
performing real refreshes for its own keys and substituting the broadcast
exact values for remote ones.  Refresh selection depends only on the
intervals and exact values (:mod:`repro.queries.refresh_selection`), which
the merged map carries, so every worker derives the identical refresh
sequence and applies exactly its own slice of it.

**Decomposability conditions.**  The merged run is bit-identical to the
in-process sharded run when per-key state is all the policy carries.  The
adaptive policies share one RNG across per-key controllers, drawing once per
refresh in *global* refresh order; per-shard replay reorders those draws, so
exactness additionally requires the draws to be outcome-independent —
growth/shrink probabilities of exactly 0 or 1, i.e. the paper's ``rho = 1``
configurations (or ``adaptivity = 0``).  Runs outside these conditions
complete but may diverge from the serial run in the probabilistic width
adjustments; a :class:`RuntimeWarning` flags them.  Cross-key policy state
(e.g. read observers that correlate keys) is likewise outside the contract.

Aggregate metrics merge exactly: refresh costs are per-event constants whose
partial sums are associative for the paper's cost values, counts are
integers, and per-shard cache statistics fold through the same rollup the
coordinator uses (:func:`~repro.sharding.coordinator.merge_cache_statistics`).
"""

from __future__ import annotations

import math
import pickle
import traceback
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

from repro.caching.cache import CacheStatistics
from repro.caching.columnar import _reconstruct_interval
from repro.caching.eviction import EvictionPolicy
from repro.caching.policies.base import PrecisionPolicy
from repro.data.merged import merge_timelines
from repro.data.streams import UpdateStream
from repro.experiments.runner import WorkerHandle, persistent_worker_pool
from repro.intervals.interval import UNBOUNDED, Interval
from repro.obs.metrics import REGISTRY
from repro.queries.aggregates import AggregateKind
from repro.queries.refresh_selection import (
    run_query_refreshes,
    select_sum_refreshes_columnar,
)
from repro.queries.workload import Query
from repro.sharding.coordinator import merge_cache_statistics
from repro.sharding.partition import stable_key_hash
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import HORIZON_TOLERANCE
from repro.simulation.kernel import MergedEventWalk
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import CacheSimulation

#: One (interval, exact value) exchange entry per owned queried key.
ExchangeEntry = Tuple[Interval, float]


# Exchange-traffic metrics (the old bespoke ``ExchangeMeter``, absorbed by
# ``repro.obs``).  Disabled with the process registry — the hot loops gate
# the pickling measurement on one ``REGISTRY.enabled`` check, exactly the
# discipline the meter's ``enabled`` flag enforced — and read back the same
# headline figure: pickle bytes per query tick, the number the shm-vs-pipe
# transport regression test pins.
_EXCHANGE_BYTES = REGISTRY.counter(
    "repro_exchange_bytes_pickled_total",
    "Bytes the exchange coordinator pickles through control pipes.",
)
_EXCHANGE_MESSAGES = REGISTRY.counter(
    "repro_exchange_messages_total",
    "Control messages the exchange coordinator sends or receives.",
)
_EXCHANGE_TICKS = REGISTRY.counter(
    "repro_exchange_ticks_total",
    "Query ticks the exchange coordinator has driven.",
)


def _record_exchange(payload: Any, count: int = 1) -> None:
    """Charge ``payload``'s pickled size ``count`` times (callers gate on
    ``REGISTRY.enabled`` so the pickling is never paid when nobody looks)."""
    _EXCHANGE_BYTES.inc(
        len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)) * count
    )
    _EXCHANGE_MESSAGES.inc(count)

#: Below this query fan-out the exchange's numpy paths (fancy-indexed encode
#: and the coordinator's gather) fall back to scalar loops: the vectorised
#: forms pay a fixed setup cost that only amortises across enough rows.
#: Sized like the columnar core's hybrid scan limit — the paper's workloads
#: query 10 values, comfortably inside the scalar regime; the 100-host
#: exchange benchmarks sit well above it.
_SCALAR_FANOUT_LIMIT = 16


class ExchangeArray:
    """The shard exchange's shared-memory block: one float64 plane per party.

    Shape ``(workers + 1, slots, rows, 3)``: plane ``w`` carries worker
    ``w``'s owned rows for the current tick (or window of ticks — ``slots``
    is the maximum window size), the last plane carries the coordinator's
    merged rows.  A row is ``[interval low, interval high, exact value]``
    for one position of the tick's query — both sides regenerate the
    identical query sequence from the config seed, so a row's position *is*
    its key and no keys ever cross the wire.  Unpublished entries are the
    ``(-inf, +inf)`` unbounded encoding.

    Lifecycle: the coordinator creates (and finally unlinks) the segment
    before spawning the pool; workers attach by name — the name travels in
    the worker's spawn arguments, so a supervisor restart re-attaches the
    replacement process automatically — and close their mapping on exit.
    Worker attaches re-register the name with the resource tracker (a 3.11
    quirk; ``track=False`` arrives in 3.13), which is harmless here: the
    tracker process is shared across the fork tree and its cache is a set,
    so the duplicate registrations collapse and the creator's ``unlink``
    clears the single entry.  Workers must *not* unregister on their own —
    that would strip the creator's registration from the shared tracker and
    leave the final unlink complaining about an unknown name.
    """

    __slots__ = ("array", "name", "_shm")

    def __init__(
        self, workers: int, slots: int, rows: int, name: Optional[str] = None
    ) -> None:
        if _shared_memory is None:  # pragma: no cover - gated by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        shape = (workers + 1, max(1, slots), max(1, rows), 3)
        size = int(np.prod(shape)) * np.dtype(np.float64).itemsize
        if name is None:
            self._shm = _shared_memory.SharedMemory(create=True, size=size)
        else:
            self._shm = _shared_memory.SharedMemory(name=name)
        self.array = np.ndarray(shape, dtype=np.float64, buffer=self._shm.buf)
        self.name = self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (workers and coordinator)."""
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (creator only)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShmWorkerExchange:
    """One worker's encode/decode view of the :class:`ExchangeArray`."""

    __slots__ = ("_array", "_plane")

    def __init__(self, exchange: ExchangeArray, plane: int) -> None:
        self._array = exchange.array
        self._plane = plane

    def write_tick(
        self, slot: int, query: Query, local: Dict[Hashable, ExchangeEntry]
    ) -> None:
        """Encode the owned entries of one tick at the query's positions."""
        positions: List[int] = []
        encoded: List[Tuple[float, float, float]] = []
        get = local.get
        for position, key in enumerate(query.keys):
            entry = get(key)
            if entry is not None:
                interval, value = entry
                positions.append(position)
                encoded.append((interval.low, interval.high, value))
        if not positions:
            return
        rows = self._array[self._plane, slot]
        if len(positions) < _SCALAR_FANOUT_LIMIT:
            # Small fan-out: per-row stores beat the fancy-indexing setup.
            for position, row in zip(positions, encoded):
                rows[position] = row
        else:
            rows[positions] = encoded

    def merged_rows(self, slot: int = 0) -> np.ndarray:
        """The coordinator's merged rows for ``slot``, as a live view.

        Safe to read without copying: the strict per-tick alternation means
        the coordinator never rewrites the merged plane until this worker
        sends its next exchange message.
        """
        return self._array[-1, slot]

    def read_merged(
        self,
        query: Query,
        slot: int = 0,
        local: Optional[Dict[Hashable, ExchangeEntry]] = None,
    ) -> Dict[Hashable, ExchangeEntry]:
        """Decode the coordinator's merged rows back into the exchange map.

        ``local`` — the worker's own owned entries for this tick — is an
        optional decode shortcut: the merged rows for those keys are the
        float64 image of exactly these pairs (the worker wrote them, the
        coordinator copied them), so reusing the live objects skips their
        ``Interval`` reconstruction without changing a single bit.
        """
        # ``tolist()`` converts the plane in one C pass; per-element float()
        # on numpy scalars is several times slower at query fan-out sizes.
        rows = self._array[-1, slot].tolist()
        merged: Dict[Hashable, ExchangeEntry] = {}
        if local:
            for position, key in enumerate(query.keys):
                entry = local.get(key)
                if entry is None:
                    low, high, value = rows[position]
                    entry = (_reconstruct_interval(low, high), value)
                merged[key] = entry
        else:
            for position, key in enumerate(query.keys):
                low, high, value = rows[position]
                merged[key] = (_reconstruct_interval(low, high), value)
        return merged

#: How many times one shard worker may be restarted before the run fails.
#: A worker that keeps dying is deterministic about it (the replay is), so
#: more attempts would only loop.
MAX_WORKER_RESTARTS = 2


class _ExchangeSupervisor:
    """Keeps the shard-worker exchange alive across worker deaths.

    Every reply the coordinator broadcasts (merged tick maps, or windowed
    ``(commit, refresh_map)`` tuples — the only inbound messages a worker
    ever consumes) is journaled.  When a worker dies — EOF on receive,
    broken pipe on send — a fresh process is started with the same target
    and the journal is replayed to it: the worker deterministically re-runs
    from the beginning, re-sending the same partials (received and
    discarded) and receiving the recorded replies, until it stands exactly
    where its peers are.  This is snapshot-free state resync: a worker's
    state is a pure function of its (config, sources, replies) inputs,
    which is the same determinism the equivalence tests pin.  A worker that
    dies more than :data:`MAX_WORKER_RESTARTS` times fails the run.
    """

    def __init__(self, handles: Sequence[WorkerHandle], grace: float = 5.0) -> None:
        self._handles = handles
        self._journal: List[Any] = []
        self._grace = grace

    def receive(self, handle: WorkerHandle) -> Tuple[str, Any]:
        """Receive one worker message, restarting the worker on EOF."""
        while True:
            try:
                tag, payload = handle.recv()
            except (EOFError, OSError):
                self._resync(handle, "died mid-exchange")
                continue
            if tag == "error":
                raise RuntimeError(f"shard worker failed:\n{payload}")
            return tag, payload

    def broadcast(self, reply: Any, journal_entry: Any = None) -> None:
        """Journal one coordinator reply and deliver it to every worker.

        The shared-memory transport sends constant-size control tokens whose
        payload lives in the exchange array — which the next tick overwrites,
        so the token alone could never be replayed.  It passes
        ``journal_entry``: either the replayable pipe-equivalent value or a
        zero-argument callable producing it (materialised only if a resync
        actually happens, keeping the hot path copy-light).
        """
        self._journal.append(reply if journal_entry is None else journal_entry)
        for handle in self._handles:
            try:
                handle.send(reply)
            except (BrokenPipeError, OSError):
                # The replay below covers the just-journaled reply too.
                self._resync(handle, "died before receiving a reply")

    def _resync(self, handle: WorkerHandle, reason: str) -> None:
        if handle.restarts >= MAX_WORKER_RESTARTS:
            # Imported lazily: the sharding layer must not depend on the
            # serving package at import time.
            from repro.serving.errors import SupervisionExhausted

            raise SupervisionExhausted(
                f"shard worker {handle.index} died {handle.restarts + 1} times; "
                "giving up (its failure replays deterministically)",
                index=handle.index,
                crashes={h.index: h.restarts for h in self._handles},
            )
        warnings.warn(
            f"shard worker {handle.index} {reason}; restarting and replaying "
            f"{len(self._journal)} exchange replies",
            RuntimeWarning,
            stacklevel=4,
        )
        handle.restart(grace=self._grace)
        for entry in self._journal:
            try:
                tag, payload = handle.recv()
            except (EOFError, OSError):
                # Died again mid-replay; recurse (bounded by the restart cap).
                return self._resync(handle, "died again during resync replay")
            if tag == "error":
                raise RuntimeError(f"shard worker failed during resync:\n{payload}")
            # Shared-memory replies journal lazily (see broadcast); the
            # replayed worker receives the materialised pipe-equivalent
            # value, so resync never depends on overwritten exchange planes.
            handle.send(entry() if callable(entry) else entry)


class PrebuiltStream(UpdateStream):
    """An update stream replaying an already-materialised schedule.

    Workers receive their sources' timelines (drawn once in the parent)
    instead of stream objects, so the sub-simulation replays exactly the
    parent's draws without re-deriving per-stream randomness.
    """

    def __init__(
        self, initial_value: float, timeline: Sequence[Tuple[float, float]]
    ) -> None:
        self._initial = initial_value
        self._timeline = list(timeline)

    @property
    def initial_value(self) -> float:
        return self._initial

    def schedule(self, duration: float) -> List[Tuple[float, float]]:
        return list(self._timeline)


class ShardWorkerSimulation(CacheSimulation):
    """One worker's sub-simulation: owned sources, global query workload.

    Extends :class:`CacheSimulation` in exactly two places: the query
    workload is built over the *full* key population (``workload_keys`` —
    every worker replays the global query sequence, since workload
    randomness never depends on simulation state), and query execution
    exchanges owned ``(interval, exact value)`` pairs through ``channel``
    before running the shared refresh selection (see the module docstring).
    """

    def __init__(
        self,
        config: SimulationConfig,
        streams: Mapping[Hashable, UpdateStream],
        policy: PrecisionPolicy,
        eviction_policy: Optional[EvictionPolicy],
        workload_keys: Sequence[Hashable],
        channel: Any,
        exchange: Optional[ShmWorkerExchange] = None,
    ) -> None:
        super().__init__(
            config, streams, policy, eviction_policy, workload_keys=workload_keys
        )
        self._owned = frozenset(streams.keys())
        self._channel = channel
        # With a shared-memory exchange attached the pipe carries only
        # constant-size control messages; the interval/value payload rides
        # the ExchangeArray planes (None replies mean "decode the merged
        # plane"; a non-None reply is a resync replay's materialised map).
        self._exchange = exchange

    def _tick_local(self, time: float) -> Tuple[Query, Dict[Hashable, ExchangeEntry]]:
        """Generate the tick's query and collect the owned exchange pairs.

        The first half of a query tick: workload generation, the query-count
        metric, and the stats-counted cache lookups of the owned queried keys
        (exactly one per key, as in the in-process run) with their policy
        read hooks.  Shared by the per-tick exchange below and the windowed
        exchange's optimistic advance, which must replay precisely these
        side effects.
        """
        query = self._workload.generate(time)
        self._metrics.record_query(time)
        constraint = query.constraint
        owned = self._owned
        cache_get = self._cache.get
        sources = self._sources
        local: Dict[Hashable, ExchangeEntry] = {}
        if self._policy_observes_reads:
            record_read = self._policy.record_read
            record_constraint = self._policy.record_constraint
            for key in query.keys:
                if key in owned:
                    entry = cache_get(key, time)
                    local[key] = (
                        entry.interval if entry is not None else UNBOUNDED,
                        sources[key].value,
                    )
                    record_read(key, time, served_from_cache=entry is not None)
                    record_constraint(key, constraint, time)
        else:
            for key in query.keys:
                if key in owned:
                    # The workload lookup — the only stats-counted cache
                    # access, exactly one per owned queried key, as in the
                    # in-process run.
                    entry = cache_get(key, time)
                    local[key] = (
                        entry.interval if entry is not None else UNBOUNDED,
                        sources[key].value,
                    )
        return query, local

    def _select_and_refresh(
        self,
        query: Query,
        time: float,
        merged: Dict[Hashable, ExchangeEntry],
    ) -> None:
        """Run the shared refresh selection over the merged exchange map."""
        # Build the interval mapping in query-key order: refresh selection
        # breaks width ties by mapping position, which must match the
        # in-process run's ordering.
        owned = self._owned
        intervals = {key: merged[key][0] for key in query.keys}

        def fetch_exact(key: Hashable) -> float:
            if key in owned:
                return self._query_initiated_refresh(key, time)
            return merged[key][1]

        run_query_refreshes(query.kind, intervals, query.constraint, fetch_exact)

    def _select_and_refresh_rows(
        self,
        query: Query,
        time: float,
        exchange: ShmWorkerExchange,
        local: Dict[Hashable, ExchangeEntry],
        slot: int = 0,
    ) -> None:
        """Run refresh selection straight off the merged exchange rows.

        SUM/AVG selection (:func:`select_sum_refreshes_columnar`) needs only
        the interval widths — which are one vectorised subtraction over the
        merged plane — and ``run_query_refreshes`` discards the fetched
        values on that path, so remote fetches are no-ops and the merged
        dict never needs to be materialised.  The width array is the float64
        image of exactly the widths the decoded intervals would carry
        (``high - low`` on identical operands), so the selected keys — and
        therefore every owned refresh and policy draw — are bit-identical to
        the decoded path, which MAX/MIN still takes.
        """
        constraint = query.constraint
        if math.isinf(constraint):
            return
        kind = query.kind
        if kind is AggregateKind.SUM or kind is AggregateKind.AVG:
            rows = exchange.merged_rows(slot)
            widths = rows[:, 1] - rows[:, 0]
            limit = (
                constraint * len(query.keys)
                if kind is AggregateKind.AVG
                else constraint
            )
            owned = self._owned
            for key in select_sum_refreshes_columnar(query.keys, widths, limit):
                if key in owned:
                    self._query_initiated_refresh(key, time)
            return
        self._select_and_refresh(
            query, time, exchange.read_merged(query, slot, local=local)
        )

    def _run_query(self, time: float) -> None:
        query, local = self._tick_local(time)
        channel = self._channel
        exchange = self._exchange
        if exchange is not None:
            exchange.write_tick(0, query, local)
            channel.send(("tick", None))
            reply = channel.recv()
            if reply is None:
                self._select_and_refresh_rows(query, time, exchange, local)
            else:
                # Resync replay: the supervisor re-sent the materialised map.
                self._select_and_refresh(query, time, reply)
        else:
            channel.send(("tick", local))
            merged = channel.recv()
            self._select_and_refresh(query, time, merged)

    def run_worker(self) -> Dict[str, Any]:
        """Run the sub-simulation and return the mergeable partial payload."""
        if self._ran:
            raise RuntimeError("a worker sub-simulation can only run once")
        self._ran = True
        processed = self._execute()
        result = self._metrics.finalize(
            end_time=self._config.duration,
            final_widths=self._collect_final_widths(),
            cache_hit_rate=self._cache.statistics.hit_rate,
            shard_hit_rates=(),
            events_processed=processed,
        )
        return {
            "result": result,
            # The worker's coordinator instantiates every shard (routing by
            # global shard id); unowned shards simply stay empty, so their
            # zero statistics merge as no-ops.
            "shard_statistics": tuple(self._cache.shard_statistics),
        }


class ExchangeWindowController:
    """The windowed exchange's shared adaptive window sizing.

    Both the workers and the coordinator feed the controller the same
    observable outcome — ``(tick_count, commit)`` of the window that just
    closed — so the two sides stay in lock-step without any negotiation
    traffic.  The policy is conservative about growing because every window
    larger than 1 pays a snapshot, and a truncation before the window's
    last tick additionally pays a restore-and-replay:

    * **grow** multiplicatively (up to the configured limit) only after a
      streak of *consecutive* fully committed windows — one quiet tick
      inside a refresh-heavy stretch is common and must not balloon the
      window.  The required streak itself backs off: it starts at 2 and
      doubles (to at most 64) every time a grown window's snapshot turns out
      wasted — i.e. the window truncated before its last tick — so a
      workload that keeps punishing growth attempts sees them exponentially
      rarely, while a genuinely quiet stretch still escalates quickly;
    * **shrink** a truncated window to exactly the stretch that was usable:
      the committed ticks plus the refreshing tick (which needs no rollback
      when it is the last of its window).

    Under refresh-heavy load the window therefore settles at 1, where the
    protocol degenerates to the per-tick exchange with no snapshots at all
    (the snapshot was this protocol's dominant cost on refresh-heavy runs —
    see ``docs/PERFORMANCE.md``), while refresh-free stretches amortise one
    round-trip over up to ``limit`` ticks.
    """

    __slots__ = ("limit", "window", "_streak", "_grow_at")

    #: Ceiling for the growth-streak backoff: even a maximally punished
    #: controller retries a window of 2 after this many quiet windows.
    MAX_GROW_AT = 64

    def __init__(self, limit: int) -> None:
        self.limit = limit
        # Start at 1 — the conservative end of the documented ramp: the
        # first windows pay no snapshot, and a refresh-free stretch doubles
        # its way to the limit within a handful of windows.
        self.window = 1
        self._streak = 0
        self._grow_at = 2

    def observe(self, tick_count: int, commit: int) -> None:
        """Advance the controller past one closed window."""
        if commit >= tick_count:
            self._streak += 1
            if self._streak >= self._grow_at:
                self.window = min(self.limit, max(self.window, 1) * 2)
        else:
            if tick_count > 1:
                # The grown window paid a snapshot and still truncated:
                # back off the next growth attempt.
                self._grow_at = min(self.MAX_GROW_AT, self._grow_at * 2)
            self._streak = 0
            self.window = max(1, commit + 1)


class WindowedShardWorkerSimulation(ShardWorkerSimulation):
    """Shard worker batching the coordinator exchange over windows of ticks.

    The per-tick exchange above pays one pipe round-trip per query tick even
    when the tick needs no query-initiated refreshes — which is the common
    case for loose constraints.  This variant (``config.exchange_window > 1``)
    advances *optimistically*: it snapshots its mutable state at the window
    start, executes up to a window of ticks assuming none of them refreshes,
    and ships all their owned ``(interval, exact value)`` pairs in one
    message.  The coordinator — which regenerates the identical query
    sequence from the config seed — probes each tick's global refresh
    selection against the merged maps and replies ``(commit, refresh map)``:

    * the whole window committed: the optimistic state *is* the true state
      (refresh-free ticks have only locally computable side effects — cache
      lookups, hit statistics, read hooks — which the advance already
      performed), so the window cost a single round-trip;
    * truncated at the window's *last* tick: nothing was executed beyond the
      refreshing tick, and its query half already ran during the optimistic
      advance, so the worker simply runs the shared selection over the
      attached merged map — no rollback;
    * truncated earlier: the worker restores the snapshot, deterministically
      replays the committed refresh-free ticks (every RNG's state was
      captured, so each draw repeats exactly), runs the refreshing tick
      through the shared selection, and opens the next window after it.

    Window sizes adapt through :class:`ExchangeWindowController` (mirrored by
    the coordinator), so refresh-heavy stretches fall back to per-tick behaviour
    while refresh-free stretches amortise one round-trip over up to
    ``exchange_window`` ticks.  Results are identical to the per-tick
    exchange for every window size; the trade is snapshot/replay overhead
    against round-trips.  Requires the batch kernel (the walk runs on the
    merged timelines; ``SimulationConfig`` validates this).
    """

    def _execute(self) -> int:
        config = self._config
        merged_timeline = merge_timelines(
            self._timelines, engine=config.stream_engine()
        )
        horizon = config.duration + HORIZON_TOLERANCE
        walk = MergedEventWalk(merged_timeline, horizon)
        controller = ExchangeWindowController(config.exchange_window)
        period = config.query_period
        channel = self._channel
        processed = 0
        query_time = period
        while query_time <= horizon:
            # The window's tick instants continue the run's single
            # floating-point accumulation chain, exactly as the per-tick
            # loops accumulate ``query_time += period``.
            ticks: List[float] = []
            next_time = query_time
            while next_time <= horizon and len(ticks) < controller.window:
                ticks.append(next_time)
                next_time += period
            # A rollback can only reach back past the refreshing tick when
            # the window holds ticks beyond it, so single-tick windows (the
            # refresh-heavy steady state) skip the snapshot entirely.
            snapshot = self._snapshot(walk, processed) if len(ticks) > 1 else None
            queries: List[Query] = []
            locals_per_tick: List[Dict[Hashable, ExchangeEntry]] = []
            exchange = self._exchange
            for tick in ticks:
                processed += walk.advance(tick, self._apply_update)
                query, local = self._tick_local(tick)
                if exchange is not None:
                    exchange.write_tick(len(queries), query, local)
                queries.append(query)
                locals_per_tick.append(local)
                processed += 1
            if exchange is not None:
                channel.send(("window", None))
                commit, refresh_map = channel.recv()
            else:
                channel.send(("window", locals_per_tick))
                commit, refresh_map = channel.recv()

            def select_commit(query: Query, tick: float) -> None:
                # A live shared-memory reply leaves the truncating tick's
                # merged rows on the coordinator plane (selection runs off
                # them without decoding); a non-None map is either the pipe
                # transport's merged map or a resync replay's materialised
                # rows.
                if refresh_map is not None:
                    self._select_and_refresh(query, tick, refresh_map)
                else:
                    self._select_and_refresh_rows(
                        query, tick, exchange, locals_per_tick[commit]
                    )

            if commit >= len(ticks):
                query_time = next_time
            elif commit == len(ticks) - 1:
                # Only the last tick refreshes: its query half already ran,
                # nothing beyond it was executed — select and move on.
                select_commit(queries[commit], ticks[commit])
                query_time = ticks[commit] + period
            else:
                processed = self._restore(snapshot, walk)
                for tick in ticks[:commit]:
                    processed += walk.advance(tick, self._apply_update)
                    self._tick_local(tick)
                    processed += 1
                tick = ticks[commit]
                processed += walk.advance(tick, self._apply_update)
                query, _ = self._tick_local(tick)
                select_commit(query, tick)
                processed += 1
                query_time = tick + period
            controller.observe(len(ticks), commit)
        processed += walk.advance(horizon, self._apply_update)
        return processed

    def _snapshot(self, walk: MergedEventWalk, processed: int) -> tuple:
        """Capture every mutable piece an optimistic window may touch.

        One pickle covers the substrate objects (so cross-references survive)
        including every RNG's state — the policy's shared draw stream, the
        workload and constraint generators — which is what makes the
        truncation replay bit-exact.  Pickling is safe here because the
        worker's entire state was built from pickled inputs (policy, streams
        and eviction policy crossed the process boundary to get here), and
        it is measurably cheaper than ``copy.deepcopy`` — the snapshot is
        the windowed exchange's main overhead.  The pre-materialised
        timelines are immutable and shared; only the walk cursor is saved.
        """
        core = pickle.dumps(
            (
                self._sources,
                self._cache,
                self._metrics,
                self._workload,
                self._network,
                self._policy,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return core, walk.state(), processed

    def _restore(self, snapshot: tuple, walk: MergedEventWalk) -> int:
        """Adopt a snapshot's objects and rewind the walk; returns processed."""
        core, walk_state, processed = snapshot
        (
            self._sources,
            self._cache,
            self._metrics,
            self._workload,
            self._network,
            self._policy,
        ) = pickle.loads(core)
        walk.restore(walk_state)
        self._rebind_hot_callables()
        return processed


def _worker_main(
    channel: Any,
    config: SimulationConfig,
    sources: Dict[Hashable, Tuple[float, Sequence[Tuple[float, float]]]],
    policy: PrecisionPolicy,
    eviction_policy: Optional[EvictionPolicy],
    workload_keys: Sequence[Hashable],
    exchange_spec: Optional[Tuple[str, int, int, int, int]] = None,
) -> None:
    """Worker process entry point: run the sub-simulation, report, exit.

    ``exchange_spec`` — ``(segment name, workers, slots, rows, plane)`` —
    attaches the shared-memory exchange; it rides the spawn arguments, so a
    supervisor restart re-attaches the replacement process to the same
    segment with no extra negotiation.
    """
    exchange_array: Optional[ExchangeArray] = None
    try:
        streams = {
            key: PrebuiltStream(initial_value, timeline)
            for key, (initial_value, timeline) in sources.items()
        }
        exchange: Optional[ShmWorkerExchange] = None
        if exchange_spec is not None:
            name, workers, slots, rows, plane = exchange_spec
            exchange_array = ExchangeArray(workers, slots, rows, name=name)
            exchange = ShmWorkerExchange(exchange_array, plane)
        simulation_class = (
            WindowedShardWorkerSimulation
            if config.exchange_window > 1
            else ShardWorkerSimulation
        )
        simulation = simulation_class(
            config=config,
            streams=streams,
            policy=policy,
            eviction_policy=eviction_policy,
            workload_keys=workload_keys,
            channel=channel,
            exchange=exchange,
        )
        channel.send(("done", simulation.run_worker()))
    except BaseException:  # pragma: no cover - exercised via crash tests
        try:
            channel.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        if exchange_array is not None:
            exchange_array.close()
        channel.close()


def _check_decomposability(policy: PrecisionPolicy) -> None:
    """Warn when the policy's shared-RNG draws are outcome-dependent.

    Best effort: only policies exposing a ``parameters`` bundle with
    growth/shrink probabilities are inspected (the adaptive family).  Draws
    with probability exactly 0 or 1 never change an outcome, so reordering
    them across workers is invisible; anything in between makes the merged
    run diverge from the serial one in the probabilistic width adjustments.
    """
    parameters = getattr(policy, "parameters", None)
    growth = getattr(parameters, "growth_probability", None)
    shrink = getattr(parameters, "shrink_probability", None)
    adaptivity = getattr(parameters, "adaptivity", None)
    if growth is None or shrink is None:
        return
    if adaptivity == 0 or (growth in (0.0, 1.0) and shrink in (0.0, 1.0)):
        return
    rho = getattr(parameters, "cost_factor", math.nan)
    warnings.warn(
        "shard-worker execution reorders the policy's shared RNG draws; "
        f"policy parameters rho={rho:g}, adaptivity={adaptivity:g} give "
        f"growth/shrink probabilities ({growth:g}, {shrink:g}) not in "
        "{0, 1}, so the merged result may differ from the in-process run "
        "(exact for rho = 1 or adaptivity = 0)",
        RuntimeWarning,
        stacklevel=2,
    )


def run_concurrent_shards(
    config: SimulationConfig,
    timelines: Mapping[Hashable, Sequence[Tuple[float, float]]],
    initial_values: Mapping[Hashable, float],
    policy: PrecisionPolicy,
    eviction_policy: Optional[EvictionPolicy] = None,
) -> SimulationResult:
    """Execute a sharded simulation across ``config.shard_workers`` processes.

    Called by :meth:`CacheSimulation.run` when ``shard_workers > 1``: the
    parent has already materialised every source's timeline; this function
    partitions them by owning shard, fans the sub-simulations out through
    :func:`repro.experiments.runner.persistent_worker_pool`, coordinates the
    per-query-tick interval exchange, and merges the per-worker payloads
    into one :class:`SimulationResult` equal to the in-process run's (under
    the decomposability conditions in the module docstring).
    """
    if config.shards < 2 or config.shard_workers < 2:
        raise ValueError("run_concurrent_shards requires shards > 1 and workers > 1")
    _check_decomposability(policy)
    shard_count = config.shards
    worker_count = min(config.shard_workers, shard_count)
    keys = list(timelines)
    shard_of = {key: stable_key_hash(key) % shard_count for key in keys}

    # Shard s is owned by worker s % worker_count; workers owning no source
    # are never spawned (their shards hold no keys, so no query can touch
    # them — their statistics merge below as empty).
    keys_by_worker: List[List[Hashable]] = [[] for _ in range(worker_count)]
    for key in keys:
        keys_by_worker[shard_of[key] % worker_count].append(key)
    populated = [index for index in range(worker_count) if keys_by_worker[index]]

    # Shared-memory transport: one ExchangeArray created (and finally
    # unlinked) here, attached by every worker via its spawn arguments.
    # Row positions are query positions, so the planes are sized by the
    # workload's fixed query fan-out; the windowed protocol needs one slot
    # per tick of the largest window.
    use_shm = config.exchange_transport == "shm" and _shared_memory is not None
    exchange: Optional[ExchangeArray] = None
    plane_of_key: Optional[Dict[Hashable, int]] = None
    exchange_specs: Dict[int, Tuple[str, int, int, int, int]] = {}
    if use_shm:
        slots = config.exchange_window if config.exchange_window > 1 else 1
        # The workload clamps its fan-out to the key population, so the row
        # count is the *effective* query size, constant across ticks.
        row_count = min(config.query_size, len(keys))
        exchange = ExchangeArray(len(populated), slots, row_count)
        plane_index = {worker: plane for plane, worker in enumerate(populated)}
        plane_of_key = {
            key: plane_index[shard_of[key] % worker_count] for key in keys
        }
        for index in populated:
            exchange_specs[index] = (
                exchange.name,
                len(populated),
                slots,
                row_count,
                plane_index[index],
            )

    worker_config = config.with_changes(shard_workers=0)
    targets = []
    for index in populated:
        owned_keys = keys_by_worker[index]
        owned_set = set(owned_keys)
        sources = {key: (initial_values[key], timelines[key]) for key in owned_keys}
        targets.append(
            (
                _worker_main,
                (
                    worker_config.with_changes(
                        track_keys=tuple(
                            key for key in config.track_keys if key in owned_set
                        )
                    ),
                    sources,
                    policy,
                    eviction_policy,
                    keys,
                    exchange_specs.get(index),
                ),
            )
        )

    horizon = config.duration + HORIZON_TOLERANCE
    payloads: List[Dict[str, Any]] = []
    try:
        with persistent_worker_pool(targets) as handles:
            supervisor = _ExchangeSupervisor(handles)
            if config.exchange_window > 1:
                ticks = _windowed_exchange_loop(
                    config, handles, keys, horizon, supervisor, exchange, plane_of_key
                )
            else:
                ticks = _tick_exchange_loop(
                    config, handles, keys, horizon, supervisor, exchange, plane_of_key
                )
            for handle in handles:
                tag, payload = supervisor.receive(handle)
                payloads.append(payload)
    finally:
        if exchange is not None:
            exchange.close()
            exchange.unlink()

    return _merge_payloads(config, payloads, populated, worker_count, ticks)


def _make_gather(planes: np.ndarray, query_size: int) -> Callable[[List[int], int], None]:
    """Build the coordinator's merge: worker planes -> the merged plane.

    Returns ``gather(owners, slot)`` copying row ``p`` of worker plane
    ``owners[p]`` at slot ``slot`` into the merged plane's slot-0 row ``p``
    (the merged plane always publishes at slot 0 — that is where workers
    decode, whichever window slot truncated).  One fancy-indexed copy at
    real fan-outs; a scalar row loop below :data:`_SCALAR_FANOUT_LIMIT`,
    where the fancy-indexing setup dominates.
    """
    merged_rows = planes[-1, 0]
    if query_size < _SCALAR_FANOUT_LIMIT:

        def gather(owners: List[int], slot: int) -> None:
            for position, owner in enumerate(owners):
                merged_rows[position] = planes[owner, slot, position]

    else:
        positions = np.arange(query_size)

        def gather(owners: List[int], slot: int) -> None:
            merged_rows[:] = planes[owners, slot, positions]

    return gather


def _rows_to_map(
    keys: Sequence[Hashable], rows: np.ndarray
) -> Dict[Hashable, ExchangeEntry]:
    """Decode exchange rows into the pipe transport's merged map shape."""
    return {
        key: (
            _reconstruct_interval(float(rows[position, 0]), float(rows[position, 1])),
            float(rows[position, 2]),
        )
        for position, key in enumerate(keys)
    }


def _journal_rows(keys: Tuple[Hashable, ...], rows: np.ndarray) -> Callable[[], Any]:
    """Journal entry for a shm tick reply: copies now, materialises on resync."""
    snapshot = rows.copy()

    def materialise() -> Dict[Hashable, ExchangeEntry]:
        return _rows_to_map(keys, snapshot)

    return materialise


def _journal_window(
    commit: int, keys: Tuple[Hashable, ...], rows: np.ndarray
) -> Callable[[], Any]:
    """Journal entry for a truncated shm window reply."""
    snapshot = rows.copy()

    def materialise() -> Tuple[int, Dict[Hashable, ExchangeEntry]]:
        return commit, _rows_to_map(keys, snapshot)

    return materialise


def _tick_exchange_loop(
    config: SimulationConfig,
    handles: Sequence[WorkerHandle],
    keys: Sequence[Hashable],
    horizon: float,
    supervisor: _ExchangeSupervisor,
    exchange: Optional[ExchangeArray] = None,
    plane_of_key: Optional[Dict[Hashable, int]] = None,
) -> int:
    """The per-tick coordinator loop: one merge-and-broadcast per query tick.

    Pipe transport merges the workers' pickled partial maps; the
    shared-memory transport instead regenerates the tick's query (both sides
    draw the identical sequence from the config seed), gathers each
    position's row from its owning worker's plane into the merged plane with
    one fancy-indexed copy, and broadcasts a constant-size ``None`` token.
    """
    registry = REGISTRY
    query_time = config.query_period
    ticks = 0
    if exchange is None:
        while query_time <= horizon:
            partials = []
            for handle in handles:
                tag, payload = supervisor.receive(handle)
                if registry.enabled:
                    _record_exchange((tag, payload))
                partials.append(payload)
            merged: Dict[Hashable, ExchangeEntry] = {}
            for partial in partials:
                merged.update(partial)
            supervisor.broadcast(merged)
            if registry.enabled:
                _record_exchange(merged, count=len(handles))
                _EXCHANGE_TICKS.inc()
            ticks += 1
            query_time += config.query_period
        return ticks
    assert plane_of_key is not None
    workload = config.build_workload(keys)
    planes = exchange.array
    merged_rows = planes[-1, 0]
    gather = _make_gather(planes, workload.query_size)
    while query_time <= horizon:
        for handle in handles:
            tag, payload = supervisor.receive(handle)
            if registry.enabled:
                _record_exchange((tag, payload))
        query = workload.generate(query_time)
        owners = [plane_of_key[key] for key in query.keys]
        gather(owners, 0)
        supervisor.broadcast(None, journal_entry=_journal_rows(query.keys, merged_rows))
        if registry.enabled:
            _record_exchange(None, count=len(handles))
            _EXCHANGE_TICKS.inc()
        ticks += 1
        query_time += config.query_period
    return ticks


def _query_needs_refreshes(query: Query, merged: Dict[Hashable, ExchangeEntry]) -> bool:
    """Probe whether a tick's global refresh selection fetches anything.

    Runs the *identical* selection the workers run
    (:func:`repro.queries.refresh_selection.run_query_refreshes` over the
    merged intervals in query-key order), with a fetch callback that records
    the fetch and substitutes the exchanged exact value, so the coordinator's
    commit decision agrees with every worker's subsequent replay.
    """
    constraint = query.constraint
    if math.isinf(constraint):
        return False
    intervals = {key: merged[key][0] for key in query.keys}
    fetched = False

    def probe(key: Hashable) -> float:
        nonlocal fetched
        fetched = True
        return merged[key][1]

    run_query_refreshes(query.kind, intervals, constraint, probe)
    return fetched


def _rows_need_refreshes(query: Query, rows: np.ndarray) -> bool:
    """:func:`_query_needs_refreshes` evaluated straight off exchange rows.

    SUM/AVG — the overwhelmingly common probe — goes through the columnar
    selector, whose vectorised screen is bit-faithful to the scalar
    selection (see :func:`select_sum_refreshes_columnar`); other aggregates
    decode the rows and reuse the map-based probe.
    """
    constraint = query.constraint
    if math.isinf(constraint):
        return False
    kind = query.kind
    if kind is AggregateKind.SUM or kind is AggregateKind.AVG:
        widths = rows[:, 1] - rows[:, 0]
        limit = constraint * len(query.keys) if kind is AggregateKind.AVG else constraint
        return bool(select_sum_refreshes_columnar(query.keys, widths, limit))
    return _query_needs_refreshes(query, _rows_to_map(query.keys, rows))


def _windowed_exchange_loop(
    config: SimulationConfig,
    handles: Sequence[WorkerHandle],
    keys: Sequence[Hashable],
    horizon: float,
    supervisor: _ExchangeSupervisor,
    exchange: Optional[ExchangeArray] = None,
    plane_of_key: Optional[Dict[Hashable, int]] = None,
) -> int:
    """Coordinator side of the windowed exchange (``exchange_window > 1``).

    Receives each worker's optimistic window of per-tick owned pairs in one
    message, regenerates the identical query sequence from the config seed
    (:meth:`SimulationConfig.build_workload` draws independently of
    simulation state), probes each tick's refresh selection against the
    merged maps, and replies ``(commit, refresh map)``: the number of
    leading refresh-free ticks every worker may keep, plus — when the window
    truncates — the merged map of the first refreshing tick.  The workload
    RNG stays in lock-step with the workers because exactly the committed
    ticks and the truncating tick have been generated when a window closes.
    """
    registry = REGISTRY
    workload = config.build_workload(keys)
    period = config.query_period
    controller = ExchangeWindowController(config.exchange_window)
    query_time = period
    ticks = 0
    if exchange is not None:
        assert plane_of_key is not None
        planes = exchange.array
        merged_rows = planes[-1, 0]
        gather = _make_gather(planes, workload.query_size)
    while query_time <= horizon:
        tick_times: List[float] = []
        next_time = query_time
        while next_time <= horizon and len(tick_times) < controller.window:
            tick_times.append(next_time)
            next_time += period
        locals_per_worker = []
        for handle in handles:
            tag, payload = supervisor.receive(handle)
            if registry.enabled:
                _record_exchange((tag, payload))
            locals_per_worker.append(payload)
        commit = len(tick_times)
        refresh_map: Optional[Dict[Hashable, ExchangeEntry]] = None
        refresh_keys: Optional[Tuple[Hashable, ...]] = None
        if exchange is None:
            for index, tick in enumerate(tick_times):
                merged: Dict[Hashable, ExchangeEntry] = {}
                for worker_locals in locals_per_worker:
                    merged.update(worker_locals[index])
                if _query_needs_refreshes(workload.generate(tick), merged):
                    commit = index
                    refresh_map = merged
                    break
            supervisor.broadcast((commit, refresh_map))
            if registry.enabled:
                _record_exchange((commit, refresh_map), count=len(handles))
        else:
            # Gather each probed tick's rows into the merged plane; when a
            # tick truncates the window the plane already holds exactly the
            # refresh map the workers will decode.
            for index, tick in enumerate(tick_times):
                query = workload.generate(tick)
                owners = [plane_of_key[key] for key in query.keys]
                gather(owners, index)
                if _rows_need_refreshes(query, merged_rows):
                    commit = index
                    refresh_keys = query.keys
                    break
            if refresh_keys is not None:
                supervisor.broadcast(
                    (commit, None),
                    journal_entry=_journal_window(commit, refresh_keys, merged_rows),
                )
            else:
                supervisor.broadcast((commit, None))
            if registry.enabled:
                _record_exchange((commit, None), count=len(handles))
        truncated = refresh_map is not None or refresh_keys is not None
        if registry.enabled:
            _EXCHANGE_TICKS.inc((commit + 1) if truncated else len(tick_times))
        if truncated:
            ticks += commit + 1
            query_time = tick_times[commit] + period
        else:
            ticks += len(tick_times)
            query_time = next_time
        controller.observe(len(tick_times), commit)
    return ticks


def _merge_payloads(
    config: SimulationConfig,
    payloads: List[Dict[str, Any]],
    populated: List[int],
    worker_count: int,
    ticks: int,
) -> SimulationResult:
    """Fold per-worker payloads into the run's single :class:`SimulationResult`."""
    results: List[SimulationResult] = [payload["result"] for payload in payloads]
    shard_count = config.shards

    # Per-shard statistics: each shard is owned by exactly one worker; take
    # its live counters from that worker (zero stats for shards whose owner
    # held no sources and was never spawned).
    owner_payload = {index: payload for index, payload in zip(populated, payloads)}
    per_shard: List[CacheStatistics] = []
    for shard in range(shard_count):
        payload = owner_payload.get(shard % worker_count)
        per_shard.append(
            payload["shard_statistics"][shard] if payload else CacheStatistics()
        )
    merged_stats = merge_cache_statistics(per_shard)

    duration = config.duration - config.warmup
    total_cost = sum(result.total_cost for result in results)
    value_refresh_count = sum(result.value_refresh_count for result in results)
    query_refresh_count = sum(result.query_refresh_count for result in results)
    query_counts = {result.query_count for result in results}
    if len(query_counts) > 1:
        raise RuntimeError(
            f"shard workers disagree on the query count: {sorted(query_counts)}"
        )
    query_count = query_counts.pop()

    interval_samples: Dict[Hashable, List] = {}
    for key in config.track_keys:
        for result in results:
            if key in result.interval_samples:
                interval_samples[key] = result.interval_samples[key]
                break
        else:
            interval_samples[key] = []
    final_widths: Dict[Hashable, float] = {}
    for result in results:
        final_widths.update(result.final_widths)

    # Every worker executed all ``ticks`` query events; count them once.
    events_processed = sum(result.events_processed for result in results) - (
        len(results) - 1
    ) * ticks

    return SimulationResult(
        cost_rate=total_cost / duration,
        duration=duration,
        value_refresh_count=value_refresh_count,
        query_refresh_count=query_refresh_count,
        value_refresh_rate=value_refresh_count / duration,
        query_refresh_rate=query_refresh_count / duration,
        total_cost=total_cost,
        query_count=query_count,
        interval_samples=interval_samples,
        final_widths=final_widths,
        cache_hit_rate=merged_stats.hit_rate,
        shard_hit_rates=tuple(stats.hit_rate for stats in per_shard),
        events_processed=events_processed,
    )
